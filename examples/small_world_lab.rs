//! Small-world laboratory: does the Random algorithm's rewiring show?
//!
//! §6.1.2 builds the Random algorithm on Watts-Strogatz rewiring; §7.4
//! admits the effect did not surface at 50/150 nodes because the network
//! was too small (n must be much larger than k) and too dynamic. This
//! example probes both regimes:
//!
//! 1. the overlay graphs the simulator actually builds (Regular vs Random),
//!    sampled mid-run;
//! 2. a static Watts-Strogatz construction at the same scale, as the
//!    theoretical reference point.
//!
//! ```text
//! cargo run --release --example small_world_lab
//! ```

use p2p_adhoc::des::{Rng, SimDuration};
use p2p_adhoc::graph::{small_world, Graph};
use p2p_adhoc::prelude::*;

fn main() {
    println!("== simulated overlays (sampled every 120 s) ==");
    println!("algorithm\tsamples\tC\tL\tsigma");
    for algo in [AlgoKind::Regular, AlgoKind::Random] {
        let mut scenario = Scenario::quick(60, algo, 600);
        scenario.smallworld_sample = Some(SimDuration::from_secs(120));
        let result = World::new(scenario, 5).run();
        if result.smallworld.is_empty() {
            println!("{}\t0\t-\t-\t-", algo.name());
            continue;
        }
        let n = result.smallworld.len() as f64;
        let c: f64 = result
            .smallworld
            .iter()
            .map(|(_, s)| s.clustering)
            .sum::<f64>()
            / n;
        let l: f64 = result
            .smallworld
            .iter()
            .map(|(_, s)| s.path_length)
            .sum::<f64>()
            / n;
        let sigma: f64 = result.smallworld.iter().map(|(_, s)| s.sigma).sum::<f64>() / n;
        println!(
            "{}\t{}\t{c:.3}\t{l:.3}\t{sigma:.3}",
            algo.name(),
            result.smallworld.len()
        );
    }

    println!("\n== static Watts-Strogatz reference (n = 400, k = 6) ==");
    println!("rewiring_p\tC\tL\tsigma");
    let mut rng = Rng::new(9);
    for p in [0.0, 0.01, 0.05, 0.2, 1.0] {
        let g = watts_strogatz(400, 6, p, &mut rng);
        if let Some(sw) = small_world(&g) {
            println!(
                "{p}\t{:.3}\t{:.3}\t{:.3}",
                sw.clustering, sw.path_length, sw.sigma
            );
        }
    }
    println!(
        "\nReading: the static construction shows the classic signature \
         (sigma peaks at small p); the simulated overlays sit in the paper's \
         'too small, too dynamic' regime, which is why §7.4 saw no effect."
    );
}

/// The Watts-Strogatz construction: ring lattice + probabilistic rewiring.
fn watts_strogatz(n: u32, k: u32, p: f64, rng: &mut Rng) -> Graph {
    let mut g = Graph::new(n as usize);
    for v in 0..n {
        for j in 1..=(k / 2) {
            let w = (v + j) % n;
            if rng.chance(p) {
                // Rewire to a uniformly random non-self endpoint.
                let mut r = rng.below(n as u64) as u32;
                if r == v {
                    r = (r + 1) % n;
                }
                g.add_edge(v, r);
            } else {
                g.add_edge(v, w);
            }
        }
    }
    g
}
