//! Campus file sharing: the paper's headline comparison, in miniature.
//!
//! Students wander a campus quad sharing lecture notes. All four
//! (re)configuration algorithms run the same scenario and the example
//! prints the three traffic curves the paper plots (connects, pings,
//! queries — Figs 7-12) side by side, plus the cost-benefit scalar the
//! conclusions discuss: messages spent per answer obtained.
//!
//! ```text
//! cargo run --release --example campus_sharing
//! ```

use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::*;

fn main() {
    let mut rows: Vec<(String, u64, u64, u64, u64, f64)> = Vec::new();
    for algo in AlgoKind::ALL {
        let scenario = Scenario::quick(50, algo, 600);
        let result = World::new(scenario, 2026).run();
        let connects = result.counters.total(MsgKind::Connect);
        let pings = result.counters.total(MsgKind::Ping);
        let queries = result.counters.total(MsgKind::Query);
        let answers = result.answers_received;
        let overhead = connects + pings + result.counters.total(MsgKind::Pong);
        let cost_per_answer = if answers > 0 {
            overhead as f64 / answers as f64
        } else {
            f64::INFINITY
        };
        rows.push((
            algo.name().to_string(),
            connects,
            pings,
            queries,
            answers,
            cost_per_answer,
        ));
    }

    println!("algorithm\tconnects\tpings\tqueries\tanswers\toverhead_per_answer");
    for (name, c, p, q, a, cost) in &rows {
        println!("{name}\t{c}\t{p}\t{q}\t{a}\t{cost:.1}");
    }

    // The paper's qualitative claims, checked on the spot.
    let get = |name: &str| rows.iter().find(|r| r.0 == name).expect("row exists");
    let basic = get("Basic");
    let regular = get("Regular");
    println!();
    println!(
        "Basic vs Regular connects: {} vs {} ({})",
        basic.1,
        regular.1,
        if basic.1 > regular.1 {
            "Basic pays more to (re)configure, as the paper reports"
        } else {
            "unexpectedly close on this short run"
        }
    );
    println!(
        "Basic vs Regular pings:    {} vs {} ({})",
        basic.2,
        regular.2,
        if basic.2 > regular.2 {
            "symmetric single-pinger halves keep-alive traffic"
        } else {
            "unexpectedly close on this short run"
        }
    );
}
