//! Conference hall: the paper's motivating "meeting" scenario (§4).
//!
//! People at a convention share slides and papers over their PDAs: a dense
//! hall (high node count, small area, slow movement with long pauses while
//! people sit in talks). Heterogeneous hardware — a few powerful laptops
//! among many PDAs — is exactly what the Hybrid algorithm targets, so this
//! example compares Hybrid against Regular in the same hall and shows where
//! the traffic concentrates.
//!
//! ```text
//! cargo run --release --example conference_hall
//! ```

use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::*;

fn main() {
    for algo in [AlgoKind::Regular, AlgoKind::Hybrid] {
        let mut scenario = Scenario::quick(60, algo, 900);
        scenario.area_side = 60.0; // a hall, not a campus
        scenario.mobility = MobilityKind::Waypoint {
            max_speed: 0.5,   // strolling between sessions
            max_pause: 300.0, // sitting through a talk
        };
        // Laptops vs PDAs: a wide qualifier spread lets strong devices win
        // the master elections.
        scenario.qualifier_range = (1, 1000);

        let result = World::new(scenario, 7).run();

        println!("== {} in the hall ==", algo.name());
        println!(
            "  roles: servent {}, initial {}, reserved {}, master {}, slave {}",
            result.roles[0], result.roles[1], result.roles[2], result.roles[3], result.roles[4]
        );
        println!(
            "  queries {} -> answers {} (avg conns {:.2})",
            result.queries_issued, result.answers_received, result.avg_connections
        );

        // Where does the query load land? For Hybrid the head of the sorted
        // curve is the masters (Figs 11-12's skew).
        let queries = result.counters.sorted_desc(MsgKind::Query, &result.members);
        let head: u64 = queries.iter().take(5).sum();
        let total: u64 = queries.iter().sum();
        if total > 0 {
            println!(
                "  top-5 busiest members carry {:.0}% of query receptions\n",
                100.0 * head as f64 / total as f64
            );
        } else {
            println!("  no query traffic this short run\n");
        }
    }
}
