//! Quickstart: simulate one scenario and read its results.
//!
//! Runs the paper's 50-node Random-Waypoint scenario with the Regular
//! algorithm for ten simulated minutes and prints what happened — the
//! smallest end-to-end tour of the public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::*;

fn main() {
    // Table 2's scenario, shortened to 10 simulated minutes.
    let scenario = Scenario::quick(50, AlgoKind::Regular, 600);
    println!("== scenario ==");
    print!("{}", scenario.render_table_2());

    // A world is one replication; the seed makes it exactly reproducible.
    let result = World::new(scenario, 42).run();

    println!("\n== outcome ==");
    println!("members:                {}", result.members.len());
    println!("events processed:       {}", result.events);
    println!("frames on the air:      {}", result.phy_total.frames_sent);
    println!("overlay conns made:     {}", result.conns_established);
    println!("avg conns per member:   {:.2}", result.avg_connections);
    println!("queries issued:         {}", result.queries_issued);
    println!("answers received:       {}", result.answers_received);

    // The per-node message counters behind Figs 7-12.
    for kind in [MsgKind::Connect, MsgKind::Ping, MsgKind::Query] {
        let sorted = result.counters.sorted_desc(kind, &result.members);
        println!(
            "{:8} received: total {:5}, busiest node {:4}, median {:4}",
            kind.name(),
            result.counters.total(kind),
            sorted.first().copied().unwrap_or(0),
            sorted.get(sorted.len() / 2).copied().unwrap_or(0),
        );
    }

    // The per-file series behind Figs 5-6.
    println!("\nfile  avg_min_dist  avg_answers");
    for (rank, dist, answers) in result.file_metrics.series(5) {
        println!("{rank:4}  {dist:12.2}  {answers:11.2}");
    }
}
