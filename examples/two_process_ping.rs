//! Sim-to-real in two processes: one query over loopback UDP.
//!
//! The smallest real-substrate demo. The parent re-executes itself with
//! a `child` argument; each process hosts one [`StackMachine`] — the
//! byte-for-byte protocol stack the simulator runs — on its own UDP
//! socket. The child holds the whole catalogue and the parent holds
//! nothing, so the parent's first query has exactly one answerer. The
//! two exchange addresses over the child's stdin/stdout, form a Regular
//! overlay across real datagrams, and the parent exits 0 once a query
//! round-trips.
//!
//! ```text
//! cargo run --release --example two_process_ping
//! ```
//!
//! For the N-process version, see the `swarm` binary in `manet-rt`.

use std::io::{BufRead, BufReader, Write};
use std::net::UdpSocket;
use std::process::{Command, Stdio};
use std::time::Duration;

use p2p_adhoc::aodv::AodvCfg;
use p2p_adhoc::content::QueryEngine;
use p2p_adhoc::core::build_algo;
use p2p_adhoc::prelude::*;
use p2p_adhoc::rt::{FaultShim, RtNode};
use p2p_adhoc::stack::StackMachine;

/// Wall-clock run length; comfortably two handshake + query rounds.
const RUN: Duration = Duration::from_millis(2_500);

/// Overlay and workload timers shrunk from paper scale to demo scale.
fn machine(id: u32, files: Vec<u16>, seed: u64) -> StackMachine {
    let node = NodeId(id);
    let params = OverlayParams {
        timer_initial: SimDuration::from_millis(500),
        max_timer: SimDuration::from_secs(4),
        basic_timer: SimDuration::from_millis(800),
        ping_interval: SimDuration::from_secs(2),
        pong_timeout: SimDuration::from_secs(1),
        handshake_timeout: SimDuration::from_millis(1_500),
        random_response_wait: SimDuration::from_millis(500),
        ..OverlayParams::default()
    };
    let query = QueryCfg {
        think_min: SimDuration::from_millis(200),
        think_max: SimDuration::from_millis(500),
        response_wait: SimDuration::from_millis(600),
        ..QueryCfg::default()
    };
    let algo = build_algo(AlgoKind::Regular, node, params, 0, Rng::new(seed));
    let engine = QueryEngine::new(
        node,
        query,
        Catalog::default(),
        files.into_iter().map(FileId).collect(),
        Rng::new(seed ^ 0xF00D),
    );
    StackMachine::new(node, AodvCfg::default(), algo, engine)
}

fn child_main() {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind child socket");
    println!("ADDR {}", socket.local_addr().expect("local addr"));
    std::io::stdout().flush().expect("flush");

    let mut line = String::new();
    BufReader::new(std::io::stdin())
        .read_line(&mut line)
        .expect("read PEER line");
    let parent = line
        .strip_prefix("PEER ")
        .expect("PEER line")
        .trim()
        .parse()
        .expect("parent address");

    // The child holds every file and joins after a short stagger (two
    // nodes probing at the same instant collide their handshakes).
    let mut node = RtNode::new(
        machine(1, (0..20).collect(), 7),
        socket,
        vec![(NodeId(0), parent)],
        FaultShim::new(&FaultPlan::default(), 7),
    )
    .expect("child node");
    let report = node
        .run(RUN, Duration::from_millis(300))
        .expect("child run");
    println!("RESULT hits={}", report.hits_served);
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("child") {
        child_main();
        return;
    }

    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind parent socket");
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .arg("child")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child");

    // Handshake: child tells us where it listens, we answer in kind.
    let mut out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    out.read_line(&mut line).expect("read ADDR");
    let child_addr = line
        .strip_prefix("ADDR ")
        .expect("ADDR line")
        .trim()
        .parse()
        .expect("child address");
    writeln!(
        child.stdin.take().expect("child stdin"),
        "PEER {}",
        socket.local_addr().expect("local addr")
    )
    .expect("send PEER");

    // The parent holds nothing, so every query it issues must cross the
    // wire to the child and back.
    let mut node = RtNode::new(
        machine(0, vec![], 3),
        socket,
        vec![(NodeId(1), child_addr)],
        FaultShim::new(&FaultPlan::default(), 3),
    )
    .expect("parent node");
    let report = node.run(RUN, Duration::ZERO).expect("parent run");

    let status = child.wait().expect("wait child");
    println!(
        "parent: issued {} queries, {} answered, {} datagrams out / {} in",
        report.issued, report.answered, report.frames_sent, report.frames_received
    );
    assert!(status.success(), "child exited with {status}");
    assert!(report.answered > 0, "no query answered: {report:?}");
    println!("two_process_ping: OK");
}
