//! Emergency operation: infrastructure-free networking under churn.
//!
//! The paper names "emergency operations" as a key MANET use case (§4).
//! Rescue teams spread over a wide area, radios die and come back
//! (batteries swapped, tunnels entered), and the overlay must keep
//! reconfiguring. This example stresses the Regular algorithm with the
//! churn extension and a battery budget, and reports how the network
//! degrades — the lifetime argument of the paper's introduction.
//!
//! ```text
//! cargo run --release --example emergency_rescue
//! ```

use p2p_adhoc::prelude::*;

fn main() {
    println!("scenario\tqueries\tanswers\tavg_conns\tconns_made\tavg_energy_mJ");
    for (label, churn, battery) in [
        ("stable radios, big batteries", None, None),
        (
            "churning radios",
            Some(ChurnCfg {
                mean_uptime: 180.0,
                mean_downtime: 45.0,
            }),
            None,
        ),
        ("tiny batteries", None, Some(60.0)),
        (
            "churn + tiny batteries",
            Some(ChurnCfg {
                mean_uptime: 180.0,
                mean_downtime: 45.0,
            }),
            Some(60.0),
        ),
    ] {
        // A sparse rescue grid: 40 responders over four hectares.
        let mut scenario = Scenario::quick(40, AlgoKind::Regular, 900);
        scenario.area_side = 200.0;
        scenario.mobility = MobilityKind::Waypoint {
            max_speed: 2.0, // moving with urgency
            max_pause: 20.0,
        };
        scenario.churn = churn;
        scenario.battery_mj = battery;

        let result = World::new(scenario, 1903).run();
        let avg_energy =
            result.energy_mj.iter().sum::<f64>() / result.energy_mj.len().max(1) as f64;
        println!(
            "{label}\t{}\t{}\t{:.2}\t{}\t{:.1}",
            result.queries_issued,
            result.answers_received,
            result.avg_connections,
            result.conns_established,
            avg_energy,
        );
    }
    println!(
        "\nExpected shape: churn cuts answers and overlay activity (radios spend \
         time dark); tiny batteries silence the busiest nodes mid-run, capping \
         per-node energy and answers."
    );
}
