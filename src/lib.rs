//! # p2p-adhoc — P2P (re)configuration over simulated mobile ad-hoc networks
//!
//! A from-scratch Rust reproduction of *"Peer-to-Peer over Ad-hoc Networks:
//! (Re)Configuration Algorithms"* (Franciscani, Vasconcelos, Couto,
//! Loureiro — IPDPS 2003): the four overlay (re)configuration algorithms
//! plus every substrate the paper's evaluation needs — a deterministic
//! discrete-event simulator standing in for ns-2, AODV routing with the
//! authors' controlled-broadcast patch, mobility models, a range-based
//! radio with energy accounting, the Gnutella-like query workload with a
//! Zipf catalogue, and the measurement/analysis stack that regenerates the
//! paper's figures.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names and hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use p2p_adhoc::prelude::*;
//!
//! // One replication of the paper's 50-node scenario with the Regular
//! // algorithm, shortened to two simulated minutes:
//! let scenario = Scenario::quick(50, AlgoKind::Regular, 120);
//! let result = World::new(scenario, 42).run();
//! println!(
//!     "{} members, {} queries, {} answers",
//!     result.members.len(),
//!     result.queries_issued,
//!     result.answers_received
//! );
//! ```
//!
//! See `examples/` for full scenarios and DESIGN.md for the architecture.

pub use manet_aodv as aodv;
pub use manet_des as des;
pub use manet_geom as geom;
pub use manet_graph as graph;
pub use manet_metrics as metrics;
pub use manet_mobility as mobility;
pub use manet_obs as obs;
pub use manet_radio as radio;
pub use manet_rt as rt;
pub use manet_sim as sim;
pub use p2p_content as content;
pub use p2p_core as core;
pub use p2p_stack as stack;

/// The most common imports in one place.
pub mod prelude {
    pub use manet_des::{NodeId, Rng, SimDuration, SimTime};
    pub use manet_sim::{
        check_result, run_matrix, run_replications, AppMsg, ChurnCfg, ExperimentCfg, FaultPlan,
        MobilityKind, RunResult, Scenario, ShardedWorld, World,
    };
    pub use p2p_content::{Catalog, FileId, QueryCfg};
    pub use p2p_core::{AlgoKind, OverlayParams, Reconfigurator, Role};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let scenario = Scenario::quick(10, AlgoKind::Basic, 30);
        let expect = scenario.n_members();
        let result = World::new(scenario, 1).run();
        assert_eq!(result.members.len(), expect);
    }
}
