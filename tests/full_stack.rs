//! Cross-crate integration tests: whole worlds, paper-shape assertions.
//!
//! These exercise the complete stack (mobility → radio → AODV → overlay →
//! queries → metrics) at reduced scale and assert the *qualitative* results
//! the paper reports — the same checks EXPERIMENTS.md records at full scale.

use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::*;

fn run(algo: AlgoKind, nodes: usize, secs: u64, seed: u64) -> RunResult {
    World::new(Scenario::quick(nodes, algo, secs), seed).run()
}

#[test]
fn all_algorithms_complete_a_run() {
    for algo in AlgoKind::ALL {
        let s = Scenario::quick(30, algo, 300);
        let expect = s.n_members();
        let r = World::new(s, 1).run();
        assert!(r.events > 0);
        assert_eq!(r.members.len(), expect, "member fraction of 30 nodes");
        assert!(r.phy_total.frames_sent > 0, "{algo}: radio silence");
    }
}

#[test]
fn replication_is_bit_stable() {
    for algo in [AlgoKind::Basic, AlgoKind::Hybrid] {
        let a = run(algo, 25, 200, 33);
        let b = run(algo, 25, 200, 33);
        assert_eq!(a.events, b.events, "{algo}: nondeterministic event count");
        assert_eq!(
            a.counters.column(MsgKind::Connect),
            b.counters.column(MsgKind::Connect),
            "{algo}: nondeterministic traffic"
        );
        assert_eq!(a.energy_mj, b.energy_mj, "{algo}: nondeterministic energy");
    }
}

#[test]
fn overlays_actually_form_and_carry_queries() {
    for algo in AlgoKind::ALL {
        let r = run(algo, 40, 600, 2);
        assert!(
            r.avg_connections > 0.3,
            "{algo}: overlay failed to form ({:.2} conns/member)",
            r.avg_connections
        );
        assert!(r.queries_issued > 0, "{algo}: no queries");
        assert!(
            r.answers_received > 0,
            "{algo}: queries produced no answers"
        );
    }
}

#[test]
fn paper_shape_basic_pays_the_most_overhead() {
    // Figs 7-10's headline: the Basic algorithm's indiscriminate broadcasts
    // and double-ended pings cost the most.
    let seed = 5;
    let basic = run(AlgoKind::Basic, 40, 600, seed);
    let regular = run(AlgoKind::Regular, 40, 600, seed);
    let random = run(AlgoKind::Random, 40, 600, seed);
    let b_connect = basic.counters.total(MsgKind::Connect);
    let reg_connect = regular.counters.total(MsgKind::Connect);
    let rnd_connect = random.counters.total(MsgKind::Connect);
    assert!(
        b_connect > reg_connect,
        "connects: Basic {b_connect} should exceed Regular {reg_connect}"
    );
    assert!(
        rnd_connect >= reg_connect,
        "connects: Random {rnd_connect} >= Regular {reg_connect} (long-TTL probes)"
    );
    let b_ping = basic.counters.total(MsgKind::Ping);
    let reg_ping = regular.counters.total(MsgKind::Ping);
    assert!(
        b_ping > reg_ping,
        "pings: Basic {b_ping} should exceed Regular {reg_ping} (asymmetric refs)"
    );
}

#[test]
fn paper_shape_answers_decrease_with_file_rank() {
    // Figs 5-6: the number of answers tracks the Zipf popularity.
    let r = run(AlgoKind::Regular, 40, 900, 8);
    let series = r.file_metrics.series(10);
    let first_half: f64 = series[..3].iter().map(|&(_, _, a)| a).sum();
    let last_half: f64 = series[7..].iter().map(|&(_, _, a)| a).sum();
    assert!(
        first_half > last_half,
        "popular files should get more answers: head {first_half:.2} vs tail {last_half:.2}"
    );
}

#[test]
fn paper_shape_hybrid_concentrates_load_on_masters() {
    // Figs 11-12: masters receive disproportionate query traffic.
    let hybrid = run(AlgoKind::Hybrid, 40, 900, 9);
    assert!(hybrid.roles[3] > 0, "no masters formed");
    assert!(hybrid.roles[4] > 0, "no slaves formed");
    let sorted = hybrid.counters.sorted_desc(MsgKind::Query, &hybrid.members);
    let total: u64 = sorted.iter().sum();
    let masters = hybrid.roles[3].min(sorted.len());
    let head: u64 = sorted.iter().take(masters).sum();
    if total > 0 {
        let share = head as f64 / total as f64;
        let fair = masters as f64 / sorted.len() as f64;
        assert!(
            share > fair,
            "top-{masters} share {share:.2} should exceed fair share {fair:.2}"
        );
    }
}

#[test]
fn energy_follows_traffic() {
    let basic = run(AlgoKind::Basic, 30, 400, 10);
    let regular = run(AlgoKind::Regular, 30, 400, 10);
    let be: f64 = basic.energy_mj.iter().sum();
    let re: f64 = regular.energy_mj.iter().sum();
    assert!(
        be > re,
        "the paper's lifetime argument: Basic ({be:.0} mJ) drains more than Regular ({re:.0} mJ)"
    );
}

#[test]
fn runner_parallelism_is_transparent() {
    let s = Scenario::quick(20, AlgoKind::Regular, 120);
    let serial = run_replications(&s, 4, 77, 1);
    let parallel = run_replications(&s, 4, 77, 4);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.events, b.events);
        assert_eq!(a.answers_received, b.answers_received);
    }
}

#[test]
fn experiment_matrix_produces_all_figures() {
    let cfg = ExperimentCfg {
        n_nodes: 16,
        duration_secs: 90,
        reps: 1,
        seed: 4,
        threads: 1,
        obs: false,
        trace: false,
        shards: 1,
    };
    let matrix = run_matrix(&cfg);
    assert_eq!(matrix.len(), 4);
    use p2p_adhoc::sim::experiments as ex;
    for text in [
        ex::fig_distance_answers(&matrix, cfg.n_nodes),
        ex::fig_connects(&matrix, cfg.n_nodes),
        ex::fig_pings(&matrix, cfg.n_nodes),
        ex::fig_queries(&matrix, cfg.n_nodes),
    ] {
        assert!(text.contains("Basic\tRegular\tRandom\tHybrid"));
        assert!(text.lines().count() >= 3);
    }
}

#[test]
fn stationary_dense_world_reaches_full_connectivity() {
    // With no mobility and everyone in range, Regular should fill MAXNCONN
    // and keep it (no TooFar pruning, no churn).
    let mut s = Scenario::quick(12, AlgoKind::Regular, 300);
    s.area_side = 15.0; // everyone within a hop or two
    s.mobility = MobilityKind::Stationary;
    let r = World::new(s, 6).run();
    assert!(
        r.avg_connections > 2.0,
        "dense static overlay should near MAXNCONN: {:.2}",
        r.avg_connections
    );
}

#[test]
fn sparse_world_still_terminates() {
    // Nodes scattered far beyond radio range: no overlay can form, but the
    // run must end cleanly with idle timers.
    let mut s = Scenario::quick(10, AlgoKind::Regular, 300);
    s.area_side = 2000.0;
    let r = World::new(s, 7).run();
    assert_eq!(r.answers_received, 0);
    assert_eq!(r.avg_connections, 0.0);
}
