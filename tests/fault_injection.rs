//! Fault-injection smoke tests: the paper's algorithms must keep working —
//! not just not crash — under injected packet loss, scripted node crashes,
//! loss bursts, link flaps, and delay spikes. Every run is deterministic
//! per `(scenario, seed)`, faults included.

use p2p_adhoc::des::{NodeId, SimDuration, SimTime};
use p2p_adhoc::prelude::*;
use p2p_adhoc::sim::{
    check_result, BurstCfg, CrashEvent, FaultPlan, JitterSpikes, LinkFlaps, PacketLoss,
};

/// 20 % extra iid loss plus one mid-run crash (with reboot) of member 1.
fn smoke_plan(secs: u64) -> FaultPlan {
    FaultPlan::loss_and_crash(
        0.20,
        NodeId(1),
        SimTime::from_secs(secs / 2),
        Some(SimDuration::from_secs(60)),
    )
}

fn smoke_scenario(algo: AlgoKind) -> Scenario {
    let mut s = Scenario::quick(40, algo, 600);
    s.faults = smoke_plan(600);
    s
}

#[test]
fn all_algorithms_survive_loss_and_a_crash() {
    // Run with the observability sink on and `run_checked`, so a failure
    // here leaves a JSONL flight-recorder dump next to the red test.
    let dump_dir = std::env::temp_dir().join(format!("fault_smoke_obs_{}", std::process::id()));
    for algo in AlgoKind::ALL {
        let mut s = smoke_scenario(algo);
        s.obs = p2p_adhoc::sim::ObsConfig::enabled();
        let expect_members = s.n_members();
        let (r, violations) = World::new(s.clone(), 2).run_checked(&dump_dir);
        assert!(violations.is_empty(), "{algo}: {violations:?}");
        assert_eq!(r.members.len(), expect_members, "{algo}: member census");
        assert!(
            r.avg_connections > 0.3,
            "{algo}: overlay failed to form under faults ({:.2} conns/member)",
            r.avg_connections
        );
        assert!(r.queries_issued > 0, "{algo}: no queries under faults");
        assert!(
            r.answers_received >= 1,
            "{algo}: no answers under 20% loss + crash"
        );
        assert!(
            r.obs.recorder.enabled(),
            "{algo}: fault smoke should carry the flight recorder"
        );
    }
    let _ = std::fs::remove_dir_all(&dump_dir);
}

#[test]
fn faulty_runs_are_deterministic_per_seed() {
    for algo in [AlgoKind::Regular, AlgoKind::Hybrid] {
        let a = World::new(smoke_scenario(algo), 11).run();
        let b = World::new(smoke_scenario(algo), 11).run();
        assert_eq!(
            a.events, b.events,
            "{algo}: fault schedule not deterministic"
        );
        assert_eq!(a.phy_total, b.phy_total, "{algo}: phy diverged");
        assert_eq!(
            a.answers_received, b.answers_received,
            "{algo}: answers diverged"
        );
        let c = World::new(smoke_scenario(algo), 12).run();
        assert_ne!(
            (a.events, a.phy_total.frames_sent),
            (c.events, c.phy_total.frames_sent),
            "{algo}: different seeds should differ"
        );
    }
}

#[test]
fn injected_loss_actually_loses_frames() {
    let clean = World::new(Scenario::quick(30, AlgoKind::Regular, 300), 5).run();
    let mut s = Scenario::quick(30, AlgoKind::Regular, 300);
    s.faults.loss = Some(PacketLoss {
        base: 0.20,
        burst: None,
    });
    let faulty = World::new(s, 5).run();
    let clean_rate = clean.phy_total.frames_lost as f64
        / (clean.phy_total.frames_received + clean.phy_total.frames_lost).max(1) as f64;
    let faulty_rate = faulty.phy_total.frames_lost as f64
        / (faulty.phy_total.frames_received + faulty.phy_total.frames_lost).max(1) as f64;
    assert_eq!(
        clean.phy_total.frames_lost, 0,
        "quick scenarios are loss-free"
    );
    assert!(
        (faulty_rate - 0.20).abs() < 0.05,
        "injected loss rate {faulty_rate:.3} far from 0.20 (clean {clean_rate:.3})"
    );
}

#[test]
fn crashed_node_goes_quiet_and_restart_brings_it_back() {
    // Crash without restart: the node stops receiving for good.
    let mut s = Scenario::quick(20, AlgoKind::Regular, 300);
    s.faults.crashes = vec![CrashEvent {
        node: NodeId(0),
        at: SimTime::from_secs(150),
        restart_after: None,
    }];
    let dead = World::new(s.clone(), 7).run();
    s.faults.crashes[0].restart_after = Some(SimDuration::from_secs(30));
    let revived = World::new(s, 7).run();
    assert!(
        revived.events > dead.events,
        "a rebooted node should generate more events than a dead one \
         ({} vs {})",
        revived.events,
        dead.events
    );
}

#[test]
fn burst_flap_and_jitter_worlds_run_clean() {
    let mut s = Scenario::quick(24, AlgoKind::Regular, 400);
    s.faults = FaultPlan {
        loss: Some(PacketLoss {
            base: 0.05,
            burst: Some(BurstCfg {
                mean_quiet: 60.0,
                mean_burst: 15.0,
                burst_loss: 0.6,
            }),
        }),
        crashes: vec![CrashEvent {
            node: NodeId(3),
            at: SimTime::from_secs(200),
            restart_after: Some(SimDuration::from_secs(40)),
        }],
        link_flaps: Some(LinkFlaps {
            period: SimDuration::from_secs(90),
            down: SimDuration::from_secs(5),
        }),
        jitter: Some(JitterSpikes {
            period: SimDuration::from_secs(60),
            width: SimDuration::from_secs(10),
            extra_delay: SimDuration::from_millis(200),
        }),
    };
    let expect_members = s.n_members();
    let a = World::new(s.clone(), 21).run();
    let b = World::new(s.clone(), 21).run();
    assert_eq!(
        a.events, b.events,
        "full fault plan must stay deterministic"
    );
    assert_eq!(a.phy_total, b.phy_total);
    assert_eq!(a.members.len(), expect_members);
    assert!(
        a.phy_total.frames_lost > 0,
        "bursts and flaps should lose frames"
    );
    let violations = check_result(&s, &a);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn empty_fault_plan_is_byte_identical_to_no_plan() {
    // The fault layer must be invisible when unused: same events, same phy,
    // same RNG consumption as a scenario that predates fault injection.
    let base = Scenario::quick(25, AlgoKind::Regular, 200);
    assert!(base.faults.is_empty());
    let mut explicit = base.clone();
    explicit.faults = FaultPlan::default();
    let a = World::new(base, 31).run();
    let b = World::new(explicit, 31).run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.phy_total, b.phy_total);
    assert_eq!(a.energy_mj, b.energy_mj);
}
