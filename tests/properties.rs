//! Property-based tests over the public API: protocol invariants that must
//! hold for *any* seed, scenario size, or message interleaving.

use proptest::prelude::*;

use p2p_adhoc::core::{
    build_algo, AlgoKind, ConnKind, ConnTable, OvAction, OverlayMsg, OverlayParams, ProbeKind,
};
use p2p_adhoc::des::{NodeId, Rng, SimDuration, SimTime};
use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::{Scenario, World};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Whatever the seed, a world terminates and its conservation laws
    /// hold: receptions never exceed transmissions times the possible
    /// audience, members stay members, energy is non-negative.
    #[test]
    fn world_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let scenario = Scenario::quick(18, AlgoKind::Regular, 90);
        let n_members = scenario.n_members();
        let r = World::new(scenario, seed).run();
        prop_assert_eq!(r.members.len(), n_members);
        prop_assert!(r.phy_total.frames_received <= r.phy_total.frames_sent * 18);
        prop_assert!(r.energy_mj.iter().all(|&e| e >= 0.0));
        prop_assert!(r.answers_received <= r.counters.total(MsgKind::QueryHit));
        // Closed connections can exceed established ones only via pending
        // handshakes that never completed; both sides are bounded.
        prop_assert!(r.conns_closed <= r.conns_established + r.counters.total(MsgKind::Connect));
    }

    /// The same seed gives the same world, for every algorithm.
    #[test]
    fn determinism_for_any_algorithm(seed in any::<u64>(), algo_ix in 0usize..4) {
        let algo = AlgoKind::ALL[algo_ix];
        let a = World::new(Scenario::quick(14, algo, 60), seed).run();
        let b = World::new(Scenario::quick(14, algo, 60), seed).run();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.phy_total, b.phy_total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// An algorithm fed arbitrary message sequences never panics, never
    /// exceeds its connection capacity, and never emits a flood with a
    /// zero TTL.
    #[test]
    fn algorithms_survive_arbitrary_message_storms(
        seed in any::<u64>(),
        algo_ix in 0usize..4,
        script in proptest::collection::vec((0u8..12, 1u32..12, 0u8..15), 1..120),
    ) {
        let params = OverlayParams::default();
        let mut algo = build_algo(
            AlgoKind::ALL[algo_ix],
            NodeId(0),
            params,
            50,
            Rng::new(seed),
        );
        let mut now = SimTime::ZERO;
        algo.start(now);
        for (op, peer, hops) in script {
            now = now + SimDuration::from_millis(250);
            let peer = NodeId(peer);
            let msg = match op {
                0 => OverlayMsg::Probe { kind: ProbeKind::Basic },
                1 => OverlayMsg::Probe { kind: ProbeKind::Regular },
                2 => OverlayMsg::Probe { kind: ProbeKind::Random },
                3 => OverlayMsg::Probe { kind: ProbeKind::Master },
                4 => OverlayMsg::Offer { kind: ProbeKind::Regular },
                5 => OverlayMsg::Accept { kind: ProbeKind::Regular },
                6 => OverlayMsg::Confirm,
                7 => OverlayMsg::Reject,
                8 => OverlayMsg::Ping { token: hops as u32 },
                9 => OverlayMsg::Pong { token: hops as u32 },
                10 => OverlayMsg::Capture { qualifier: hops as u32 * 7 },
                _ => OverlayMsg::SlaveRequest,
            };
            let actions = if matches!(msg, OverlayMsg::Probe { .. } | OverlayMsg::Capture { .. }) {
                algo.on_flood(now, peer, hops.max(1), &msg)
            } else {
                algo.on_msg(now, peer, hops, &msg)
            };
            for a in &actions {
                if let OvAction::Flood { ttl, .. } = a {
                    prop_assert!(*ttl >= 1, "zero-ttl flood emitted");
                }
            }
            let _ = algo.tick(now);
            // Capacity invariant: neighbors never exceed MAXNCONN plus the
            // hybrid slave allowance.
            prop_assert!(
                algo.neighbors().len() <= params.max_conn + params.max_slaves,
                "capacity exceeded: {} neighbors",
                algo.neighbors().len()
            );
        }
    }

    /// The connection table's keep-alive protocol never double-counts:
    /// established + closed is consistent with what we drove in.
    #[test]
    fn conn_table_bookkeeping(ops in proptest::collection::vec((0u8..5, 1u32..6), 1..80)) {
        let params = OverlayParams::default();
        let mut tb = ConnTable::new();
        let mut now = SimTime::ZERO;
        for (op, peer) in ops {
            now = now + SimDuration::from_secs(1);
            let peer = NodeId(peer);
            match op {
                0 => { tb.open_out(peer, ConnKind::Regular, now); }
                1 => { tb.open_in(peer, ConnKind::Random, now); }
                2 => { tb.on_accepted(peer, now, &params); }
                3 => { tb.on_confirmed(peer, now); }
                _ => { tb.close(peer, p2p_adhoc::core::CloseReason::Reset); }
            }
            let _ = tb.tick(now, &params);
            let stats = tb.stats();
            prop_assert!(stats.closed_total() <= stats.established + 80);
            prop_assert!(tb.established_count() <= tb.len());
        }
    }
}
