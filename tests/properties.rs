//! Property-based tests over the public API: protocol invariants that must
//! hold for *any* seed, scenario size, or message interleaving.
//!
//! Runs on the in-repo `manet-testkit` harness: every failure prints a
//! `TESTKIT_SEED=<seed>` replay line, and `TESTKIT_CASES=<n>` scales the
//! case count up for soak runs.

use manet_testkit::{any_u64, prop_assert, prop_assert_eq, properties, vec_of, Config};

use p2p_adhoc::core::{
    build_algo, AlgoKind, ConnKind, ConnTable, OvAction, OverlayMsg, OverlayParams, ProbeKind,
};
use p2p_adhoc::des::{NodeId, Rng, SimDuration, SimTime};
use p2p_adhoc::metrics::MsgKind;
use p2p_adhoc::prelude::{Scenario, World};
use p2p_adhoc::sim::{check_result, FaultPlan};

properties! {
    config = Config::cases(16);

    /// Whatever the seed, a world terminates and its conservation laws
    /// hold: receptions never exceed transmissions times the possible
    /// audience, members stay members, energy is non-negative.
    fn world_invariants_hold_for_any_seed(seed in any_u64()) {
        let scenario = Scenario::quick(18, AlgoKind::Regular, 90);
        let n_members = scenario.n_members();
        let r = World::new(scenario.clone(), seed).run();
        prop_assert_eq!(r.members.len(), n_members);
        prop_assert!(r.phy_total.frames_received <= r.phy_total.frames_sent * 18);
        prop_assert!(r.energy_mj.iter().all(|&e| e >= 0.0));
        prop_assert!(r.answers_received <= r.counters.total(MsgKind::QueryHit));
        // Closed connections can exceed established ones only via pending
        // handshakes that never completed; both sides are bounded.
        prop_assert!(r.conns_closed <= r.conns_established + r.counters.total(MsgKind::Connect));
        let violations = check_result(&scenario, &r);
        prop_assert!(violations.is_empty(), "conservation violations: {:?}", violations);
    }

    /// The same seed gives the same world, for every algorithm.
    fn determinism_for_any_algorithm(seed in any_u64(), algo_ix in 0usize..4) {
        let algo = AlgoKind::ALL[algo_ix];
        let a = World::new(Scenario::quick(14, algo, 60), seed).run();
        let b = World::new(Scenario::quick(14, algo, 60), seed).run();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.phy_total, b.phy_total);
    }

    /// Fault injection does not break the simulator: under arbitrary extra
    /// loss plus a mid-run crash-and-restart, every structural invariant
    /// still holds at every sampled instant and every conservation law
    /// holds at the end.
    fn faulty_worlds_preserve_invariants(seed in any_u64(), loss_pct in 0u32..35) {
        let mut scenario = Scenario::quick(16, AlgoKind::Regular, 90);
        scenario.faults = FaultPlan::loss_and_crash(
            loss_pct as f64 / 100.0,
            NodeId(1),
            SimTime::from_secs(45),
            Some(SimDuration::from_secs(20)),
        );
        let mut w = World::new(scenario.clone(), seed);
        let mut last = SimTime::ZERO;
        let mut steps = 0u64;
        while let Some(now) = w.step() {
            last = now;
            steps += 1;
            if steps.is_multiple_of(2000) {
                let v = w.check_invariants(now);
                prop_assert!(v.is_empty(), "live violations at {}: {:?}", now, v);
            }
        }
        let v = w.check_invariants(last);
        prop_assert!(v.is_empty(), "final violations: {:?}", v);
        let r = w.finish();
        let v = check_result(&scenario, &r);
        prop_assert!(v.is_empty(), "conservation violations: {:?}", v);
    }
}

properties! {
    config = Config::cases(64);

    /// An algorithm fed arbitrary message sequences never panics, never
    /// exceeds its connection capacity, and never emits a flood with a
    /// zero TTL.
    fn algorithms_survive_arbitrary_message_storms(
        seed in any_u64(),
        algo_ix in 0usize..4,
        script in vec_of((0u8..12, 1u32..12, 0u8..15), 1..120),
    ) {
        let params = OverlayParams::default();
        let mut algo = build_algo(
            AlgoKind::ALL[algo_ix],
            NodeId(0),
            params,
            50,
            Rng::new(seed),
        );
        let mut now = SimTime::ZERO;
        algo.start(now);
        for (op, peer, hops) in script {
            now += SimDuration::from_millis(250);
            let peer = NodeId(peer);
            let msg = match op {
                0 => OverlayMsg::Probe { kind: ProbeKind::Basic },
                1 => OverlayMsg::Probe { kind: ProbeKind::Regular },
                2 => OverlayMsg::Probe { kind: ProbeKind::Random },
                3 => OverlayMsg::Probe { kind: ProbeKind::Master },
                4 => OverlayMsg::Offer { kind: ProbeKind::Regular },
                5 => OverlayMsg::Accept { kind: ProbeKind::Regular },
                6 => OverlayMsg::Confirm,
                7 => OverlayMsg::Reject,
                8 => OverlayMsg::Ping { token: hops as u32 },
                9 => OverlayMsg::Pong { token: hops as u32 },
                10 => OverlayMsg::Capture { qualifier: hops as u32 * 7 },
                _ => OverlayMsg::SlaveRequest,
            };
            let actions = if matches!(msg, OverlayMsg::Probe { .. } | OverlayMsg::Capture { .. }) {
                algo.on_flood(now, peer, hops.max(1), &msg)
            } else {
                algo.on_msg(now, peer, hops, &msg)
            };
            for a in &actions {
                if let OvAction::Flood { ttl, .. } = a {
                    prop_assert!(*ttl >= 1, "zero-ttl flood emitted");
                }
            }
            let _ = algo.tick(now);
            // Capacity invariant: neighbors never exceed MAXNCONN plus the
            // hybrid slave allowance.
            prop_assert!(
                algo.neighbors().len() <= params.max_conn + params.max_slaves,
                "capacity exceeded: {} neighbors",
                algo.neighbors().len()
            );
        }
    }

    /// The connection table's keep-alive protocol never double-counts:
    /// established + closed is consistent with what we drove in.
    fn conn_table_bookkeeping(ops in vec_of((0u8..5, 1u32..6), 1..80)) {
        let params = OverlayParams::default();
        let mut tb = ConnTable::new();
        let mut now = SimTime::ZERO;
        for (op, peer) in ops {
            now += SimDuration::from_secs(1);
            let peer = NodeId(peer);
            match op {
                0 => { tb.open_out(peer, ConnKind::Regular, now); }
                1 => { tb.open_in(peer, ConnKind::Random, now); }
                2 => { tb.on_accepted(peer, now, &params); }
                3 => { tb.on_confirmed(peer, now); }
                _ => { tb.close(peer, p2p_adhoc::core::CloseReason::Reset); }
            }
            let _ = tb.tick(now, &params);
            let stats = tb.stats();
            prop_assert!(stats.closed_total() <= stats.established + 80);
            prop_assert!(tb.established_count() <= tb.len());
        }
    }
}

/// Meta-test for the harness itself: an invariant checker wired through
/// testkit catches a deliberately broken law and prints a replayable seed.
#[test]
fn broken_invariants_are_caught_with_a_replayable_seed() {
    let outcome = std::panic::catch_unwind(|| {
        manet_testkit::check(
            "properties::deliberately_broken_law",
            &Config::cases(3),
            (any_u64(),),
            |&(seed,)| {
                let scenario = Scenario::quick(10, AlgoKind::Regular, 30);
                let r = World::new(scenario.clone(), seed).run();
                let mut violations = check_result(&scenario, &r);
                // The broken "law": a running radio never transmits. Any
                // live world falsifies it immediately.
                if r.phy_total.frames_sent > 0 {
                    violations.push(format!(
                        "silence law: {} frames sent",
                        r.phy_total.frames_sent
                    ));
                }
                if violations.is_empty() {
                    Ok(())
                } else {
                    Err(manet_testkit::CaseError::fail(format!("{violations:?}")))
                }
            },
        );
    });
    let payload = outcome.expect_err("the broken law must be falsified");
    let msg = payload
        .downcast_ref::<String>()
        .expect("testkit panics with a String report");
    assert!(msg.contains("silence law"), "wrong failure: {msg}");
    assert!(msg.contains("case seed: 0x"), "no case seed in: {msg}");
    assert!(msg.contains("TESTKIT_SEED="), "no replay line in: {msg}");
}
