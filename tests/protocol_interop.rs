//! Cross-crate protocol tests: the overlay algorithms driven over the real
//! AODV machinery (via the routing test harness), without the full world.
//!
//! The sim-level tests check outcomes statistically; these check exact
//! message choreography across crate boundaries — which overlay message
//! rides which routing primitive, and what the hop counts look like to the
//! upper layer.

use p2p_adhoc::aodv::testkit::TestNet;
use p2p_adhoc::aodv::Payload;
use p2p_adhoc::core::{OverlayMsg, ProbeKind};
use p2p_adhoc::des::NodeId;
use p2p_adhoc::sim::AppMsg;

fn assert_payload<P: Payload>() {}

#[test]
fn sim_payload_implements_routing_payload() {
    // Compile-time check that the sim payload satisfies the routing trait.
    assert_payload::<AppMsg>();
}

#[test]
fn overlay_probe_rides_the_controlled_flood() {
    let mut net: TestNet<AppMsg> = TestNet::line(5, Default::default());
    net.flood(
        0,
        2,
        AppMsg::Overlay(OverlayMsg::Probe {
            kind: ProbeKind::Regular,
        }),
    );
    // TTL 2: nodes 1 and 2 hear it with their true ad-hoc distances.
    let got: Vec<(u32, u8)> = net
        .flood_delivered
        .iter()
        .map(|(at, _, hops, _)| (at.0, *hops))
        .collect();
    assert_eq!(got, vec![(1, 1), (2, 2)]);
}

#[test]
fn offers_route_back_without_extra_discovery() {
    // The responder answers a flood by unicast; thanks to flood route
    // learning no RREQ is needed for the reply.
    let mut net: TestNet<AppMsg> = TestNet::line(4, Default::default());
    net.flood(
        0,
        3,
        AppMsg::Overlay(OverlayMsg::Probe {
            kind: ProbeKind::Regular,
        }),
    );
    let rreqs_before = net.nodes[3].stats().rreqs_originated;
    net.send(
        3,
        0,
        AppMsg::Overlay(OverlayMsg::Offer {
            kind: ProbeKind::Regular,
        }),
    );
    assert_eq!(net.nodes[3].stats().rreqs_originated, rreqs_before);
    assert_eq!(net.delivered.len(), 1);
    let (at, src, hops, ref payload) = net.delivered[0];
    assert_eq!(at, NodeId(0));
    assert_eq!(src, NodeId(3));
    assert_eq!(hops, 3, "the pong distance rule sees true ad-hoc hops");
    assert!(matches!(
        payload,
        AppMsg::Overlay(OverlayMsg::Offer {
            kind: ProbeKind::Regular
        })
    ));
}

#[test]
fn app_payload_sizes_propagate_to_wire() {
    use p2p_adhoc::aodv::{Data, Msg};
    let ping = AppMsg::Overlay(OverlayMsg::Ping { token: 1 });
    let msg: Msg<AppMsg> = Msg::Data(Data {
        src: NodeId(0),
        dst: NodeId(1),
        hops: 0,
        payload: ping.clone(),
        ctx: p2p_adhoc::des::TraceCtx::NONE,
    });
    assert_eq!(
        msg.wire_size(),
        p2p_adhoc::aodv::msg::LINK_HEADER + 16 + ping.wire_size()
    );
}
