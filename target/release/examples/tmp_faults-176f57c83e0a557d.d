/root/repo/target/release/examples/tmp_faults-176f57c83e0a557d.d: examples/tmp_faults.rs

/root/repo/target/release/examples/tmp_faults-176f57c83e0a557d: examples/tmp_faults.rs

examples/tmp_faults.rs:
