/root/repo/target/release/examples/quickstart-e97fc9708328cf20.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e97fc9708328cf20: examples/quickstart.rs

examples/quickstart.rs:
