/root/repo/target/release/deps/sweep-2d16c8cfcaf54797.d: crates/sim/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-2d16c8cfcaf54797: crates/sim/src/bin/sweep.rs

crates/sim/src/bin/sweep.rs:
