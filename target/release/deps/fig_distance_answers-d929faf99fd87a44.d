/root/repo/target/release/deps/fig_distance_answers-d929faf99fd87a44.d: crates/sim/src/bin/fig_distance_answers.rs

/root/repo/target/release/deps/fig_distance_answers-d929faf99fd87a44: crates/sim/src/bin/fig_distance_answers.rs

crates/sim/src/bin/fig_distance_answers.rs:
