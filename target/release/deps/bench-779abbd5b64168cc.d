/root/repo/target/release/deps/bench-779abbd5b64168cc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-779abbd5b64168cc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-779abbd5b64168cc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
