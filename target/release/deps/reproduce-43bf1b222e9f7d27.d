/root/repo/target/release/deps/reproduce-43bf1b222e9f7d27.d: crates/sim/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-43bf1b222e9f7d27: crates/sim/src/bin/reproduce.rs

crates/sim/src/bin/reproduce.rs:
