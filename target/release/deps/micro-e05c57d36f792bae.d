/root/repo/target/release/deps/micro-e05c57d36f792bae.d: crates/bench/src/bin/micro.rs

/root/repo/target/release/deps/micro-e05c57d36f792bae: crates/bench/src/bin/micro.rs

crates/bench/src/bin/micro.rs:
