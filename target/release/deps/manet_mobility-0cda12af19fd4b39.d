/root/repo/target/release/deps/manet_mobility-0cda12af19fd4b39.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

/root/repo/target/release/deps/libmanet_mobility-0cda12af19fd4b39.rlib: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

/root/repo/target/release/deps/libmanet_mobility-0cda12af19fd4b39.rmeta: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/model.rs:
crates/mobility/src/rpgm.rs:
crates/mobility/src/stationary.rs:
crates/mobility/src/walk.rs:
crates/mobility/src/waypoint.rs:
