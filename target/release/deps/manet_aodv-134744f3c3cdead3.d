/root/repo/target/release/deps/manet_aodv-134744f3c3cdead3.d: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

/root/repo/target/release/deps/libmanet_aodv-134744f3c3cdead3.rlib: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

/root/repo/target/release/deps/libmanet_aodv-134744f3c3cdead3.rmeta: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

crates/aodv/src/lib.rs:
crates/aodv/src/cfg.rs:
crates/aodv/src/machine.rs:
crates/aodv/src/msg.rs:
crates/aodv/src/table.rs:
crates/aodv/src/testkit.rs:
