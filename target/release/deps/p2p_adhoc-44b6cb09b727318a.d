/root/repo/target/release/deps/p2p_adhoc-44b6cb09b727318a.d: src/lib.rs

/root/repo/target/release/deps/libp2p_adhoc-44b6cb09b727318a.rlib: src/lib.rs

/root/repo/target/release/deps/libp2p_adhoc-44b6cb09b727318a.rmeta: src/lib.rs

src/lib.rs:
