/root/repo/target/release/deps/fig_pings-1ab6783d3d47cbb2.d: crates/sim/src/bin/fig_pings.rs

/root/repo/target/release/deps/fig_pings-1ab6783d3d47cbb2: crates/sim/src/bin/fig_pings.rs

crates/sim/src/bin/fig_pings.rs:
