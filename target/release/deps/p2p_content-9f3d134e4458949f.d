/root/repo/target/release/deps/p2p_content-9f3d134e4458949f.d: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

/root/repo/target/release/deps/libp2p_content-9f3d134e4458949f.rlib: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

/root/repo/target/release/deps/libp2p_content-9f3d134e4458949f.rmeta: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

crates/content/src/lib.rs:
crates/content/src/catalog.rs:
crates/content/src/query.rs:
