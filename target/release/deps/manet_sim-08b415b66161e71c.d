/root/repo/target/release/deps/manet_sim-08b415b66161e71c.d: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs

/root/repo/target/release/deps/libmanet_sim-08b415b66161e71c.rlib: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs

/root/repo/target/release/deps/libmanet_sim-08b415b66161e71c.rmeta: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/experiments.rs:
crates/sim/src/faults.rs:
crates/sim/src/invariants.rs:
crates/sim/src/payload.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
