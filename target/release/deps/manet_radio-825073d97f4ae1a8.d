/root/repo/target/release/deps/manet_radio-825073d97f4ae1a8.d: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

/root/repo/target/release/deps/libmanet_radio-825073d97f4ae1a8.rlib: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

/root/repo/target/release/deps/libmanet_radio-825073d97f4ae1a8.rmeta: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

crates/radio/src/lib.rs:
crates/radio/src/config.rs:
crates/radio/src/energy.rs:
crates/radio/src/medium.rs:
crates/radio/src/stats.rs:
