/root/repo/target/release/deps/manet_testkit-5a695a47720716d0.d: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

/root/repo/target/release/deps/libmanet_testkit-5a695a47720716d0.rlib: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

/root/repo/target/release/deps/libmanet_testkit-5a695a47720716d0.rmeta: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
