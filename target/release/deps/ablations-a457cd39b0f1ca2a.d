/root/repo/target/release/deps/ablations-a457cd39b0f1ca2a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-a457cd39b0f1ca2a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
