/root/repo/target/release/deps/manet_graph-f43c5846e9f2af15.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

/root/repo/target/release/deps/libmanet_graph-f43c5846e9f2af15.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

/root/repo/target/release/deps/libmanet_graph-f43c5846e9f2af15.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/graph.rs:
