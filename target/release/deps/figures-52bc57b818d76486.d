/root/repo/target/release/deps/figures-52bc57b818d76486.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-52bc57b818d76486: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
