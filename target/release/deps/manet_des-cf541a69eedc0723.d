/root/repo/target/release/deps/manet_des-cf541a69eedc0723.d: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/release/deps/libmanet_des-cf541a69eedc0723.rlib: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/release/deps/libmanet_des-cf541a69eedc0723.rmeta: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/ids.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/time.rs:
