/root/repo/target/release/deps/fig_queries-7dc3d3f8407efdb4.d: crates/sim/src/bin/fig_queries.rs

/root/repo/target/release/deps/fig_queries-7dc3d3f8407efdb4: crates/sim/src/bin/fig_queries.rs

crates/sim/src/bin/fig_queries.rs:
