/root/repo/target/release/deps/p2p_core-22aef1ab4c871be2.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libp2p_core-22aef1ab4c871be2.rlib: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libp2p_core-22aef1ab4c871be2.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/basic.rs:
crates/core/src/conn.rs:
crates/core/src/cycle.rs:
crates/core/src/hybrid.rs:
crates/core/src/msg.rs:
crates/core/src/params.rs:
crates/core/src/random.rs:
crates/core/src/regular.rs:
crates/core/src/topology.rs:
