/root/repo/target/release/deps/small_world_study-4ef2fa24b1c0c67f.d: crates/sim/src/bin/small_world_study.rs

/root/repo/target/release/deps/small_world_study-4ef2fa24b1c0c67f: crates/sim/src/bin/small_world_study.rs

crates/sim/src/bin/small_world_study.rs:
