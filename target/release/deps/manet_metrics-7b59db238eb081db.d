/root/repo/target/release/deps/manet_metrics-7b59db238eb081db.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libmanet_metrics-7b59db238eb081db.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libmanet_metrics-7b59db238eb081db.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/distance.rs:
crates/metrics/src/summary.rs:
