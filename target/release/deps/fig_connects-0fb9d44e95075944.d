/root/repo/target/release/deps/fig_connects-0fb9d44e95075944.d: crates/sim/src/bin/fig_connects.rs

/root/repo/target/release/deps/fig_connects-0fb9d44e95075944: crates/sim/src/bin/fig_connects.rs

crates/sim/src/bin/fig_connects.rs:
