/root/repo/target/release/deps/manet_geom-ca088a2c28adb203.d: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

/root/repo/target/release/deps/libmanet_geom-ca088a2c28adb203.rlib: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

/root/repo/target/release/deps/libmanet_geom-ca088a2c28adb203.rmeta: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

crates/geom/src/lib.rs:
crates/geom/src/grid.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
