/root/repo/target/release/libmanet_geom.rlib: /root/repo/crates/geom/src/grid.rs /root/repo/crates/geom/src/lib.rs /root/repo/crates/geom/src/point.rs /root/repo/crates/geom/src/rect.rs
