/root/repo/target/release/libmanet_graph.rlib: /root/repo/crates/graph/src/analysis.rs /root/repo/crates/graph/src/graph.rs /root/repo/crates/graph/src/lib.rs
