/root/repo/target/debug/examples/conference_hall-26c13e9bb6e841d0.d: examples/conference_hall.rs Cargo.toml

/root/repo/target/debug/examples/libconference_hall-26c13e9bb6e841d0.rmeta: examples/conference_hall.rs Cargo.toml

examples/conference_hall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
