/root/repo/target/debug/examples/conference_hall-2b7e3883c85d9705.d: examples/conference_hall.rs

/root/repo/target/debug/examples/conference_hall-2b7e3883c85d9705: examples/conference_hall.rs

examples/conference_hall.rs:
