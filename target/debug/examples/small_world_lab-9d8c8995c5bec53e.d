/root/repo/target/debug/examples/small_world_lab-9d8c8995c5bec53e.d: examples/small_world_lab.rs Cargo.toml

/root/repo/target/debug/examples/libsmall_world_lab-9d8c8995c5bec53e.rmeta: examples/small_world_lab.rs Cargo.toml

examples/small_world_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
