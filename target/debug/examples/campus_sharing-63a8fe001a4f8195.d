/root/repo/target/debug/examples/campus_sharing-63a8fe001a4f8195.d: examples/campus_sharing.rs Cargo.toml

/root/repo/target/debug/examples/libcampus_sharing-63a8fe001a4f8195.rmeta: examples/campus_sharing.rs Cargo.toml

examples/campus_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
