/root/repo/target/debug/examples/emergency_rescue-dcd8457792101f35.d: examples/emergency_rescue.rs Cargo.toml

/root/repo/target/debug/examples/libemergency_rescue-dcd8457792101f35.rmeta: examples/emergency_rescue.rs Cargo.toml

examples/emergency_rescue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
