/root/repo/target/debug/examples/quickstart-9ce722d51ffe2476.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ce722d51ffe2476: examples/quickstart.rs

examples/quickstart.rs:
