/root/repo/target/debug/examples/small_world_lab-61927c69d4067002.d: examples/small_world_lab.rs

/root/repo/target/debug/examples/small_world_lab-61927c69d4067002: examples/small_world_lab.rs

examples/small_world_lab.rs:
