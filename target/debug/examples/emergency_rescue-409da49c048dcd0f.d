/root/repo/target/debug/examples/emergency_rescue-409da49c048dcd0f.d: examples/emergency_rescue.rs

/root/repo/target/debug/examples/emergency_rescue-409da49c048dcd0f: examples/emergency_rescue.rs

examples/emergency_rescue.rs:
