/root/repo/target/debug/examples/campus_sharing-fa2f5919682ffbb9.d: examples/campus_sharing.rs

/root/repo/target/debug/examples/campus_sharing-fa2f5919682ffbb9: examples/campus_sharing.rs

examples/campus_sharing.rs:
