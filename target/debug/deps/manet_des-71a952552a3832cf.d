/root/repo/target/debug/deps/manet_des-71a952552a3832cf.d: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libmanet_des-71a952552a3832cf.rlib: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libmanet_des-71a952552a3832cf.rmeta: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/ids.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/time.rs:
