/root/repo/target/debug/deps/fig_distance_answers-c3c21ddd79d2eb28.d: crates/sim/src/bin/fig_distance_answers.rs Cargo.toml

/root/repo/target/debug/deps/libfig_distance_answers-c3c21ddd79d2eb28.rmeta: crates/sim/src/bin/fig_distance_answers.rs Cargo.toml

crates/sim/src/bin/fig_distance_answers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
