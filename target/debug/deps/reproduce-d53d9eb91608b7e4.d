/root/repo/target/debug/deps/reproduce-d53d9eb91608b7e4.d: crates/sim/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-d53d9eb91608b7e4: crates/sim/src/bin/reproduce.rs

crates/sim/src/bin/reproduce.rs:
