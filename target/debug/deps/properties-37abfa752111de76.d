/root/repo/target/debug/deps/properties-37abfa752111de76.d: tests/properties.rs

/root/repo/target/debug/deps/properties-37abfa752111de76: tests/properties.rs

tests/properties.rs:
