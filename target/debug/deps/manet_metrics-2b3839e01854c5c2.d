/root/repo/target/debug/deps/manet_metrics-2b3839e01854c5c2.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/manet_metrics-2b3839e01854c5c2: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/distance.rs:
crates/metrics/src/summary.rs:
