/root/repo/target/debug/deps/manet_metrics-77b643cd30adbf09.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libmanet_metrics-77b643cd30adbf09.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libmanet_metrics-77b643cd30adbf09.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/distance.rs:
crates/metrics/src/summary.rs:
