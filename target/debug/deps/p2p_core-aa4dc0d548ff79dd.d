/root/repo/target/debug/deps/p2p_core-aa4dc0d548ff79dd.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/p2p_core-aa4dc0d548ff79dd: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/basic.rs:
crates/core/src/conn.rs:
crates/core/src/cycle.rs:
crates/core/src/hybrid.rs:
crates/core/src/msg.rs:
crates/core/src/params.rs:
crates/core/src/random.rs:
crates/core/src/regular.rs:
crates/core/src/topology.rs:
