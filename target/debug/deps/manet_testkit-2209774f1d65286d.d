/root/repo/target/debug/deps/manet_testkit-2209774f1d65286d.d: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_testkit-2209774f1d65286d.rmeta: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
