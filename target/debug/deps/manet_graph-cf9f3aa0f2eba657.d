/root/repo/target/debug/deps/manet_graph-cf9f3aa0f2eba657.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

/root/repo/target/debug/deps/manet_graph-cf9f3aa0f2eba657: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/graph.rs:
