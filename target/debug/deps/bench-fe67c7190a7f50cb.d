/root/repo/target/debug/deps/bench-fe67c7190a7f50cb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-fe67c7190a7f50cb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
