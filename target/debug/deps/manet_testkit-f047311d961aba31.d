/root/repo/target/debug/deps/manet_testkit-f047311d961aba31.d: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_testkit-f047311d961aba31.rmeta: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
