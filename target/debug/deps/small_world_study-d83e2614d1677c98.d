/root/repo/target/debug/deps/small_world_study-d83e2614d1677c98.d: crates/sim/src/bin/small_world_study.rs Cargo.toml

/root/repo/target/debug/deps/libsmall_world_study-d83e2614d1677c98.rmeta: crates/sim/src/bin/small_world_study.rs Cargo.toml

crates/sim/src/bin/small_world_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
