/root/repo/target/debug/deps/sweep-c60abdb274bc7ed9.d: crates/sim/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-c60abdb274bc7ed9: crates/sim/src/bin/sweep.rs

crates/sim/src/bin/sweep.rs:
