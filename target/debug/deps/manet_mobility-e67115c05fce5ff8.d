/root/repo/target/debug/deps/manet_mobility-e67115c05fce5ff8.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

/root/repo/target/debug/deps/libmanet_mobility-e67115c05fce5ff8.rlib: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

/root/repo/target/debug/deps/libmanet_mobility-e67115c05fce5ff8.rmeta: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/model.rs:
crates/mobility/src/rpgm.rs:
crates/mobility/src/stationary.rs:
crates/mobility/src/walk.rs:
crates/mobility/src/waypoint.rs:
