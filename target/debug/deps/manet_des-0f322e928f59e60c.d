/root/repo/target/debug/deps/manet_des-0f322e928f59e60c.d: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_des-0f322e928f59e60c.rmeta: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/ids.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
