/root/repo/target/debug/deps/micro-c45d2e0964ba93e8.d: crates/bench/src/bin/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-c45d2e0964ba93e8.rmeta: crates/bench/src/bin/micro.rs Cargo.toml

crates/bench/src/bin/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
