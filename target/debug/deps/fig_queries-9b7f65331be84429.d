/root/repo/target/debug/deps/fig_queries-9b7f65331be84429.d: crates/sim/src/bin/fig_queries.rs

/root/repo/target/debug/deps/fig_queries-9b7f65331be84429: crates/sim/src/bin/fig_queries.rs

crates/sim/src/bin/fig_queries.rs:
