/root/repo/target/debug/deps/manet_geom-af55f05a6356a3f6.d: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

/root/repo/target/debug/deps/libmanet_geom-af55f05a6356a3f6.rlib: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

/root/repo/target/debug/deps/libmanet_geom-af55f05a6356a3f6.rmeta: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

crates/geom/src/lib.rs:
crates/geom/src/grid.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
