/root/repo/target/debug/deps/manet_sim-a11fa5e2f53c92d0.d: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/manet_sim-a11fa5e2f53c92d0: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/experiments.rs:
crates/sim/src/faults.rs:
crates/sim/src/invariants.rs:
crates/sim/src/payload.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
