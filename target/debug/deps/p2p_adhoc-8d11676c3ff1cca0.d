/root/repo/target/debug/deps/p2p_adhoc-8d11676c3ff1cca0.d: src/lib.rs

/root/repo/target/debug/deps/p2p_adhoc-8d11676c3ff1cca0: src/lib.rs

src/lib.rs:
