/root/repo/target/debug/deps/properties-ee25c25cd850eca2.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ee25c25cd850eca2.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
