/root/repo/target/debug/deps/manet_radio-c50945d7da280267.d: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

/root/repo/target/debug/deps/libmanet_radio-c50945d7da280267.rlib: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

/root/repo/target/debug/deps/libmanet_radio-c50945d7da280267.rmeta: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

crates/radio/src/lib.rs:
crates/radio/src/config.rs:
crates/radio/src/energy.rs:
crates/radio/src/medium.rs:
crates/radio/src/stats.rs:
