/root/repo/target/debug/deps/perf_probe-b2f771b2b1338e38.d: crates/sim/tests/perf_probe.rs Cargo.toml

/root/repo/target/debug/deps/libperf_probe-b2f771b2b1338e38.rmeta: crates/sim/tests/perf_probe.rs Cargo.toml

crates/sim/tests/perf_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
