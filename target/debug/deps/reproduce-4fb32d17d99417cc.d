/root/repo/target/debug/deps/reproduce-4fb32d17d99417cc.d: crates/sim/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-4fb32d17d99417cc.rmeta: crates/sim/src/bin/reproduce.rs Cargo.toml

crates/sim/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
