/root/repo/target/debug/deps/p2p_core-1810b09ed11c3141.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libp2p_core-1810b09ed11c3141.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/basic.rs crates/core/src/conn.rs crates/core/src/cycle.rs crates/core/src/hybrid.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/random.rs crates/core/src/regular.rs crates/core/src/topology.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/basic.rs:
crates/core/src/conn.rs:
crates/core/src/cycle.rs:
crates/core/src/hybrid.rs:
crates/core/src/msg.rs:
crates/core/src/params.rs:
crates/core/src/random.rs:
crates/core/src/regular.rs:
crates/core/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
