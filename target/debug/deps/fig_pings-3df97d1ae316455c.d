/root/repo/target/debug/deps/fig_pings-3df97d1ae316455c.d: crates/sim/src/bin/fig_pings.rs

/root/repo/target/debug/deps/fig_pings-3df97d1ae316455c: crates/sim/src/bin/fig_pings.rs

crates/sim/src/bin/fig_pings.rs:
