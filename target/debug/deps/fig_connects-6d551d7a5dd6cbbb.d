/root/repo/target/debug/deps/fig_connects-6d551d7a5dd6cbbb.d: crates/sim/src/bin/fig_connects.rs

/root/repo/target/debug/deps/fig_connects-6d551d7a5dd6cbbb: crates/sim/src/bin/fig_connects.rs

crates/sim/src/bin/fig_connects.rs:
