/root/repo/target/debug/deps/p2p_adhoc-334b16291f8d677b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libp2p_adhoc-334b16291f8d677b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
