/root/repo/target/debug/deps/small_world_study-9a94c28d3f2614f8.d: crates/sim/src/bin/small_world_study.rs

/root/repo/target/debug/deps/small_world_study-9a94c28d3f2614f8: crates/sim/src/bin/small_world_study.rs

crates/sim/src/bin/small_world_study.rs:
