/root/repo/target/debug/deps/p2p_adhoc-93a0558c68387002.d: src/lib.rs

/root/repo/target/debug/deps/libp2p_adhoc-93a0558c68387002.rlib: src/lib.rs

/root/repo/target/debug/deps/libp2p_adhoc-93a0558c68387002.rmeta: src/lib.rs

src/lib.rs:
