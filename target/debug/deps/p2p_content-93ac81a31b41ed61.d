/root/repo/target/debug/deps/p2p_content-93ac81a31b41ed61.d: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

/root/repo/target/debug/deps/p2p_content-93ac81a31b41ed61: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

crates/content/src/lib.rs:
crates/content/src/catalog.rs:
crates/content/src/query.rs:
