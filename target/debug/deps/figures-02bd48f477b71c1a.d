/root/repo/target/debug/deps/figures-02bd48f477b71c1a.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-02bd48f477b71c1a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
