/root/repo/target/debug/deps/perf_probe-d43dedc50aee2af0.d: crates/sim/tests/perf_probe.rs

/root/repo/target/debug/deps/perf_probe-d43dedc50aee2af0: crates/sim/tests/perf_probe.rs

crates/sim/tests/perf_probe.rs:
