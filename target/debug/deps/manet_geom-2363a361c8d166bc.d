/root/repo/target/debug/deps/manet_geom-2363a361c8d166bc.d: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

/root/repo/target/debug/deps/manet_geom-2363a361c8d166bc: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs

crates/geom/src/lib.rs:
crates/geom/src/grid.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
