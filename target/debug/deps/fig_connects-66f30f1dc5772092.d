/root/repo/target/debug/deps/fig_connects-66f30f1dc5772092.d: crates/sim/src/bin/fig_connects.rs

/root/repo/target/debug/deps/fig_connects-66f30f1dc5772092: crates/sim/src/bin/fig_connects.rs

crates/sim/src/bin/fig_connects.rs:
