/root/repo/target/debug/deps/full_stack-db26e79a69498e26.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-db26e79a69498e26: tests/full_stack.rs

tests/full_stack.rs:
