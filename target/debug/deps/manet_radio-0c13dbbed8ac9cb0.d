/root/repo/target/debug/deps/manet_radio-0c13dbbed8ac9cb0.d: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

/root/repo/target/debug/deps/manet_radio-0c13dbbed8ac9cb0: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs

crates/radio/src/lib.rs:
crates/radio/src/config.rs:
crates/radio/src/energy.rs:
crates/radio/src/medium.rs:
crates/radio/src/stats.rs:
