/root/repo/target/debug/deps/fig_queries-0051ea164fe56401.d: crates/sim/src/bin/fig_queries.rs Cargo.toml

/root/repo/target/debug/deps/libfig_queries-0051ea164fe56401.rmeta: crates/sim/src/bin/fig_queries.rs Cargo.toml

crates/sim/src/bin/fig_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
