/root/repo/target/debug/deps/manet_mobility-4a35fb5b3c3001d9.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

/root/repo/target/debug/deps/manet_mobility-4a35fb5b3c3001d9: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/model.rs:
crates/mobility/src/rpgm.rs:
crates/mobility/src/stationary.rs:
crates/mobility/src/walk.rs:
crates/mobility/src/waypoint.rs:
