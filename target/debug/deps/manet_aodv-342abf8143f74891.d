/root/repo/target/debug/deps/manet_aodv-342abf8143f74891.d: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_aodv-342abf8143f74891.rmeta: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs Cargo.toml

crates/aodv/src/lib.rs:
crates/aodv/src/cfg.rs:
crates/aodv/src/machine.rs:
crates/aodv/src/msg.rs:
crates/aodv/src/table.rs:
crates/aodv/src/testkit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
