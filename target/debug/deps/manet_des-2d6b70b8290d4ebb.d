/root/repo/target/debug/deps/manet_des-2d6b70b8290d4ebb.d: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/debug/deps/manet_des-2d6b70b8290d4ebb: crates/des/src/lib.rs crates/des/src/ids.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/ids.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/time.rs:
