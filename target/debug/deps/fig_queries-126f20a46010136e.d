/root/repo/target/debug/deps/fig_queries-126f20a46010136e.d: crates/sim/src/bin/fig_queries.rs Cargo.toml

/root/repo/target/debug/deps/libfig_queries-126f20a46010136e.rmeta: crates/sim/src/bin/fig_queries.rs Cargo.toml

crates/sim/src/bin/fig_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
