/root/repo/target/debug/deps/fig_pings-335a9c7ff2eaa974.d: crates/sim/src/bin/fig_pings.rs

/root/repo/target/debug/deps/fig_pings-335a9c7ff2eaa974: crates/sim/src/bin/fig_pings.rs

crates/sim/src/bin/fig_pings.rs:
