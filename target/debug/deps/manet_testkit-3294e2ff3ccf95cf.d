/root/repo/target/debug/deps/manet_testkit-3294e2ff3ccf95cf.d: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/manet_testkit-3294e2ff3ccf95cf: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
