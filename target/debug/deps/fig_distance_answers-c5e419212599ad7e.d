/root/repo/target/debug/deps/fig_distance_answers-c5e419212599ad7e.d: crates/sim/src/bin/fig_distance_answers.rs Cargo.toml

/root/repo/target/debug/deps/libfig_distance_answers-c5e419212599ad7e.rmeta: crates/sim/src/bin/fig_distance_answers.rs Cargo.toml

crates/sim/src/bin/fig_distance_answers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
