/root/repo/target/debug/deps/reproduce-39a5d6c460aefa11.d: crates/sim/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-39a5d6c460aefa11.rmeta: crates/sim/src/bin/reproduce.rs Cargo.toml

crates/sim/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
