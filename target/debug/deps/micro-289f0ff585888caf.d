/root/repo/target/debug/deps/micro-289f0ff585888caf.d: crates/bench/src/bin/micro.rs

/root/repo/target/debug/deps/micro-289f0ff585888caf: crates/bench/src/bin/micro.rs

crates/bench/src/bin/micro.rs:
