/root/repo/target/debug/deps/bench-27f36885d99eb9cc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-27f36885d99eb9cc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-27f36885d99eb9cc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
