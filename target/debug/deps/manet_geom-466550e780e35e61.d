/root/repo/target/debug/deps/manet_geom-466550e780e35e61.d: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_geom-466550e780e35e61.rmeta: crates/geom/src/lib.rs crates/geom/src/grid.rs crates/geom/src/point.rs crates/geom/src/rect.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/grid.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
