/root/repo/target/debug/deps/sweep-9fdfdd5dc7d9c37f.d: crates/sim/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-9fdfdd5dc7d9c37f: crates/sim/src/bin/sweep.rs

crates/sim/src/bin/sweep.rs:
