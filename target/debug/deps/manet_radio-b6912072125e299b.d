/root/repo/target/debug/deps/manet_radio-b6912072125e299b.d: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_radio-b6912072125e299b.rmeta: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs Cargo.toml

crates/radio/src/lib.rs:
crates/radio/src/config.rs:
crates/radio/src/energy.rs:
crates/radio/src/medium.rs:
crates/radio/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
