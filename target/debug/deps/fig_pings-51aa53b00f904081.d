/root/repo/target/debug/deps/fig_pings-51aa53b00f904081.d: crates/sim/src/bin/fig_pings.rs Cargo.toml

/root/repo/target/debug/deps/libfig_pings-51aa53b00f904081.rmeta: crates/sim/src/bin/fig_pings.rs Cargo.toml

crates/sim/src/bin/fig_pings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
