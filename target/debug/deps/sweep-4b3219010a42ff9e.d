/root/repo/target/debug/deps/sweep-4b3219010a42ff9e.d: crates/sim/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-4b3219010a42ff9e.rmeta: crates/sim/src/bin/sweep.rs Cargo.toml

crates/sim/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
