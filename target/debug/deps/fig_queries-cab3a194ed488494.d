/root/repo/target/debug/deps/fig_queries-cab3a194ed488494.d: crates/sim/src/bin/fig_queries.rs

/root/repo/target/debug/deps/fig_queries-cab3a194ed488494: crates/sim/src/bin/fig_queries.rs

crates/sim/src/bin/fig_queries.rs:
