/root/repo/target/debug/deps/manet_testkit-264a20f4050e7149.d: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/libmanet_testkit-264a20f4050e7149.rlib: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/libmanet_testkit-264a20f4050e7149.rmeta: crates/testkit/src/lib.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
