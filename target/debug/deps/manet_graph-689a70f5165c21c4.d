/root/repo/target/debug/deps/manet_graph-689a70f5165c21c4.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

/root/repo/target/debug/deps/libmanet_graph-689a70f5165c21c4.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

/root/repo/target/debug/deps/libmanet_graph-689a70f5165c21c4.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/graph.rs:
