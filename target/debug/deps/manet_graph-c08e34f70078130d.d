/root/repo/target/debug/deps/manet_graph-c08e34f70078130d.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_graph-c08e34f70078130d.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/graph.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
