/root/repo/target/debug/deps/p2p_content-a4a681f00195051b.d: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs Cargo.toml

/root/repo/target/debug/deps/libp2p_content-a4a681f00195051b.rmeta: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs Cargo.toml

crates/content/src/lib.rs:
crates/content/src/catalog.rs:
crates/content/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
