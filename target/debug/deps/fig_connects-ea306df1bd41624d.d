/root/repo/target/debug/deps/fig_connects-ea306df1bd41624d.d: crates/sim/src/bin/fig_connects.rs Cargo.toml

/root/repo/target/debug/deps/libfig_connects-ea306df1bd41624d.rmeta: crates/sim/src/bin/fig_connects.rs Cargo.toml

crates/sim/src/bin/fig_connects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
