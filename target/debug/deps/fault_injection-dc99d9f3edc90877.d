/root/repo/target/debug/deps/fault_injection-dc99d9f3edc90877.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-dc99d9f3edc90877: tests/fault_injection.rs

tests/fault_injection.rs:
