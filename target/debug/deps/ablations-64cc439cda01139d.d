/root/repo/target/debug/deps/ablations-64cc439cda01139d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-64cc439cda01139d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
