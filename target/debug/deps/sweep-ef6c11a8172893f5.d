/root/repo/target/debug/deps/sweep-ef6c11a8172893f5.d: crates/sim/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-ef6c11a8172893f5.rmeta: crates/sim/src/bin/sweep.rs Cargo.toml

crates/sim/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
