/root/repo/target/debug/deps/p2p_content-5218055a268da952.d: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs Cargo.toml

/root/repo/target/debug/deps/libp2p_content-5218055a268da952.rmeta: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs Cargo.toml

crates/content/src/lib.rs:
crates/content/src/catalog.rs:
crates/content/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
