/root/repo/target/debug/deps/manet_sim-b94d7e0f0eb06b3b.d: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_sim-b94d7e0f0eb06b3b.rmeta: crates/sim/src/lib.rs crates/sim/src/experiments.rs crates/sim/src/faults.rs crates/sim/src/invariants.rs crates/sim/src/payload.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/trace.rs crates/sim/src/world.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/experiments.rs:
crates/sim/src/faults.rs:
crates/sim/src/invariants.rs:
crates/sim/src/payload.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
