/root/repo/target/debug/deps/manet_aodv-cbaf9018d58b5af8.d: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

/root/repo/target/debug/deps/manet_aodv-cbaf9018d58b5af8: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

crates/aodv/src/lib.rs:
crates/aodv/src/cfg.rs:
crates/aodv/src/machine.rs:
crates/aodv/src/msg.rs:
crates/aodv/src/table.rs:
crates/aodv/src/testkit.rs:
