/root/repo/target/debug/deps/small_world_study-164a51e50dfb85c9.d: crates/sim/src/bin/small_world_study.rs

/root/repo/target/debug/deps/small_world_study-164a51e50dfb85c9: crates/sim/src/bin/small_world_study.rs

crates/sim/src/bin/small_world_study.rs:
