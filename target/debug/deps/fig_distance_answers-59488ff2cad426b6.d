/root/repo/target/debug/deps/fig_distance_answers-59488ff2cad426b6.d: crates/sim/src/bin/fig_distance_answers.rs

/root/repo/target/debug/deps/fig_distance_answers-59488ff2cad426b6: crates/sim/src/bin/fig_distance_answers.rs

crates/sim/src/bin/fig_distance_answers.rs:
