/root/repo/target/debug/deps/fig_distance_answers-89f02a8dca3ac54f.d: crates/sim/src/bin/fig_distance_answers.rs

/root/repo/target/debug/deps/fig_distance_answers-89f02a8dca3ac54f: crates/sim/src/bin/fig_distance_answers.rs

crates/sim/src/bin/fig_distance_answers.rs:
