/root/repo/target/debug/deps/tmp_verify_replay-94827cf56cccd1e3.d: tests/tmp_verify_replay.rs

/root/repo/target/debug/deps/tmp_verify_replay-94827cf56cccd1e3: tests/tmp_verify_replay.rs

tests/tmp_verify_replay.rs:
