/root/repo/target/debug/deps/fig_connects-0a3ba94b24d8e9a0.d: crates/sim/src/bin/fig_connects.rs Cargo.toml

/root/repo/target/debug/deps/libfig_connects-0a3ba94b24d8e9a0.rmeta: crates/sim/src/bin/fig_connects.rs Cargo.toml

crates/sim/src/bin/fig_connects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
