/root/repo/target/debug/deps/manet_radio-4cfd93a6a1b012e4.d: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_radio-4cfd93a6a1b012e4.rmeta: crates/radio/src/lib.rs crates/radio/src/config.rs crates/radio/src/energy.rs crates/radio/src/medium.rs crates/radio/src/stats.rs Cargo.toml

crates/radio/src/lib.rs:
crates/radio/src/config.rs:
crates/radio/src/energy.rs:
crates/radio/src/medium.rs:
crates/radio/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
