/root/repo/target/debug/deps/manet_aodv-2aa0251ddce1af29.d: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

/root/repo/target/debug/deps/libmanet_aodv-2aa0251ddce1af29.rlib: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

/root/repo/target/debug/deps/libmanet_aodv-2aa0251ddce1af29.rmeta: crates/aodv/src/lib.rs crates/aodv/src/cfg.rs crates/aodv/src/machine.rs crates/aodv/src/msg.rs crates/aodv/src/table.rs crates/aodv/src/testkit.rs

crates/aodv/src/lib.rs:
crates/aodv/src/cfg.rs:
crates/aodv/src/machine.rs:
crates/aodv/src/msg.rs:
crates/aodv/src/table.rs:
crates/aodv/src/testkit.rs:
