/root/repo/target/debug/deps/protocol_interop-00541ca3fc3e451e.d: tests/protocol_interop.rs

/root/repo/target/debug/deps/protocol_interop-00541ca3fc3e451e: tests/protocol_interop.rs

tests/protocol_interop.rs:
