/root/repo/target/debug/deps/reproduce-ce37ef5b350218eb.d: crates/sim/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-ce37ef5b350218eb: crates/sim/src/bin/reproduce.rs

crates/sim/src/bin/reproduce.rs:
