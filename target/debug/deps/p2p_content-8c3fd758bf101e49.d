/root/repo/target/debug/deps/p2p_content-8c3fd758bf101e49.d: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

/root/repo/target/debug/deps/libp2p_content-8c3fd758bf101e49.rlib: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

/root/repo/target/debug/deps/libp2p_content-8c3fd758bf101e49.rmeta: crates/content/src/lib.rs crates/content/src/catalog.rs crates/content/src/query.rs

crates/content/src/lib.rs:
crates/content/src/catalog.rs:
crates/content/src/query.rs:
