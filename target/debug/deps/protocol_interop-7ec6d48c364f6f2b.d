/root/repo/target/debug/deps/protocol_interop-7ec6d48c364f6f2b.d: tests/protocol_interop.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_interop-7ec6d48c364f6f2b.rmeta: tests/protocol_interop.rs Cargo.toml

tests/protocol_interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
