/root/repo/target/debug/deps/micro-548dee4759c3f733.d: crates/bench/src/bin/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-548dee4759c3f733.rmeta: crates/bench/src/bin/micro.rs Cargo.toml

crates/bench/src/bin/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
