/root/repo/target/debug/deps/manet_mobility-0e2b79ef464fe227.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_mobility-0e2b79ef464fe227.rmeta: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/model.rs crates/mobility/src/rpgm.rs crates/mobility/src/stationary.rs crates/mobility/src/walk.rs crates/mobility/src/waypoint.rs Cargo.toml

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/model.rs:
crates/mobility/src/rpgm.rs:
crates/mobility/src/stationary.rs:
crates/mobility/src/walk.rs:
crates/mobility/src/waypoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
