/root/repo/target/debug/deps/manet_metrics-85a146edfe113f52.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libmanet_metrics-85a146edfe113f52.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/distance.rs crates/metrics/src/summary.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/distance.rs:
crates/metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
