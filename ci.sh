#!/usr/bin/env bash
# The tier-1 gate (see ROADMAP.md): everything here must pass fully offline
# on a clean checkout — the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== test =="
cargo test --workspace -q --offline

echo "ci.sh: all gates passed"
