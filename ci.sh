#!/usr/bin/env bash
# The tier-1 gate (see ROADMAP.md): everything here must pass fully offline
# on a clean checkout — the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

# Per-stage wall-clock accounting, printed as a summary at the end.
STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_T0=0

stage() {
    stage_end
    CURRENT_STAGE="$1"
    STAGE_T0=$SECONDS
    echo "== $CURRENT_STAGE =="
}

stage_end() {
    if [[ -n "$CURRENT_STAGE" ]]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=($((SECONDS - STAGE_T0)))
        CURRENT_STAGE=""
    fi
}

stage "fmt"
cargo fmt --all -- --check

stage "clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

stage "doc"
# Rustdoc is part of the contract: broken intra-doc links or bad code
# fences fail the gate, not just warn.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

stage "build (release)"
cargo build --workspace --release --offline

stage "test"
cargo test --workspace -q --offline

stage "bench smoke"
# One-iteration shrunken runs so the bench binaries (and their JSON output
# path) cannot bitrot. Real numbers live in the checked-in BENCH_RESULTS.json;
# the smoke run writes to a scratch file to leave the baseline untouched.
BENCH_SMOKE_JSON="target/bench_smoke.json"
rm -f "$BENCH_SMOKE_JSON"
BENCH_ITERS=1 BENCH_HOT_NODES=40 BENCH_HOT_SECS=60 BENCH_JSON="$BENCH_SMOKE_JSON" \
    cargo run --release -q --offline -p bench --bin micro > /dev/null
BENCH_ITERS=1 BENCH_JSON="$BENCH_SMOKE_JSON" \
    cargo run --release -q --offline -p bench --bin figures > /dev/null
test -s "$BENCH_SMOKE_JSON" || { echo "bench smoke produced no JSON"; exit 1; }

stage "obs smoke"
# One short instrumented run with the sink enabled; obs_check parses every
# JSONL line and asserts the core per-subsystem counters are present.
OBS_SMOKE_DIR="target/obs_smoke"
rm -rf "$OBS_SMOKE_DIR"
cargo run --release -q --offline -p manet-sim --bin reproduce -- \
    --nodes 12 --duration 60 --reps 1 --obs-out "$OBS_SMOKE_DIR" > /dev/null
cargo run --release -q --offline -p manet-obs --bin obs_check -- "$OBS_SMOKE_DIR"

stage "trace smoke"
# One short instrumented run with causal tracing on; obs_check validates
# the exported artifacts (trace-event quintet, parent links, monotone
# timestamps, JSON round-trip) and trace_query summarises one of them.
TRACE_SMOKE_DIR="target/trace_smoke"
rm -rf "$TRACE_SMOKE_DIR"
cargo run --release -q --offline -p manet-sim --bin reproduce -- \
    --nodes 20 --duration 120 --reps 1 --trace-out "$TRACE_SMOKE_DIR" > /dev/null 2>&1
cargo run --release -q --offline -p manet-obs --bin obs_check -- "$TRACE_SMOKE_DIR"
# Via a temp file rather than `| head`: head closing the pipe early would
# kill trace_query with SIGPIPE under pipefail.
cargo run --release -q --offline -p manet-obs --bin trace_query -- \
    "$TRACE_SMOKE_DIR/Regular_rep0.trace.json" > target/trace_smoke_summary.txt
head -n 5 target/trace_smoke_summary.txt
grep -q "route_discovery" target/trace_smoke_summary.txt \
    || { echo "trace_query produced no latency decomposition"; exit 1; }

stage "corpus smoke"
# The scenario-DSL corpus: parse and validate every checked-in .scn file,
# then run the two cheapest end-to-end and verify their pinned aggregates
# reproduce exactly (the full matrix runs as a tier-1 test; this guards
# the sweep/reproduce CLI paths on the release build).
cargo run --release -q --offline -p manet-sim --bin sweep -- \
    --corpus corpus --check-only
cargo run --release -q --offline -p manet-sim --bin sweep -- \
    --corpus corpus --cheapest 2
cargo run --release -q --offline -p manet-sim --bin reproduce -- \
    --scenario corpus/SELFISH_MAJORITY.scn > /dev/null

stage "shard smoke"
# The sharded executor: a corpus scenario at --shards 4 must reproduce the
# traffic aggregates of its own single-shard reference run (the reproduce
# bin performs that comparison and exits non-zero on drift), the merged
# sharded obs artifacts must satisfy the same obs_check contract as the
# sequential ones, and the city bench binary must complete at a shrunken
# scale on both paths.
OBS_SMOKE_SHARDED_DIR="target/obs_smoke_sharded"
rm -rf "$OBS_SMOKE_SHARDED_DIR"
cargo run --release -q --offline -p manet-sim --bin reproduce -- \
    --scenario corpus/REGULAR_BASELINE.scn --shards 4 \
    --obs-out "$OBS_SMOKE_SHARDED_DIR" \
    | grep -q "sharded traffic aggregates match" \
    || { echo "shard smoke: sharded aggregates diverged"; exit 1; }
cargo run --release -q --offline -p manet-obs --bin obs_check -- "$OBS_SMOKE_SHARDED_DIR"
CITY_NODES=300 CITY_SECS=20 BENCH_ITERS=1 BENCH_JSON="$BENCH_SMOKE_JSON" \
    cargo run --release -q --offline -p bench --bin city_10k > /dev/null

stage "swarm-smoke"
# The real-time substrate end-to-end: an 8-process loopback swarm runs the
# Regular algorithm over real UDP sockets for a few wall-seconds and must
# answer at least one query with every child exiting cleanly (the swarm
# bin asserts both and retries a bounded number of times before failing).
cargo run --release -q --offline -p manet-rt --bin swarm -- \
    --nodes 8 --algo regular --duration-ms 4000 --seed 1 \
    --min-answered 1 --retries 2 \
    | grep -q "SWARM OK" \
    || { echo "swarm smoke: no answered query or unclean exit"; exit 1; }
# The same swarm with observability on: every child ships telemetry frames
# over stdout, the parent merges them into one ObsReport (counters must
# reconcile exactly with the RESULT lines — the swarm bin asserts that) and
# one clock-stitched Perfetto artifact with at least one causal tree
# spanning two or more OS processes. obs_check then validates the merged
# artifacts like any other obs output directory.
SWARM_OBS_DIR="target/obs_swarm"
rm -rf "$SWARM_OBS_DIR"
cargo run --release -q --offline -p manet-rt --bin swarm -- \
    --nodes 8 --algo regular --duration-ms 4000 --seed 1 \
    --min-answered 1 --retries 2 --obs --obs-dir "$SWARM_OBS_DIR" \
    | grep -q "SWARM OK" \
    || { echo "swarm smoke (obs): merge, reconcile, or stitch failed"; exit 1; }
cargo run --release -q --offline -p manet-obs --bin obs_check -- "$SWARM_OBS_DIR"

stage "perf gate (obs tax)"
# Three throughput gates on the 200-node 900 s Regular hot-path scenario:
# the disabled sink within 1% of the checked-in baseline (observability
# must stay free when off), the enabled sink within 3% of the disabled run
# measured in the same pair (the tax budget that lets obs default to on),
# and a lockstep sharded run within 10% of its checked-in record. The
# sharded measurement merges into the smoke scratch file so the checked-in
# baseline stays untouched.
PERF_GATE_SHARDED_JSON="$BENCH_SMOKE_JSON" \
    cargo run --release -q --offline -p bench --bin perf_gate

stage_end
echo
echo "ci.sh: all gates passed"
TOTAL=0
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-26s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    TOTAL=$((TOTAL + STAGE_SECS[i]))
done
printf '  %-26s %4ds\n' "total" "$TOTAL"
