//! Property suite for the byte-exact frame codec.
//!
//! Three contracts pinned over randomly generated frames:
//!
//! 1. **Round-trip identity** — for any [`Msg<AppMsg>`] (every routing
//!    variant, every overlay and content payload, trace context present
//!    or absent), `decode_frame(&encode_frame(from, &msg))` returns the
//!    identical `(from, msg)`.
//! 2. **Typed corruption** — flipping any single byte, truncating at any
//!    prefix, or appending trailing bytes yields `Ok` with a benignly
//!    altered frame or a typed [`WireError`] — never a panic and never
//!    an out-of-domain value. A real socket feeds the decoder
//!    attacker-controlled bytes.
//! 3. **Model agreement** — the overlay codec's encoded size never
//!    exceeds the analytic [`wire_size`](manet_aodv::Payload::wire_size)
//!    the simulator charges the radio for (it is exactly equal; pinned
//!    exactly in `p2p-core`'s unit tests).

use manet_aodv::msg::Hello;
use manet_aodv::{Data, Flood, Msg, Rerr, Rrep, Rreq};
use manet_des::{NodeId, TraceCtx, WireError};
use manet_testkit::{prop_assert, prop_assert_eq, properties, Gen, Strategy};
use p2p_content::{ContentMsg, FileId, QueryId};
use p2p_core::{OverlayMsg, ProbeKind};
use p2p_stack::{decode_frame, encode_frame, AppMsg};

/// Any trace context: absent half the time, active with random ids.
fn any_ctx(g: &mut Gen) -> TraceCtx {
    let r = g.rng();
    if r.chance(0.5) {
        TraceCtx::NONE
    } else {
        TraceCtx::root(r.next_u64(), r.next_u64()).child(r.next_u64())
    }
}

fn any_overlay(g: &mut Gen) -> OverlayMsg {
    let kind = *g.rng().choose(&[
        ProbeKind::Basic,
        ProbeKind::Regular,
        ProbeKind::Random,
        ProbeKind::Master,
    ]);
    let r = g.rng();
    match r.below(12) {
        0 => OverlayMsg::Probe { kind },
        1 => OverlayMsg::Offer { kind },
        2 => OverlayMsg::Accept { kind },
        3 => OverlayMsg::Confirm,
        4 => OverlayMsg::Reject,
        5 => OverlayMsg::Ping {
            token: r.next_u32(),
        },
        6 => OverlayMsg::Pong {
            token: r.next_u32(),
        },
        7 => OverlayMsg::Capture {
            qualifier: r.next_u32(),
        },
        8 => OverlayMsg::CaptureReply {
            qualifier: r.next_u32(),
        },
        9 => OverlayMsg::SlaveRequest,
        10 => OverlayMsg::SlaveAccept { ok: r.chance(0.5) },
        _ => OverlayMsg::SlaveConfirm,
    }
}

fn any_content(g: &mut Gen) -> ContentMsg {
    let r = g.rng();
    let id = QueryId {
        origin: NodeId(r.next_u32()),
        seq: r.next_u32(),
    };
    let file = FileId(r.below(1 << 16) as u16);
    match r.below(4) {
        0 => ContentMsg::Query {
            id,
            file,
            ttl: r.below(256) as u8,
            p2p_hops: r.below(256) as u8,
        },
        1 => ContentMsg::QueryHit {
            id,
            file,
            p2p_hops: r.below(256) as u8,
        },
        2 => ContentMsg::FetchRequest { id, file },
        _ => ContentMsg::FileTransfer {
            id,
            file,
            bytes: r.next_u32(),
        },
    }
}

fn any_payload(g: &mut Gen) -> AppMsg {
    if g.rng().chance(0.5) {
        AppMsg::Overlay(any_overlay(g))
    } else {
        AppMsg::Content(any_content(g))
    }
}

/// Any routing-layer frame: every `Msg` variant with random fields.
#[derive(Clone, Copy, Debug)]
struct AnyFrame;

impl Strategy for AnyFrame {
    type Value = Msg<AppMsg>;

    fn generate(&self, g: &mut Gen) -> Msg<AppMsg> {
        match g.rng().below(6) {
            0 => {
                let ctx = any_ctx(g);
                let r = g.rng();
                Msg::Rreq(Rreq {
                    origin: NodeId(r.next_u32()),
                    origin_seq: r.next_u32(),
                    rreq_id: r.next_u32(),
                    dest: NodeId(r.next_u32()),
                    dest_seq: r.chance(0.5).then(|| r.next_u32()),
                    hop_count: r.below(256) as u8,
                    ttl: r.below(256) as u8,
                    ctx,
                })
            }
            1 => {
                let ctx = any_ctx(g);
                let r = g.rng();
                Msg::Rrep(Rrep {
                    dest: NodeId(r.next_u32()),
                    dest_seq: r.next_u32(),
                    origin: NodeId(r.next_u32()),
                    hop_count: r.below(256) as u8,
                    ctx,
                })
            }
            2 => {
                let ctx = any_ctx(g);
                let r = g.rng();
                let n = r.below(5) as usize;
                Msg::Rerr(Rerr {
                    unreachable: (0..n)
                        .map(|_| (NodeId(r.next_u32()), r.next_u32()))
                        .collect(),
                    ctx,
                })
            }
            3 => {
                let payload = any_payload(g);
                let ctx = any_ctx(g);
                let r = g.rng();
                Msg::Data(Data {
                    src: NodeId(r.next_u32()),
                    dst: NodeId(r.next_u32()),
                    hops: r.below(256) as u8,
                    payload,
                    ctx,
                })
            }
            4 => {
                let payload = any_payload(g);
                let ctx = any_ctx(g);
                let r = g.rng();
                Msg::Flood(Flood {
                    origin: NodeId(r.next_u32()),
                    flood_id: r.next_u32(),
                    ttl: r.below(256) as u8,
                    hops: r.below(256) as u8,
                    payload,
                    ctx,
                })
            }
            _ => Msg::Hello(Hello {
                seq: g.rng().next_u32(),
            }),
        }
    }
}

properties! {
    config = manet_testkit::Config::cases(256);

    /// Any frame survives the wire byte-exactly, sender id included.
    fn frame_round_trip_identity(msg in AnyFrame, from in manet_testkit::any_u64()) {
        let from = NodeId(from as u32);
        let buf = encode_frame(from, &msg);
        let up = decode_frame(&buf);
        match up {
            Ok(up) => {
                prop_assert_eq!(up.from, from);
                prop_assert_eq!(up.msg, msg.clone(), "frame bytes: {:?}", buf);
            }
            Err(e) => prop_assert!(false, "decode failed: {e} on {:?}", msg),
        }
    }

    /// Every truncation of a valid frame decodes to a typed error — the
    /// decoder never panics and never fabricates a frame from a prefix.
    fn every_truncation_is_a_typed_error(msg in AnyFrame) {
        let buf = encode_frame(NodeId(77), &msg);
        for len in 0..buf.len() {
            let r = decode_frame(&buf[..len]);
            prop_assert!(r.is_err(), "prefix of {} bytes decoded: {:?}", len, r);
        }
    }

    /// Trailing garbage after a valid frame is always rejected whole.
    fn trailing_bytes_rejected(msg in AnyFrame, extra in manet_testkit::any_u64()) {
        let mut buf = encode_frame(NodeId(3), &msg);
        let n = 1 + (extra as usize % 7);
        buf.extend(std::iter::repeat_n(0xEE, n));
        prop_assert_eq!(decode_frame(&buf), Err(WireError::Trailing { extra: n }));
    }

    /// Flipping any single byte never panics: the result is either a
    /// typed error or a well-formed (differently-valued) frame.
    fn single_byte_corruption_never_panics(msg in AnyFrame, pick in manet_testkit::any_u64()) {
        let buf = encode_frame(NodeId(5), &msg);
        let at = pick as usize % buf.len();
        let mut bad = buf.clone();
        bad[at] ^= 0x5A;
        // Decoding must terminate without panicking; both outcomes are
        // legal (a flipped numeric field still parses).
        let _ = decode_frame(&bad);
    }

    /// The overlay codec never writes more bytes than the analytic
    /// wire-size model charges the simulated radio for.
    fn overlay_encoding_matches_size_model(msg in AnyFrame) {
        if let Msg::Data(Data { payload: AppMsg::Overlay(m), .. })
        | Msg::Flood(Flood { payload: AppMsg::Overlay(m), .. }) = &msg {
            let mut buf = Vec::new();
            p2p_core::encode_overlay(m, &mut buf);
            prop_assert_eq!(buf.len() as u32, m.wire_size(), "variant {:?}", m);
        }
    }
}
