//! Property suite for the telemetry frame codec.
//!
//! The same three contracts `wire_props.rs` pins for the datagram codec,
//! over randomly populated telemetry snapshots (registries with
//! counters/gauges/histograms/series, span profiles, flight-recorder
//! rings, and causal trace logs with every event variant):
//!
//! 1. **Round-trip identity** — `decode_telemetry(&encode_telemetry(..))`
//!    reproduces the report bit-exactly and the trace's analytical
//!    content (events, totals, id watermarks) verbatim.
//! 2. **Typed truncation** — every strict prefix of a valid frame
//!    decodes to a typed [`WireError`], never a panic, never a frame.
//! 3. **Corruption tolerance** — flipping any byte never panics; the
//!    parent decodes whatever a dying child managed to flush.
//!
//! Plus the hex armor: `from_hex(&to_hex(b)) == b`, odd-length and
//! non-hex inputs rejected with typed errors.

use manet_des::{NodeId, SimTime, TraceCtx};
use manet_metrics::MsgKind;
use manet_obs::{FlightRecorder, ObsReport, Severity};
use manet_testkit::{prop_assert, prop_assert_eq, properties, Gen, Strategy};
use p2p_core::Role;
use p2p_stack::trace::node_id_base;
use p2p_stack::{decode_telemetry, encode_telemetry, from_hex, to_hex, TraceEvent, TraceLog};

const COUNTER_NAMES: [&str; 6] = [
    "rt.dgram_rx",
    "rt.dgram_tx",
    "rt.epoll_wakeups",
    "stack.delivered",
    "aodv.rreqs_originated",
    "stack.queries_issued",
];
const GAUGE_NAMES: [&str; 3] = ["rt.backlog", "sim.density", "stack.peers"];
const HIST_NAMES: [&str; 2] = ["stack.delivery_hops", "rt.batch"];
const SPAN_NAMES: [&str; 3] = ["rt.loop", "rt.drain", "rt.emit"];
const TAGS: [&str; 4] = ["join", "decode_error", "retry", "crash"];
const FRAMES: [&str; 5] = ["rreq", "rrep", "rerr", "data", "flood"];
const LABELS: [&str; 4] = ["query", "reconfig", "fetch", "transfer"];

fn any_msg(g: &mut Gen) -> String {
    let r = g.rng();
    let n = r.below(24) as usize;
    (0..n)
        .map(|_| char::from(b'a' + r.below(26) as u8))
        .collect()
}

fn any_report(g: &mut Gen) -> ObsReport {
    let mut report = ObsReport {
        runs: g.rng().below(4) as u32 + 1,
        ..ObsReport::default()
    };
    {
        let reg = &mut report.registry;
        for name in COUNTER_NAMES {
            if g.rng().chance(0.7) {
                let id = reg.counter(name);
                let v = g.rng().next_u64();
                reg.set(id, v);
            }
        }
        for name in GAUGE_NAMES {
            if g.rng().chance(0.5) {
                let id = reg.gauge(name);
                // Finite values only: the report's PartialEq (and thus the
                // round-trip assertion) is what NaN would break, not the
                // codec, which moves raw bits.
                let v = g.rng().next_u32() as f64 / 16.0;
                reg.set_gauge(id, v);
            }
        }
        for name in HIST_NAMES {
            if g.rng().chance(0.5) {
                let id = reg.hist(name);
                let n = g.rng().below(20);
                for _ in 0..n {
                    let v = g.rng().next_u64() >> g.rng().below(60);
                    reg.observe(id, v);
                }
            }
        }
        let samples = g.rng().below(4);
        for i in 0..samples {
            reg.sample(i as f64 * 10.0);
        }
    }
    for name in SPAN_NAMES {
        if g.rng().chance(0.5) {
            let id = report.spans.register(name);
            let nanos = g.rng().below(1 << 30);
            let entries = g.rng().below(1 << 16);
            report.spans.add_total(id, nanos, entries);
        }
    }
    let cap = g.rng().below(6) as usize;
    report.recorder = FlightRecorder::new(cap);
    let n = g.rng().below(10);
    for _ in 0..n {
        let sev = *g.rng().choose(&[
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ]);
        let tag = *g.rng().choose(&TAGS);
        let t = g.rng().below(1 << 20) as f64 / 1e3;
        let msg = any_msg(g);
        report.recorder.record(t, sev, tag, msg);
    }
    report
}

fn any_ctx(g: &mut Gen, log: &mut TraceLog) -> TraceCtx {
    if g.rng().chance(0.2) {
        TraceCtx::NONE
    } else {
        let trace = log.alloc_trace();
        let root = TraceCtx::root(trace, log.alloc_span());
        if g.rng().chance(0.5) {
            let child = log.alloc_span();
            root.child(child)
        } else {
            root
        }
    }
}

fn any_trace(g: &mut Gen, node: u32) -> TraceLog {
    let capacity = *g.rng().choose(&[0usize, 8, 64]);
    let seed = g.rng().next_u64();
    let mut log = TraceLog::with_id_base(capacity, seed, node_id_base(node));
    let n = g.rng().below(20);
    for i in 0..n {
        let at = SimTime::from_ticks(i * 1_000 + g.rng().below(1_000));
        let me = NodeId(node);
        let peer = NodeId(g.rng().next_u32());
        let event = match g.rng().below(11) {
            0 => TraceEvent::Join { node: me },
            1 => {
                let ctx = any_ctx(g, &mut log);
                TraceEvent::DeliverUp {
                    node: me,
                    from: peer,
                    kind: *g.rng().choose(&MsgKind::ALL),
                    hops: g.rng().below(16) as u8,
                    ctx,
                }
            }
            2 => {
                let ctx = any_ctx(g, &mut log);
                let label = *g.rng().choose(&LABELS);
                TraceEvent::Origin {
                    node: me,
                    ctx,
                    label,
                }
            }
            3 => {
                let ctx = any_ctx(g, &mut log);
                let to = g.rng().chance(0.5).then_some(peer);
                let frame = *g.rng().choose(&FRAMES);
                TraceEvent::Send {
                    node: me,
                    ctx,
                    to,
                    frame,
                    bytes: g.rng().next_u32(),
                }
            }
            4 => {
                let ctx = any_ctx(g, &mut log);
                let frame = *g.rng().choose(&FRAMES);
                TraceEvent::Recv {
                    node: me,
                    ctx,
                    from: peer,
                    frame,
                }
            }
            5 => {
                let ctx = any_ctx(g, &mut log);
                TraceEvent::Unreachable {
                    node: me,
                    ctx,
                    dst: peer,
                }
            }
            6 => {
                let ctx = any_ctx(g, &mut log);
                let due = SimTime::from_ticks(g.rng().next_u64() >> 20);
                TraceEvent::TimerArm {
                    node: me,
                    ctx,
                    at: due,
                }
            }
            7 => TraceEvent::ConnUp { node: me, peer },
            8 => TraceEvent::ConnDown { node: me, peer },
            9 => TraceEvent::RoleChange {
                node: me,
                role: *g.rng().choose(&[
                    Role::Servent,
                    Role::Initial,
                    Role::Reserved,
                    Role::Master,
                    Role::Slave,
                ]),
            },
            _ => TraceEvent::PowerChange {
                node: me,
                up: g.rng().chance(0.5),
            },
        };
        log.record(at, event);
    }
    log
}

/// A whole telemetry snapshot: node id, populated report, populated
/// trace — everything one swarm child ships at shutdown.
#[derive(Clone, Copy, Debug)]
struct AnyTelemetry;

impl Strategy for AnyTelemetry {
    type Value = (u32, ObsReport, TraceLog);

    fn generate(&self, g: &mut Gen) -> (u32, ObsReport, TraceLog) {
        let node = g.rng().below(64) as u32;
        let report = any_report(g);
        let trace = any_trace(g, node);
        (node, report, trace)
    }
}

properties! {
    config = manet_testkit::Config::cases(256);

    /// Any snapshot survives the frame byte-exactly: the report compares
    /// equal and the trace's events and totals are verbatim.
    fn telemetry_round_trip_identity(t in AnyTelemetry) {
        let (node, report, trace) = t;
        let frame = encode_telemetry(node, &report, &trace);
        match decode_telemetry(&frame) {
            Ok(back) => {
                prop_assert_eq!(back.node, node);
                prop_assert_eq!(back.report, report.clone());
                let a: Vec<_> = trace.events().cloned().collect();
                let b: Vec<_> = back.trace.events().cloned().collect();
                prop_assert_eq!(a, b);
                prop_assert_eq!(back.trace.id_base(), trace.id_base());
                prop_assert_eq!(back.trace.capacity(), trace.capacity());
                prop_assert_eq!(back.trace.offered(), trace.offered());
                prop_assert_eq!(back.trace.dropped(), trace.dropped());
                prop_assert_eq!(back.trace.sampled_out(), trace.sampled_out());
            }
            Err(e) => prop_assert!(false, "decode failed: {e}"),
        }
    }

    /// Every strict prefix decodes to a typed error — the decoder never
    /// panics and never fabricates a snapshot from a partial flush.
    fn telemetry_truncation_is_a_typed_error(t in AnyTelemetry) {
        let (node, report, trace) = t;
        let frame = encode_telemetry(node, &report, &trace);
        // Every cut point of the header plus a stride through the body:
        // exhaustive scans of multi-KB frames would dominate the suite.
        let stride = (frame.len() / 128).max(1);
        for cut in (0..frame.len()).step_by(stride).chain(0..16.min(frame.len())) {
            let r = decode_telemetry(&frame[..cut]);
            prop_assert!(r.is_err(), "prefix of {} bytes decoded", cut);
        }
    }

    /// Flipping any single byte never panics: whatever a dying child
    /// half-wrote, the parent survives reading it.
    fn telemetry_corruption_never_panics(t in AnyTelemetry, pick in manet_testkit::any_u64()) {
        let (node, report, trace) = t;
        let mut frame = encode_telemetry(node, &report, &trace);
        let at = pick as usize % frame.len();
        frame[at] ^= 0x5A;
        let _ = decode_telemetry(&frame);
    }

    /// Hex armor is the identity on bytes, and rejects what a mangled
    /// stdout line could carry: odd lengths and non-hex characters.
    fn hex_round_trip_and_rejection(t in AnyTelemetry, pick in manet_testkit::any_u64()) {
        let (node, report, trace) = t;
        let frame = encode_telemetry(node, &report, &trace);
        let hex = to_hex(&frame);
        prop_assert_eq!(from_hex(&hex).expect("hex decodes"), frame.clone());
        let mut odd = hex.clone();
        odd.push('a');
        prop_assert!(from_hex(&odd).is_err(), "odd length accepted");
        let mut bad = hex.into_bytes();
        let at = pick as usize % bad.len();
        bad[at] = b'z';
        let bad = String::from_utf8(bad).unwrap();
        prop_assert!(from_hex(&bad).is_err(), "non-hex digit accepted");
    }
}
