//! The observability seam a hosting substrate arms on the machine.
//!
//! The DES interleaves its own tracing and counters into its specialized
//! adapters; [`StackMachine`](crate::machine::StackMachine) instead
//! carries an optional [`ObsSink`]. When the sink is [`ObsSink::Off`]
//! (the default) every instrumentation site is a single enum-tag branch
//! and the machine behaves exactly as before — same frames, same RNG
//! draws, same results. When a substrate arms [`ObsSink::On`], the
//! machine records the *same* event vocabulary the DES adapters record:
//!
//! * slab-style registered counters and a delivery-hops histogram in a
//!   [`manet_obs::Registry`];
//! * causal spans ([`TraceEvent::Origin`]/[`Send`](TraceEvent::Send)/
//!   [`Recv`](TraceEvent::Recv)/[`DeliverUp`](TraceEvent::DeliverUp)/
//!   [`Unreachable`](TraceEvent::Unreachable)) into a [`TraceLog`],
//!   minted from this node's disjoint id namespace
//!   ([`node_id_base`]) so traces interlink
//!   across process boundaries;
//! * a [`manet_obs::FlightRecorder`] ring for crash forensics, dumped as
//!   `failure_*.jsonl` by the hosting substrate when a run dies.
//!
//! The machine mirrors its protocol-layer totals
//! ([`QueryStats`]/[`AodvStats`]) into the registry at
//! [`StackMachine::sync_obs`](crate::machine::StackMachine::sync_obs)
//! points, so a telemetry snapshot is always a consistent running total.
//! Wall-clock span profiling stays in the substrate (the machine never
//! reads a clock): `manet-rt` records stride-sampled spans directly on
//! [`StackObs::report`]`.spans`.

use manet_aodv::AodvStats;
use manet_des::SimTime;
use manet_obs::{CounterId, FlightRecorder, HistId, ObsConfig, ObsReport, Severity};
use p2p_content::QueryStats;

use crate::trace::{node_id_base, TraceEvent, TraceLog};

/// One node's armed observability state.
#[derive(Clone, Debug)]
pub struct StackObs {
    /// The per-node report (counters, histograms, series, spans, flight
    /// recorder); `runs` is 1 so parent-side [`ObsReport::merge`] counts
    /// contributing nodes.
    pub report: ObsReport,
    /// The causal/milestone trace, minting from this node's id namespace.
    pub trace: TraceLog,
    /// Sim-seconds between time-series samples (0 disables the series).
    pub sample_period_secs: f64,
    /// Next sample point, in sim-seconds.
    pub next_sample_secs: f64,
    // Machine-side hot counters, registered once at construction.
    c_delivered: CounterId,
    c_unreachable: CounterId,
    h_delivery_hops: HistId,
    // Mirrors of the protocol layers' own totals (set, not inc'd).
    c_queries_issued: CounterId,
    c_queries_forwarded: CounterId,
    c_hits_served: CounterId,
    c_dup_dropped: CounterId,
    c_files_fetched: CounterId,
    c_files_served: CounterId,
    c_rreqs_originated: CounterId,
    c_rreqs_forwarded: CounterId,
    c_rreps_sent: CounterId,
    c_rerrs_sent: CounterId,
    c_data_forwarded: CounterId,
    c_data_dropped: CounterId,
    c_rreq_dup_dropped: CounterId,
    c_hellos_sent: CounterId,
}

impl StackObs {
    /// Armed observability for node `node`: a fresh single-run report
    /// whose flight-recorder ring obeys `cfg`, and a trace log of
    /// `trace_capacity` events minting ids from `node`'s namespace (the
    /// reservoir seeded by `seed ^ node`, so each node samples
    /// independently but reruns reproduce).
    pub fn new(node: u32, cfg: &ObsConfig, trace_capacity: usize, seed: u64) -> StackObs {
        let mut report = ObsReport {
            runs: 1,
            ..ObsReport::default()
        };
        report.recorder = FlightRecorder::new(cfg.recorder_capacity);
        let reg = &mut report.registry;
        let c_delivered = reg.counter("stack.delivered");
        let c_unreachable = reg.counter("stack.unreachable");
        let h_delivery_hops = reg.hist("stack.delivery_hops");
        let c_queries_issued = reg.counter("stack.queries_issued");
        let c_queries_forwarded = reg.counter("stack.queries_forwarded");
        let c_hits_served = reg.counter("stack.hits_served");
        let c_dup_dropped = reg.counter("stack.duplicates_dropped");
        let c_files_fetched = reg.counter("stack.files_fetched");
        let c_files_served = reg.counter("stack.files_served");
        let c_rreqs_originated = reg.counter("aodv.rreqs_originated");
        let c_rreqs_forwarded = reg.counter("aodv.rreqs_forwarded");
        let c_rreps_sent = reg.counter("aodv.rreps_sent");
        let c_rerrs_sent = reg.counter("aodv.rerrs_sent");
        let c_data_forwarded = reg.counter("aodv.data_forwarded");
        let c_data_dropped = reg.counter("aodv.data_dropped");
        let c_rreq_dup_dropped = reg.counter("aodv.rreq_dup_dropped");
        let c_hellos_sent = reg.counter("aodv.hellos_sent");
        StackObs {
            report,
            trace: TraceLog::with_id_base(trace_capacity, seed ^ node as u64, node_id_base(node)),
            sample_period_secs: cfg.sample_period_secs,
            next_sample_secs: cfg.sample_period_secs,
            c_delivered,
            c_unreachable,
            h_delivery_hops,
            c_queries_issued,
            c_queries_forwarded,
            c_hits_served,
            c_dup_dropped,
            c_files_fetched,
            c_files_served,
            c_rreqs_originated,
            c_rreqs_forwarded,
            c_rreps_sent,
            c_rerrs_sent,
            c_data_forwarded,
            c_data_dropped,
            c_rreq_dup_dropped,
            c_hellos_sent,
        }
    }

    /// Register (or look up) a substrate-side counter (e.g. `manet-rt`'s
    /// `rt.dgram_rx`) in this node's registry.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.report.registry.counter(name)
    }

    /// Bump a substrate-side counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.report.registry.inc(id, n);
    }

    /// A payload surfaced at this node's overlay.
    pub(crate) fn on_delivered(&mut self, hops: u8) {
        self.report.registry.inc(self.c_delivered, 1);
        self.report
            .registry
            .observe(self.h_delivery_hops, hops as u64);
    }

    /// Route discovery gave up on a destination.
    pub(crate) fn on_unreachable(&mut self) {
        self.report.registry.inc(self.c_unreachable, 1);
    }

    /// Mirror the protocol layers' running totals into the registry, so
    /// an imminent snapshot (sample, telemetry frame, shutdown) reads
    /// consistent values. Set-semantics: idempotent per call.
    pub(crate) fn mirror_stats(&mut self, q: &QueryStats, a: &AodvStats) {
        let reg = &mut self.report.registry;
        reg.set(self.c_queries_issued, q.issued);
        reg.set(self.c_queries_forwarded, q.forwarded);
        reg.set(self.c_hits_served, q.hits_served);
        reg.set(self.c_dup_dropped, q.duplicates_dropped);
        reg.set(self.c_files_fetched, q.files_fetched);
        reg.set(self.c_files_served, q.files_served);
        reg.set(self.c_rreqs_originated, a.rreqs_originated);
        reg.set(self.c_rreqs_forwarded, a.rreqs_forwarded);
        reg.set(self.c_rreps_sent, a.rreps_sent);
        reg.set(self.c_rerrs_sent, a.rerrs_sent);
        reg.set(self.c_data_forwarded, a.data_forwarded);
        reg.set(self.c_data_dropped, a.data_dropped);
        reg.set(self.c_rreq_dup_dropped, a.rreq_dup_dropped);
        reg.set(self.c_hellos_sent, a.hellos_sent);
    }

    /// Take a time-series sample if the cadence says one is due at `now`
    /// (catching up if the substrate slept past several points).
    pub fn maybe_sample(&mut self, now: SimTime) {
        if self.sample_period_secs <= 0.0 {
            return;
        }
        let t = now.as_secs_f64();
        while t >= self.next_sample_secs {
            self.report.registry.sample(self.next_sample_secs);
            self.next_sample_secs += self.sample_period_secs;
        }
    }

    /// Append a flight-recorder record stamped with sim-time `now`.
    pub fn flight(&mut self, now: SimTime, severity: Severity, tag: &'static str, msg: String) {
        self.report
            .recorder
            .record(now.as_secs_f64(), severity, tag, msg);
    }

    /// Record a milestone/causal event into the trace log.
    pub fn record(&mut self, now: SimTime, event: TraceEvent) {
        self.trace.record(now, event);
    }
}

/// The machine's observability switch.
///
/// `Off` is the default and the zero-cost path: every instrumentation
/// site in the machine starts with `self.obs.on_mut()`, which is one
/// enum-tag branch. `On` carries the boxed state so the machine stays
/// small when unarmed.
#[derive(Debug, Default)]
pub enum ObsSink {
    /// No observability: the machine records nothing.
    #[default]
    Off,
    /// Armed: the machine records counters, spans and flight records.
    On(Box<StackObs>),
}

impl ObsSink {
    /// Arm a sink for node `node` (see [`StackObs::new`]).
    pub fn armed(node: u32, cfg: &ObsConfig, trace_capacity: usize, seed: u64) -> ObsSink {
        ObsSink::On(Box::new(StackObs::new(node, cfg, trace_capacity, seed)))
    }

    /// The armed state, if any — the one branch every instrumentation
    /// site pays when the sink is off.
    #[inline]
    pub fn on_mut(&mut self) -> Option<&mut StackObs> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(obs) => Some(obs),
        }
    }

    /// Read-only view of the armed state.
    pub fn on(&self) -> Option<&StackObs> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(obs) => Some(obs),
        }
    }

    /// Whether the sink is armed.
    pub fn is_on(&self) -> bool {
        matches!(self, ObsSink::On(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_sink_namespaces_its_trace_ids() {
        let mut sink = ObsSink::armed(3, &ObsConfig::default(), 64, 42);
        let obs = sink.on_mut().expect("armed");
        assert_eq!(obs.trace.id_base(), node_id_base(3));
        assert!(obs.trace.alloc_trace() > node_id_base(3));
        assert_eq!(obs.report.runs, 1);
        assert!(obs.report.recorder.enabled());
    }

    #[test]
    fn off_sink_is_none() {
        let mut sink = ObsSink::default();
        assert!(!sink.is_on());
        assert!(sink.on_mut().is_none());
    }

    #[test]
    fn sampling_catches_up_past_skipped_points() {
        let mut obs = StackObs::new(0, &ObsConfig::default(), 0, 0);
        obs.sample_period_secs = 1.0;
        obs.next_sample_secs = 1.0;
        obs.maybe_sample(SimTime::from_secs(3));
        assert_eq!(obs.report.registry.n_samples(), 3, "1s, 2s and 3s taken");
        obs.maybe_sample(SimTime::from_secs(3));
        assert_eq!(obs.report.registry.n_samples(), 3, "no double sample");
    }

    #[test]
    fn mirrors_are_idempotent_set_semantics() {
        let mut obs = StackObs::new(0, &ObsConfig::default(), 0, 0);
        let q = QueryStats {
            issued: 7,
            ..QueryStats::default()
        };
        let a = AodvStats {
            rreq_dup_dropped: 3,
            ..AodvStats::default()
        };
        obs.mirror_stats(&q, &a);
        obs.mirror_stats(&q, &a);
        let reg = &obs.report.registry;
        assert_eq!(reg.counter_by_name("stack.queries_issued"), Some(7));
        assert_eq!(reg.counter_by_name("aodv.rreq_dup_dropped"), Some(3));
    }
}
