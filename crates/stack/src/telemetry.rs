//! The telemetry frame: one node's observability, shipped across a
//! process boundary — plus the clock-offset stitcher that fuses
//! per-process traces into one timeline.
//!
//! A swarm child records counters, spans, flight records and a causal
//! [`TraceLog`] locally; at periodic cadence and at shutdown it encodes
//! everything into one length-prefixed binary frame
//! ([`encode_telemetry`]) and ships it to the parent over the existing
//! stdio RESULT channel (hex-armored — see [`to_hex`]/[`from_hex`] —
//! so the frame survives line-oriented transport). The parent decodes
//! ([`decode_telemetry`]) with the same typed-[`WireError`] discipline
//! as the datagram codec: truncation and corruption are expected inputs,
//! never panics. Snapshots are *running totals*: the parent keeps only
//! the latest frame per child, and a child that dies mid-run leaves its
//! last cadence frame as a partial post-mortem.
//!
//! Cross-process traces need one more step. Each node stamps span times
//! from its own monotonic clock, and those clocks share no epoch — a
//! `Recv` span can appear to precede the `Send` that caused it.
//! [`stitch_clocks`] estimates per-node clock offsets from the
//! send/recv timestamp pairs already present in the merged event stream
//! (the minimum observed one-way delay per directed node pair; the
//! half-difference of the two directions where both exist), re-bases
//! every node's span times, and re-orders the stream so parents precede
//! children — exactly what `manet_obs::causal::artifact` needs to emit
//! a single Perfetto-loadable file whose causal trees span OS processes.

use std::collections::HashMap;

use manet_des::wire::{put_ctx, put_u16, put_u32, put_u64, put_u8, read_ctx};
use manet_des::{NodeId, SimTime, WireError, WireReader};
use manet_metrics::MsgKind;
use manet_obs::registry::Histogram;
use manet_obs::{intern, CausalEvent, FlightRecord, FlightRecorder, ObsReport, Severity};
use p2p_core::Role;

use crate::trace::{TraceEvent, TraceLog};

/// Leading bytes of every telemetry frame (distinct from the datagram
/// codec's `[0xAD, 0x0C]`, so a frame pasted into the wrong decoder is
/// rejected up front).
pub const TELEMETRY_MAGIC: [u8; 2] = [0xAD, 0x0B];

/// Telemetry codec version; bumped on any layout change.
pub const TELEMETRY_VERSION: u8 = 1;

/// One node's decoded telemetry snapshot.
#[derive(Debug)]
pub struct Telemetry {
    /// The reporting node.
    pub node: u32,
    /// Counters, gauges, histograms, series, spans and flight records.
    pub report: ObsReport,
    /// The node's causal/milestone trace. Reconstructed for *analysis*:
    /// events, totals and id watermarks round-trip exactly; the private
    /// reservoir-sampler state does not travel (the decoded log is
    /// merged and read, never recorded into).
    pub trace: TraceLog,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(
        bytes.len() <= u16::MAX as usize,
        "telemetry string too long"
    );
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
}

fn read_str(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let len = r.u16()? as usize;
    let mut s = Vec::with_capacity(len);
    for _ in 0..len {
        s.push(r.u8()?);
    }
    String::from_utf8(s).map_err(|_| WireError::BadTag {
        what: "telemetry string utf-8",
        tag: 0,
    })
}

fn read_static_str(r: &mut WireReader<'_>) -> Result<&'static str, WireError> {
    Ok(intern(&read_str(r)?))
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn read_f64(r: &mut WireReader<'_>) -> Result<f64, WireError> {
    Ok(f64::from_bits(r.u64()?))
}

fn severity_tag(s: Severity) -> u8 {
    match s {
        Severity::Debug => 0,
        Severity::Info => 1,
        Severity::Warn => 2,
        Severity::Error => 3,
    }
}

fn severity_from(tag: u8) -> Result<Severity, WireError> {
    match tag {
        0 => Ok(Severity::Debug),
        1 => Ok(Severity::Info),
        2 => Ok(Severity::Warn),
        3 => Ok(Severity::Error),
        tag => Err(WireError::BadTag {
            what: "flight severity",
            tag,
        }),
    }
}

fn role_tag(r: Role) -> u8 {
    match r {
        Role::Servent => 0,
        Role::Initial => 1,
        Role::Reserved => 2,
        Role::Master => 3,
        Role::Slave => 4,
    }
}

fn role_from(tag: u8) -> Result<Role, WireError> {
    match tag {
        0 => Ok(Role::Servent),
        1 => Ok(Role::Initial),
        2 => Ok(Role::Reserved),
        3 => Ok(Role::Master),
        4 => Ok(Role::Slave),
        tag => Err(WireError::BadTag { what: "role", tag }),
    }
}

fn msg_kind_from(tag: u8) -> Result<MsgKind, WireError> {
    MsgKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadTag {
            what: "msg kind",
            tag,
        })
}

const EV_JOIN: u8 = 0;
const EV_DELIVER: u8 = 1;
const EV_ORIGIN: u8 = 2;
const EV_SEND: u8 = 3;
const EV_RECV: u8 = 4;
const EV_UNREACHABLE: u8 = 5;
const EV_TIMER: u8 = 6;
const EV_CONN_UP: u8 = 7;
const EV_CONN_DOWN: u8 = 8;
const EV_ROLE: u8 = 9;
const EV_POWER: u8 = 10;

fn put_event(buf: &mut Vec<u8>, at: SimTime, event: &TraceEvent) {
    put_u64(buf, at.ticks());
    match event {
        TraceEvent::Join { node } => {
            put_u8(buf, EV_JOIN);
            put_u32(buf, node.0);
        }
        TraceEvent::DeliverUp {
            node,
            from,
            kind,
            hops,
            ctx,
        } => {
            put_u8(buf, EV_DELIVER);
            put_u32(buf, node.0);
            put_u32(buf, from.0);
            put_u8(buf, kind.index() as u8);
            put_u8(buf, *hops);
            put_ctx(buf, *ctx);
        }
        TraceEvent::Origin { node, ctx, label } => {
            put_u8(buf, EV_ORIGIN);
            put_u32(buf, node.0);
            put_ctx(buf, *ctx);
            put_str(buf, label);
        }
        TraceEvent::Send {
            node,
            ctx,
            to,
            frame,
            bytes,
        } => {
            put_u8(buf, EV_SEND);
            put_u32(buf, node.0);
            put_ctx(buf, *ctx);
            match to {
                Some(to) => {
                    put_u8(buf, 1);
                    put_u32(buf, to.0);
                }
                None => put_u8(buf, 0),
            }
            put_str(buf, frame);
            put_u32(buf, *bytes);
        }
        TraceEvent::Recv {
            node,
            ctx,
            from,
            frame,
        } => {
            put_u8(buf, EV_RECV);
            put_u32(buf, node.0);
            put_ctx(buf, *ctx);
            put_u32(buf, from.0);
            put_str(buf, frame);
        }
        TraceEvent::Unreachable { node, ctx, dst } => {
            put_u8(buf, EV_UNREACHABLE);
            put_u32(buf, node.0);
            put_ctx(buf, *ctx);
            put_u32(buf, dst.0);
        }
        TraceEvent::TimerArm { node, ctx, at } => {
            put_u8(buf, EV_TIMER);
            put_u32(buf, node.0);
            put_ctx(buf, *ctx);
            put_u64(buf, at.ticks());
        }
        TraceEvent::ConnUp { node, peer } => {
            put_u8(buf, EV_CONN_UP);
            put_u32(buf, node.0);
            put_u32(buf, peer.0);
        }
        TraceEvent::ConnDown { node, peer } => {
            put_u8(buf, EV_CONN_DOWN);
            put_u32(buf, node.0);
            put_u32(buf, peer.0);
        }
        TraceEvent::RoleChange { node, role } => {
            put_u8(buf, EV_ROLE);
            put_u32(buf, node.0);
            put_u8(buf, role_tag(*role));
        }
        TraceEvent::PowerChange { node, up } => {
            put_u8(buf, EV_POWER);
            put_u32(buf, node.0);
            put_u8(buf, u8::from(*up));
        }
    }
}

fn read_event(r: &mut WireReader<'_>) -> Result<(SimTime, TraceEvent), WireError> {
    let at = SimTime::from_ticks(r.u64()?);
    let node = |r: &mut WireReader<'_>| -> Result<NodeId, WireError> { Ok(NodeId(r.u32()?)) };
    let event = match r.u8()? {
        EV_JOIN => TraceEvent::Join { node: node(r)? },
        EV_DELIVER => TraceEvent::DeliverUp {
            node: node(r)?,
            from: node(r)?,
            kind: msg_kind_from(r.u8()?)?,
            hops: r.u8()?,
            ctx: read_ctx(r)?,
        },
        EV_ORIGIN => TraceEvent::Origin {
            node: node(r)?,
            ctx: read_ctx(r)?,
            label: read_static_str(r)?,
        },
        EV_SEND => TraceEvent::Send {
            node: node(r)?,
            ctx: read_ctx(r)?,
            to: if r.flag("unicast receiver presence")? {
                Some(node(r)?)
            } else {
                None
            },
            frame: read_static_str(r)?,
            bytes: r.u32()?,
        },
        EV_RECV => TraceEvent::Recv {
            node: node(r)?,
            ctx: read_ctx(r)?,
            from: node(r)?,
            frame: read_static_str(r)?,
        },
        EV_UNREACHABLE => TraceEvent::Unreachable {
            node: node(r)?,
            ctx: read_ctx(r)?,
            dst: node(r)?,
        },
        EV_TIMER => TraceEvent::TimerArm {
            node: node(r)?,
            ctx: read_ctx(r)?,
            at: SimTime::from_ticks(r.u64()?),
        },
        EV_CONN_UP => TraceEvent::ConnUp {
            node: node(r)?,
            peer: node(r)?,
        },
        EV_CONN_DOWN => TraceEvent::ConnDown {
            node: node(r)?,
            peer: node(r)?,
        },
        EV_ROLE => TraceEvent::RoleChange {
            node: node(r)?,
            role: role_from(r.u8()?)?,
        },
        EV_POWER => TraceEvent::PowerChange {
            node: node(r)?,
            up: r.flag("power state")?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "trace event",
                tag,
            })
        }
    };
    Ok((at, event))
}

/// Encode node `node`'s report and trace into one telemetry frame.
pub fn encode_telemetry(node: u32, report: &ObsReport, trace: &TraceLog) -> Vec<u8> {
    let mut body = Vec::with_capacity(1024);
    put_u32(&mut body, node);
    put_u32(&mut body, report.runs);

    let counters: Vec<_> = report.registry.counters().collect();
    put_u32(&mut body, counters.len() as u32);
    for (name, v) in counters {
        put_str(&mut body, name);
        put_u64(&mut body, v);
    }
    let gauges: Vec<_> = report.registry.gauges().collect();
    put_u32(&mut body, gauges.len() as u32);
    for (name, v) in gauges {
        put_str(&mut body, name);
        put_f64(&mut body, v);
    }
    let hists: Vec<_> = report.registry.hists().collect();
    put_u32(&mut body, hists.len() as u32);
    for (name, h) in hists {
        put_str(&mut body, name);
        put_u64(&mut body, h.sum());
        let pairs = h.nonzero();
        put_u32(&mut body, pairs.len() as u32);
        for (floor, c) in pairs {
            put_u64(&mut body, floor);
            put_u64(&mut body, c);
        }
    }
    put_u32(&mut body, report.registry.n_samples() as u32);
    for (t, counters, gauges) in report.registry.samples() {
        put_f64(&mut body, t);
        put_u32(&mut body, counters.len() as u32);
        for &v in counters {
            put_u64(&mut body, v);
        }
        put_u32(&mut body, gauges.len() as u32);
        for &v in gauges {
            put_f64(&mut body, v);
        }
    }
    let spans: Vec<_> = report.spans.rows().collect();
    put_u32(&mut body, spans.len() as u32);
    for (name, total, entries) in spans {
        put_str(&mut body, name);
        put_u64(&mut body, total.as_nanos() as u64);
        put_u64(&mut body, entries);
    }
    put_u32(&mut body, report.recorder.capacity() as u32);
    put_u64(&mut body, report.recorder.offered());
    put_u64(&mut body, report.recorder.dropped());
    put_u32(&mut body, report.recorder.len() as u32);
    for rec in report.recorder.records() {
        put_f64(&mut body, rec.t_secs);
        put_u8(&mut body, severity_tag(rec.severity));
        put_str(&mut body, rec.tag);
        put_str(&mut body, &rec.msg);
    }

    put_u32(&mut body, trace.capacity() as u32);
    put_u64(&mut body, trace.id_base());
    put_u64(&mut body, trace.offered());
    put_u64(&mut body, trace.dropped());
    put_u64(&mut body, trace.sampled_out());
    put_u64(&mut body, trace.next_trace);
    put_u64(&mut body, trace.next_span);
    put_u32(&mut body, trace.len() as u32);
    for (at, event) in trace.events() {
        put_event(&mut body, *at, event);
    }

    let mut buf = Vec::with_capacity(body.len() + 9);
    buf.extend_from_slice(&TELEMETRY_MAGIC);
    put_u8(&mut buf, TELEMETRY_VERSION);
    put_u32(&mut buf, body.len() as u32);
    buf.extend_from_slice(&body);
    buf
}

/// Decode a frame written by [`encode_telemetry`]. The whole buffer must
/// be consumed; truncation, bad tags and trailing garbage come back as
/// typed [`WireError`]s, never panics.
pub fn decode_telemetry(buf: &[u8]) -> Result<Telemetry, WireError> {
    let mut r = WireReader::new(buf);
    for expect in TELEMETRY_MAGIC {
        let got = r.u8()?;
        if got != expect {
            return Err(WireError::BadTag {
                what: "telemetry magic",
                tag: got,
            });
        }
    }
    let version = r.u8()?;
    if version != TELEMETRY_VERSION {
        return Err(WireError::BadTag {
            what: "telemetry version",
            tag: version,
        });
    }
    let body_len = r.u32()? as usize;
    if r.remaining() != body_len {
        return Err(WireError::Truncated {
            need: body_len,
            have: r.remaining(),
        });
    }

    let node = r.u32()?;
    let mut report = ObsReport {
        runs: r.u32()?,
        ..ObsReport::default()
    };
    let n_counters = r.u32()?;
    for _ in 0..n_counters {
        let name = read_static_str(&mut r)?;
        let v = r.u64()?;
        let id = report.registry.counter(name);
        report.registry.set(id, v);
    }
    let n_gauges = r.u32()?;
    for _ in 0..n_gauges {
        let name = read_static_str(&mut r)?;
        let v = read_f64(&mut r)?;
        let id = report.registry.gauge(name);
        report.registry.set_gauge(id, v);
    }
    let n_hists = r.u32()?;
    for _ in 0..n_hists {
        let name = read_static_str(&mut r)?;
        let sum = r.u64()?;
        let n_pairs = r.u32()?;
        let mut pairs = Vec::with_capacity(n_pairs.min(1 << 16) as usize);
        for _ in 0..n_pairs {
            let floor = r.u64()?;
            let c = r.u64()?;
            pairs.push((floor, c));
        }
        let id = report.registry.hist(name);
        report
            .registry
            .set_hist(id, &Histogram::from_parts(&pairs, sum));
    }
    let n_samples = r.u32()?;
    for _ in 0..n_samples {
        let t = read_f64(&mut r)?;
        let nc = r.u32()?;
        let mut counters = Vec::with_capacity(nc.min(1 << 16) as usize);
        for _ in 0..nc {
            counters.push(r.u64()?);
        }
        let ng = r.u32()?;
        let mut gauges = Vec::with_capacity(ng.min(1 << 16) as usize);
        for _ in 0..ng {
            gauges.push(read_f64(&mut r)?);
        }
        report.registry.push_sample(t, counters, gauges);
    }
    let n_spans = r.u32()?;
    for _ in 0..n_spans {
        let name = read_static_str(&mut r)?;
        let nanos = r.u64()?;
        let entries = r.u64()?;
        let id = report.spans.register(name);
        report.spans.add_total(id, nanos, entries);
    }
    let capacity = r.u32()? as usize;
    let offered = r.u64()?;
    let dropped = r.u64()?;
    let n_records = r.u32()?;
    let mut records = Vec::with_capacity(n_records.min(1 << 16) as usize);
    for _ in 0..n_records {
        records.push(FlightRecord {
            t_secs: read_f64(&mut r)?,
            severity: severity_from(r.u8()?)?,
            tag: read_static_str(&mut r)?,
            msg: read_str(&mut r)?,
        });
    }
    report.recorder = FlightRecorder::from_parts(capacity, offered, dropped, records);

    let trace_capacity = r.u32()? as usize;
    let id_base = r.u64()?;
    let mut trace = TraceLog::with_id_base(trace_capacity, 0, id_base);
    trace.offered = r.u64()?;
    trace.dropped = r.u64()?;
    trace.sampled_out = r.u64()?;
    trace.next_trace = r.u64()?;
    trace.next_span = r.u64()?;
    let n_events = r.u32()?;
    let mut arena = Vec::with_capacity(n_events.min(1 << 20) as usize);
    for _ in 0..n_events {
        arena.push(read_event(&mut r)?);
    }
    trace.arena = arena;
    trace.head = 0;

    r.finish()?;
    Ok(Telemetry {
        node,
        report,
        trace,
    })
}

/// Hex-armor a telemetry frame for a line-oriented channel.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode [`to_hex`] output. Odd length reads as truncation; a non-hex
/// byte as a bad tag.
pub fn from_hex(s: &str) -> Result<Vec<u8>, WireError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(WireError::Truncated { need: 1, have: 0 });
    }
    let digit = |c: u8| -> Result<u8, WireError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            c => Err(WireError::BadTag {
                what: "hex digit",
                tag: c,
            }),
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

/// Estimate per-node clock offsets from the send/recv pairs in a merged
/// causal stream, re-base every event's time, and re-order the stream so
/// parents precede children.
///
/// Each node stamps spans from its own clock; the only cross-clock
/// observations are message exchanges: a `Recv` whose parent is a `Send`
/// recorded on another node. For each directed node pair the minimum
/// observed `t_recv - t_send` estimates `delay + offset(sender) -
/// offset(receiver)`; where both directions exist, the half-difference
/// cancels the propagation delay (the classic NTP estimator). Offsets
/// propagate over the resulting pair graph breadth-first from the
/// lowest-numbered node of each component; nodes with no exchanges keep
/// their own clock. A final monotone fix-up pins every child at or after
/// its parent (residual skew can exceed the estimate), and the stream is
/// re-emitted in per-trace topological order — parents first, siblings
/// by time — which is exactly the order `causal::artifact` requires.
pub fn stitch_clocks(events: Vec<CausalEvent>) -> Vec<CausalEvent> {
    use manet_obs::CausalKind;

    // 1. Directed minimum one-way "delay" per (sender, receiver) pair.
    let send_at: HashMap<u64, (u32, u64)> = events
        .iter()
        .filter(|e| matches!(e.kind, CausalKind::Send { .. }))
        .map(|e| (e.span, (e.node, e.t)))
        .collect();
    let mut min_delay: HashMap<(u32, u32), i64> = HashMap::new();
    for e in &events {
        if !matches!(e.kind, CausalKind::Recv { .. }) {
            continue;
        }
        let Some(&(sender, sent_t)) = send_at.get(&e.parent) else {
            continue;
        };
        if sender == e.node {
            continue;
        }
        let d = e.t as i64 - sent_t as i64;
        min_delay
            .entry((sender, e.node))
            .and_modify(|m| *m = (*m).min(d))
            .or_insert(d);
    }

    // 2. Relative offset along each undirected edge:
    //    off(b) - off(a) = (m_ba - m_ab) / 2 when both directions were
    //    observed, else -m_ab (assume zero propagation delay — the
    //    conservative choice that puts the earliest recv exactly at its
    //    send).
    let mut edges: HashMap<u32, Vec<(u32, i64)>> = HashMap::new();
    let mut seen_pairs: Vec<(u32, u32)> = min_delay.keys().copied().collect();
    seen_pairs.sort_unstable();
    for &(a, b) in &seen_pairs {
        if a > b && min_delay.contains_key(&(b, a)) {
            continue; // handled from the (b, a) side
        }
        let m_ab = min_delay.get(&(a, b)).copied();
        let m_ba = min_delay.get(&(b, a)).copied();
        let off_b_minus_a = match (m_ab, m_ba) {
            (Some(ab), Some(ba)) => (ba - ab) / 2,
            (Some(ab), None) => -ab,
            (None, Some(ba)) => ba,
            (None, None) => continue,
        };
        edges.entry(a).or_default().push((b, off_b_minus_a));
        edges.entry(b).or_default().push((a, -off_b_minus_a));
    }

    // 3. Propagate offsets breadth-first from the lowest node of each
    //    component (iterating nodes in ascending order keeps the result
    //    deterministic).
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut offset: HashMap<u32, i64> = HashMap::new();
    for &root in &nodes {
        if offset.contains_key(&root) {
            continue;
        }
        offset.insert(root, 0);
        let mut frontier = vec![root];
        while let Some(a) = frontier.pop() {
            let base = offset[&a];
            let Some(neigh) = edges.get(&a) else {
                continue;
            };
            for &(b, d) in neigh {
                if let std::collections::hash_map::Entry::Vacant(slot) = offset.entry(b) {
                    slot.insert(base + d);
                    frontier.push(b);
                }
            }
        }
    }

    // 4. Re-base. Shift everything up by the most negative offset so
    //    times stay unsigned.
    let min_off = offset.values().copied().min().unwrap_or(0).min(0);
    let mut events: Vec<CausalEvent> = events;
    for e in &mut events {
        let off = offset.get(&e.node).copied().unwrap_or(0) - min_off;
        e.t = (e.t as i64 + off).max(0) as u64;
    }

    // 5. Monotone fix-up along parent links, then per-trace topological
    //    re-emit: parents first, siblings ordered by (t, span).
    let index: HashMap<(u64, u64), usize> = events
        .iter()
        .enumerate()
        .map(|(i, e)| ((e.trace_id, e.span), i))
        .collect();
    fn depth_of(
        i: usize,
        events: &[CausalEvent],
        index: &HashMap<(u64, u64), usize>,
        memo: &mut [i32],
    ) -> i32 {
        if memo[i] >= 0 {
            return memo[i];
        }
        memo[i] = 0; // breaks cycles (malformed input) at depth 0
        let e = &events[i];
        let d = if e.parent == 0 {
            0
        } else {
            match index.get(&(e.trace_id, e.parent)) {
                Some(&p) => depth_of(p, events, index, memo) + 1,
                None => 0, // orphan: artifact() will drop it anyway
            }
        };
        memo[i] = d;
        d
    }
    let mut memo = vec![-1i32; events.len()];
    let depths: Vec<i32> = (0..events.len())
        .map(|i| depth_of(i, &events, &index, &mut memo))
        .collect();
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (depths[i], events[i].t, events[i].span));
    for &i in &order {
        let e = &events[i];
        if e.parent == 0 {
            continue;
        }
        if let Some(&p) = index.get(&(e.trace_id, e.parent)) {
            let parent_t = events[p].t;
            if events[i].t < parent_t {
                events[i].t = parent_t;
            }
        }
    }
    // Emit traces grouped, in order of their first (root) event; within a
    // trace parents precede children by construction of the depth sort.
    let mut trace_rank: HashMap<u64, usize> = HashMap::new();
    for &i in &order {
        let next = trace_rank.len();
        trace_rank.entry(events[i].trace_id).or_insert(next);
    }
    let mut final_order = order;
    final_order.sort_by_key(|&i| {
        (
            trace_rank[&events[i].trace_id],
            depths[i],
            events[i].t,
            events[i].span,
        )
    });
    final_order.into_iter().map(|i| events[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::TraceCtx;
    use manet_obs::CausalKind;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_report() -> ObsReport {
        let mut report = ObsReport {
            runs: 1,
            ..ObsReport::default()
        };
        let c = report.registry.counter("rt.dgram_rx");
        report.registry.inc(c, 42);
        let g = report.registry.gauge("rt.backlog");
        report.registry.set_gauge(g, 2.5);
        let h = report.registry.hist("stack.delivery_hops");
        report.registry.observe(h, 3);
        report.registry.observe(h, 1);
        report.registry.sample(10.0);
        report.registry.inc(c, 8);
        report.registry.sample(20.0);
        let s = report.spans.register("rt.drain");
        report
            .spans
            .add_weighted(s, std::time::Duration::from_micros(5), 64);
        report.recorder = FlightRecorder::new(8);
        report
            .recorder
            .record(1.0, Severity::Info, "join", "n1 joined".into());
        report
            .recorder
            .record(2.0, Severity::Warn, "retry", "attempt 2".into());
        report
    }

    fn sample_trace() -> TraceLog {
        let mut log = TraceLog::with_id_base(64, 9, crate::trace::node_id_base(1));
        let trace = log.alloc_trace();
        let root = TraceCtx::root(trace, log.alloc_span());
        log.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(1),
                ctx: root,
                label: "query",
            },
        );
        let send = root.child(log.alloc_span());
        log.record(
            t(1),
            TraceEvent::Send {
                node: NodeId(1),
                ctx: send,
                to: Some(NodeId(2)),
                frame: "data",
                bytes: 64,
            },
        );
        log.record(t(2), TraceEvent::Join { node: NodeId(1) });
        log.record(
            t(3),
            TraceEvent::RoleChange {
                node: NodeId(1),
                role: Role::Master,
            },
        );
        let deliver = send.child(log.alloc_span());
        log.record(
            t(4),
            TraceEvent::DeliverUp {
                node: NodeId(1),
                from: NodeId(2),
                kind: MsgKind::QueryHit,
                hops: 2,
                ctx: deliver,
            },
        );
        log
    }

    #[test]
    fn telemetry_roundtrips_exactly() {
        let report = sample_report();
        let trace = sample_trace();
        let frame = encode_telemetry(7, &report, &trace);
        let back = decode_telemetry(&frame).expect("decodes");
        assert_eq!(back.node, 7);
        assert_eq!(back.report, report, "report round-trips bit-exactly");
        // The trace's analytical content round-trips: events, totals,
        // namespaces, watermarks.
        let a: Vec<_> = trace.events().cloned().collect();
        let b: Vec<_> = back.trace.events().cloned().collect();
        assert_eq!(a, b);
        assert_eq!(back.trace.offered(), trace.offered());
        assert_eq!(back.trace.id_base(), trace.id_base());
        assert_eq!(back.trace.next_trace, trace.next_trace);
        assert_eq!(back.trace.next_span, trace.next_span);
        assert_eq!(back.trace.capacity(), trace.capacity());
    }

    #[test]
    fn hex_armor_roundtrips() {
        let frame = encode_telemetry(0, &ObsReport::default(), &TraceLog::new(0));
        let hex = to_hex(&frame);
        assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(from_hex(&hex).expect("decodes"), frame);
        assert_eq!(from_hex(&format!(" {hex}\n")).expect("trims"), frame);
        assert!(from_hex("abc").is_err(), "odd length rejected");
        assert!(from_hex("zz").is_err(), "non-hex rejected");
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let frame = encode_telemetry(3, &sample_report(), &sample_trace());
        for cut in 0..frame.len() {
            match decode_telemetry(&frame[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::BadTag { .. }) => {}
                Err(WireError::Trailing { .. }) => panic!("prefix cannot trail"),
                Ok(_) => panic!("truncated frame at {cut} must not decode"),
            }
        }
    }

    #[test]
    fn corruption_is_rejected_not_propagated() {
        let frame = encode_telemetry(3, &sample_report(), &sample_trace());
        // Flip every byte in turn; decode must never panic, and whenever
        // it succeeds the result must still be internally consistent.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            let _ = decode_telemetry(&bad);
        }
    }

    #[test]
    fn snapshot_is_a_running_total_parent_keeps_last() {
        // Two snapshots of one growing report: decoding the later one
        // alone reflects the full totals (the periodic-cadence contract).
        let mut report = ObsReport {
            runs: 1,
            ..ObsReport::default()
        };
        let trace = TraceLog::new(0);
        let c = report.registry.counter("rt.dgram_rx");
        report.registry.inc(c, 5);
        let early = encode_telemetry(0, &report, &trace);
        report.registry.inc(c, 5);
        let late = encode_telemetry(0, &report, &trace);
        let a = decode_telemetry(&early).unwrap();
        let b = decode_telemetry(&late).unwrap();
        assert_eq!(a.report.registry.counter_by_name("rt.dgram_rx"), Some(5));
        assert_eq!(b.report.registry.counter_by_name("rt.dgram_rx"), Some(10));
    }

    #[test]
    fn empty_report_and_trace_roundtrip() {
        let frame = encode_telemetry(0, &ObsReport::default(), &TraceLog::new(0));
        let back = decode_telemetry(&frame).expect("decodes");
        assert_eq!(back.report, ObsReport::default());
        assert!(back.trace.is_empty());
    }

    fn ev(trace: u64, span: u64, parent: u64, t: u64, node: u32, kind: CausalKind) -> CausalEvent {
        CausalEvent {
            trace_id: trace,
            span,
            parent,
            t,
            node,
            kind,
        }
    }

    fn send(trace: u64, span: u64, parent: u64, t: u64, node: u32) -> CausalEvent {
        ev(
            trace,
            span,
            parent,
            t,
            node,
            CausalKind::Send {
                frame: "data".into(),
                to: None,
                bytes: 64,
            },
        )
    }

    fn recv(trace: u64, span: u64, parent: u64, t: u64, node: u32, from: u32) -> CausalEvent {
        ev(
            trace,
            span,
            parent,
            t,
            node,
            CausalKind::Recv {
                frame: "data".into(),
                from,
            },
        )
    }

    #[test]
    fn stitch_rebases_a_skewed_receiver() {
        // Node 1's clock is 1000 ticks behind node 0's: its recvs appear
        // to precede the sends that caused them. Both directions of
        // exchange exist, so the NTP half-difference recovers the skew.
        let origin = ev(
            1,
            1,
            0,
            100,
            0,
            CausalKind::Origin {
                label: "query".into(),
            },
        );
        // 0 -> 1: sent at 100 (node 0 clock), received at real 110 which
        // node 1 stamps as -890 -> impossible unsigned; use bigger bases.
        let s01 = send(1, 2, 1, 10_100, 0);
        let r01 = recv(1, 3, 2, 9_110, 1, 0); // 10_110 real - 1000 skew
        let s10 = send(1, 4, 3, 9_120, 1); // real 10_120
        let r10 = recv(1, 5, 4, 10_130, 0, 1);
        let out = stitch_clocks(vec![
            origin.clone(),
            s01.clone(),
            r01.clone(),
            s10.clone(),
            r10.clone(),
        ]);
        assert_eq!(out.len(), 5);
        // Parent always precedes child in the stream, and times are
        // monotone along every parent link.
        let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for e in &out {
            if e.parent != 0 {
                let pt = seen.get(&e.parent).copied().expect("parent first");
                assert!(e.t >= pt, "child {e:?} precedes its parent");
            }
            seen.insert(e.span, e.t);
        }
        // The recv on node 1 now lands after its send on node 0 by the
        // true one-way delay (10 ticks), not before it.
        let r = out.iter().find(|e| e.span == 3).unwrap();
        let s = out.iter().find(|e| e.span == 2).unwrap();
        assert_eq!(r.t - s.t, 10, "skew removed, delay preserved");
    }

    #[test]
    fn stitch_single_direction_pins_recv_at_send() {
        let origin = ev(
            1,
            1,
            0,
            100,
            0,
            CausalKind::Origin {
                label: "query".into(),
            },
        );
        let s = send(1, 2, 1, 200, 0);
        let r = recv(1, 3, 2, 50, 1, 0); // receiver clock far behind
        let out = stitch_clocks(vec![origin, s, r]);
        let s_out = out.iter().find(|e| e.span == 2).unwrap();
        let r_out = out.iter().find(|e| e.span == 3).unwrap();
        assert_eq!(
            r_out.t, s_out.t,
            "one-directional pair assumes zero delay: recv lands at send"
        );
    }

    #[test]
    fn stitch_without_cross_node_pairs_is_ordering_only() {
        let origin = ev(
            1,
            1,
            0,
            100,
            0,
            CausalKind::Origin {
                label: "query".into(),
            },
        );
        let s = send(1, 2, 1, 150, 0);
        let out = stitch_clocks(vec![s.clone(), origin.clone()]);
        assert_eq!(out[0].span, 1, "parent re-ordered before child");
        assert_eq!(out[0].t, 100, "no offsets applied");
        assert_eq!(out[1].t, 150);
    }
}
