//! # p2p-stack — the substrate-neutral node stack
//!
//! Everything a per-node protocol stack is, minus any opinion about what
//! executes it. The same types and the same machine run on both of the
//! workspace's substrates (see [`manet_des::Substrate`]):
//!
//! * the DES (`manet-sim`), where frames travel as in-memory structs over
//!   a modelled radio and "now" is virtual;
//! * the real-time driver (`manet-rt`), where frames are UDP datagrams
//!   and "now" is elapsed wall-clock microseconds.
//!
//! Seven pieces:
//!
//! * [`payload`] — [`AppMsg`], the union of overlay and content messages
//!   the routing layer carries;
//! * [`verbs`] — the five typed verbs ([`FrameUp`], [`SendDown`],
//!   [`DeliverUp`], [`OverlayDown`], [`TimerReq`]) that are the *only*
//!   boundary either substrate may cross;
//! * [`wire`] — the byte-exact frame codec turning a [`FrameUp`] into a
//!   datagram and back;
//! * [`machine`] — [`StackMachine`], the AODV + reconfigurator + query
//!   engine composition, pure over `(now, verb)`;
//! * [`trace`] — [`TraceLog`], the bounded causal/milestone event trace
//!   both substrates record into;
//! * [`obs`] — [`ObsSink`], the optional observability seam a hosting
//!   substrate can arm on the machine (slab counters, causal spans, a
//!   flight recorder);
//! * [`telemetry`] — the length-prefixed frame that ships one node's
//!   `ObsReport` + [`TraceLog`] across a process boundary, plus the
//!   clock-offset estimator that stitches per-process traces into one
//!   timeline.

pub mod machine;
pub mod obs;
pub mod payload;
pub mod telemetry;
pub mod trace;
pub mod verbs;
pub mod wire;

pub use machine::{StackMachine, StackOutput};
pub use obs::{ObsSink, StackObs};
pub use payload::AppMsg;
pub use telemetry::{
    decode_telemetry, encode_telemetry, from_hex, stitch_clocks, to_hex, Telemetry,
};
pub use trace::{node_id_base, TraceEvent, TraceLog};
pub use verbs::{DeliverUp, FrameUp, OverlayDown, SendDown, TimerReq};
pub use wire::{decode_frame, encode_frame};
