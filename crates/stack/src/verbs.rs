//! The five inter-layer verbs — the only boundary a substrate may cross.
//!
//! ```text
//!   overlay   Reconfigurator + QueryEngine
//!      ↑ DeliverUp            ↓ OverlayDown
//!   routing   AODV state machine
//!      ↑ FrameUp              ↓ SendDown
//!   phy       modelled radio (DES) · UDP socket (real-time)
//! ```
//!
//! Layers communicate exclusively through these typed verbs; no layer
//! reaches into another's fields. The DES executes them against its
//! modelled radio and future-event list, the real-time driver against a
//! socket and an epoll deadline — everything above the phy layer is
//! shared, so "the same stack on both substrates" is a type-level fact,
//! not a convention.

use manet_aodv::Msg;
use manet_des::{NodeId, SimTime, TraceCtx};
use p2p_content::ContentMsg;
use p2p_core::OverlayMsg;

use crate::payload::AppMsg;

/// phy → routing: a frame survived the medium and arrived intact.
///
/// The causal context rides inside `msg` (see [`Msg::ctx`]); a tracing
/// substrate stamps its `Recv` span onto it before handing the frame up.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameUp {
    /// The transmitting (previous-hop) node.
    pub from: NodeId,
    /// The frame itself.
    pub msg: Msg<AppMsg>,
}

/// routing → phy: put a frame on the air. The causal context rides
/// inside `msg`; a tracing substrate records the `Send` span and
/// re-stamps it.
#[derive(Clone, Debug, PartialEq)]
pub enum SendDown {
    /// One-hop broadcast to everyone in range.
    Broadcast(Msg<AppMsg>),
    /// One-hop unicast to a specific neighbor.
    Unicast {
        /// The next-hop neighbor.
        to: NodeId,
        /// The frame itself.
        msg: Msg<AppMsg>,
    },
}

/// routing → overlay: an application payload reached its destination.
#[derive(Clone, Debug)]
pub struct DeliverUp {
    /// Originator of the payload.
    pub src: NodeId,
    /// Ad-hoc hops travelled.
    pub hops: u8,
    /// Arrived via a hop-limited flood (true) or a routed unicast.
    pub flood: bool,
    /// The payload itself.
    pub payload: AppMsg,
    /// Causal context the payload travelled with.
    pub ctx: TraceCtx,
}

/// overlay → routing: send an application payload across the MANET under
/// a causal context (the minting overlay event, or [`TraceCtx::NONE`]).
#[derive(Clone, Debug)]
pub enum OverlayDown {
    /// Hop-limited flood of a (re)configuration message.
    Flood {
        /// Ad-hoc hop radius.
        ttl: u8,
        /// The message to flood.
        msg: OverlayMsg,
        /// Causal context of the minting event.
        ctx: TraceCtx,
    },
    /// Routed (re)configuration unicast.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: OverlayMsg,
        /// Causal context of the minting event.
        ctx: TraceCtx,
    },
    /// Routed content (query-layer) unicast.
    Content {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: ContentMsg,
        /// Causal context of the minting event.
        ctx: TraceCtx,
    },
}

/// any layer → substrate: earliest instant this stack needs its combined
/// timer to fire, and on whose causal behalf (a pending route-discovery
/// retry names the query waiting on it; [`TraceCtx::NONE`] otherwise).
#[derive(Clone, Copy, Debug)]
pub struct TimerReq {
    /// The requested wake instant ([`SimTime::MAX`] = nothing pending).
    pub at: SimTime,
    /// Causal context of the wake, for tracing substrates.
    pub ctx: TraceCtx,
}
