//! The substrate-neutral protocol machine: one node's routing + overlay
//! + query layers composed behind the verb boundary.
//!
//! [`StackMachine`] is what a substrate hosts. It owns the AODV instance,
//! the (re)configuration algorithm and the query engine, and exposes
//! exactly four entry points — [`join`](StackMachine::join),
//! [`on_frame`](StackMachine::on_frame), [`tick`](StackMachine::tick) and
//! [`timer_request`](StackMachine::timer_request) — all pure over
//! `(now, input)`. Each entry point runs the same depth-first action
//! cascade the DES adapters run (an AODV delivery feeds the overlay,
//! whose replies feed back into AODV, until the cascade bottoms out in
//! frames) and returns everything that escaped the node as a
//! [`StackOutput`]: frames for the phy to transmit, deliveries and
//! completed queries for observation.
//!
//! The DES keeps its own specialized adapters (`manet-sim`'s stack
//! module) because it interleaves tracing, observability counters and
//! adversarial interception at every hop of the cascade; this machine is
//! the clean-room composition the real-time substrate hosts, built from
//! the *same* protocol crates and the same verbs.

use manet_aodv::{Action, Aodv, AodvCfg, AodvStats, Msg};
use manet_des::{NodeId, SimTime, TraceCtx};
use p2p_content::{CSend, CompletedQuery, ContentMsg, QueryEngine, QueryStats};
use p2p_core::{BoxedAlgo, OvAction, Role};

use crate::obs::ObsSink;
use crate::payload::AppMsg;
use crate::trace::TraceEvent;
use crate::verbs::{DeliverUp, FrameUp, OverlayDown, SendDown, TimerReq};

/// Everything one entry point caused to leave (or surface at) the node.
#[derive(Default)]
pub struct StackOutput {
    /// Frames for the phy layer to transmit, in cascade order.
    pub frames: Vec<SendDown>,
    /// Payloads that reached this node's overlay, for observation.
    pub delivered: Vec<DeliverUp>,
    /// Queries whose response window closed during this entry point.
    pub completed: Vec<CompletedQuery>,
    /// Destinations the routing layer gave up reaching.
    pub unreachable: Vec<NodeId>,
}

/// One node's full protocol stack above the phy layer.
pub struct StackMachine {
    id: NodeId,
    aodv: Aodv<AppMsg>,
    algo: BoxedAlgo,
    engine: QueryEngine,
    joined: bool,
    /// The observability seam (off by default — see [`crate::obs`]).
    obs: ObsSink,
}

impl StackMachine {
    /// A stack for node `id`. The algorithm and engine arrive
    /// pre-seeded; nothing runs until [`join`](StackMachine::join).
    pub fn new(id: NodeId, aodv: AodvCfg, algo: BoxedAlgo, engine: QueryEngine) -> Self {
        StackMachine {
            id,
            aodv: Aodv::new(id, aodv),
            algo,
            engine,
            joined: false,
            obs: ObsSink::Off,
        }
    }

    /// Arm (or disarm) the observability seam. Arming changes nothing
    /// about what the machine sends or delivers — only what it records.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The observability sink (read side).
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// The observability sink, mutable — the hosting substrate records
    /// its own counters/spans and drains reports through this.
    pub fn obs_mut(&mut self) -> &mut ObsSink {
        &mut self.obs
    }

    /// Mirror the protocol layers' running totals into the armed sink's
    /// registry (no-op when off). Substrates call this before taking a
    /// telemetry snapshot so mirrored counters are current.
    pub fn sync_obs(&mut self) {
        let q = *self.engine.stats();
        let a = *self.aodv.stats();
        if let Some(obs) = self.obs.on_mut() {
            obs.mirror_stats(&q, &a);
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether [`join`](StackMachine::join) has run.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Current overlay reference list (sorted by node id).
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.algo.neighbors()
    }

    /// The node's current overlay role.
    pub fn role(&self) -> Role {
        self.algo.role()
    }

    /// Query-layer counters.
    pub fn query_stats(&self) -> &QueryStats {
        self.engine.stats()
    }

    /// Routing-layer counters.
    pub fn aodv_stats(&self) -> &AodvStats {
        self.aodv.stats()
    }

    /// The earliest wake any layer needs, as a typed [`TimerReq`].
    /// Mirrors the DES stack's combined single timer per node.
    pub fn timer_request(&self) -> TimerReq {
        let mut wake = self.aodv.next_wake();
        if self.joined {
            wake = wake.min(self.algo.next_wake()).min(self.engine.next_wake());
        }
        TimerReq {
            at: wake,
            ctx: TraceCtx::NONE,
        }
    }

    /// The node joins the overlay: start the algorithm and the query
    /// engine, then execute the first discovery traffic.
    pub fn join(&mut self, now: SimTime) -> StackOutput {
        let mut out = StackOutput::default();
        self.joined = true;
        let id = self.id;
        if let Some(obs) = self.obs.on_mut() {
            obs.record(now, TraceEvent::Join { node: id });
            obs.flight(
                now,
                manet_obs::Severity::Info,
                "join",
                format!("{id} joined the overlay"),
            );
        }
        let actions = self.algo.start(now);
        self.engine.start(now);
        self.exec_overlay(now, actions, TraceCtx::NONE, &mut out);
        out
    }

    /// A frame arrived from the phy layer.
    ///
    /// If the frame carries an active causal context and the sink is
    /// armed, a `Recv` span is recorded and stamped back onto the frame
    /// — the same chaining the DES routing adapter does — so every AODV
    /// effect (forwarding, RREPs, deliveries) links under this node's
    /// reception.
    pub fn on_frame(&mut self, now: SimTime, frame: FrameUp) -> StackOutput {
        let mut out = StackOutput::default();
        let FrameUp { from, mut msg } = frame;
        let id = self.id;
        if let Some(obs) = self.obs.on_mut() {
            if obs.trace.enabled() && msg.ctx().is_active() {
                let recv = msg.ctx().child(obs.trace.alloc_span());
                obs.record(
                    now,
                    TraceEvent::Recv {
                        node: id,
                        ctx: recv,
                        from,
                        frame: msg.kind(),
                    },
                );
                msg.set_ctx(recv);
            }
        }
        let actions = self.aodv.on_frame(now, from, msg);
        self.exec(now, actions, &mut out);
        out
    }

    /// The combined protocol timer fired: tick routing, then (once
    /// joined) the overlay and query layers.
    pub fn tick(&mut self, now: SimTime) -> StackOutput {
        let mut out = StackOutput::default();
        let actions = self.aodv.tick(now);
        self.exec(now, actions, &mut out);
        if self.joined {
            let actions = self.algo.tick(now);
            self.exec_overlay(now, actions, TraceCtx::NONE, &mut out);
            let neighbors = self.algo.neighbors();
            let (sends, completed) = self.engine.tick(now, &neighbors);
            out.completed.extend(completed);
            self.exec_content(now, sends, TraceCtx::NONE, &mut out);
        }
        out
    }

    /// Mint a fresh trace root for a spontaneous origination batch
    /// (same policy as the DES overlay adapter): only when the sink is
    /// armed with tracing on, the batch is non-empty, and there is no
    /// active upstream cause. One trace covers the whole batch.
    fn mint(
        &mut self,
        now: SimTime,
        cause: TraceCtx,
        label: &'static str,
        nonempty: bool,
    ) -> TraceCtx {
        let id = self.id;
        let Some(obs) = self.obs.on_mut() else {
            return cause;
        };
        if cause.is_active() || !nonempty || !obs.trace.enabled() {
            return cause;
        }
        let root = TraceCtx::root(obs.trace.alloc_trace(), obs.trace.alloc_span());
        obs.record(
            now,
            TraceEvent::Origin {
                node: id,
                ctx: root,
                label,
            },
        );
        root
    }

    /// Record a `Send` span for a departing frame and stamp it onto the
    /// frame (no-op unless the sink is armed and the frame is traced).
    fn trace_send(&mut self, now: SimTime, msg: &mut Msg<AppMsg>, to: Option<NodeId>) {
        let id = self.id;
        if let Some(obs) = self.obs.on_mut() {
            if obs.trace.enabled() && msg.ctx().is_active() {
                let send = msg.ctx().child(obs.trace.alloc_span());
                obs.record(
                    now,
                    TraceEvent::Send {
                        node: id,
                        ctx: send,
                        to,
                        frame: msg.kind(),
                        bytes: msg.wire_size(),
                    },
                );
                msg.set_ctx(send);
            }
        }
    }

    /// Depth-first AODV action cascade: each action completes (including
    /// every overlay reaction it provokes) before the next one runs —
    /// the same ordering contract the DES adapters keep.
    fn exec(&mut self, now: SimTime, actions: Vec<Action<AppMsg>>, out: &mut StackOutput) {
        for action in actions {
            match action {
                Action::Broadcast(mut msg) => {
                    self.trace_send(now, &mut msg, None);
                    out.frames.push(SendDown::Broadcast(msg))
                }
                Action::Unicast { to, mut msg } => {
                    self.trace_send(now, &mut msg, Some(to));
                    out.frames.push(SendDown::Unicast { to, msg })
                }
                Action::Deliver {
                    src,
                    hops,
                    payload,
                    ctx,
                } => self.deliver(
                    now,
                    DeliverUp {
                        src,
                        hops,
                        flood: false,
                        payload,
                        ctx,
                    },
                    out,
                ),
                Action::DeliverFlood {
                    origin,
                    hops,
                    payload,
                    ctx,
                } => self.deliver(
                    now,
                    DeliverUp {
                        src: origin,
                        hops,
                        flood: true,
                        payload,
                        ctx,
                    },
                    out,
                ),
                Action::Unreachable { dst, ctx, .. } => {
                    let id = self.id;
                    let mut cause = ctx;
                    if let Some(obs) = self.obs.on_mut() {
                        obs.on_unreachable();
                        if obs.trace.enabled() && ctx.is_active() {
                            cause = ctx.child(obs.trace.alloc_span());
                            obs.record(
                                now,
                                TraceEvent::Unreachable {
                                    node: id,
                                    ctx: cause,
                                    dst,
                                },
                            );
                        }
                    }
                    out.unreachable.push(dst);
                    if self.joined {
                        let actions = self.algo.on_unreachable(now, dst);
                        self.exec_overlay(now, actions, cause, out);
                    }
                }
            }
        }
    }

    /// A payload surfaced at this node: record it and hand it to the
    /// overlay algorithm or the query engine. The delivery becomes the
    /// causal parent of everything the overlay does in response.
    fn deliver(&mut self, now: SimTime, verb: DeliverUp, out: &mut StackOutput) {
        out.delivered.push(verb.clone());
        if !self.joined {
            return; // pure relays have no overlay presence
        }
        let DeliverUp {
            src,
            hops,
            flood,
            payload,
            ctx,
        } = verb;
        let id = self.id;
        let mut cause = TraceCtx::NONE;
        if let Some(obs) = self.obs.on_mut() {
            obs.on_delivered(hops);
            if obs.trace.enabled() {
                if ctx.is_active() {
                    cause = ctx.child(obs.trace.alloc_span());
                }
                obs.record(
                    now,
                    TraceEvent::DeliverUp {
                        node: id,
                        from: src,
                        kind: payload.kind(),
                        hops,
                        ctx: cause,
                    },
                );
            }
        }
        match payload {
            AppMsg::Overlay(msg) => {
                let actions = if flood {
                    self.algo.on_flood(now, src, hops, &msg)
                } else {
                    self.algo.on_msg(now, src, hops, &msg)
                };
                self.exec_overlay(now, actions, cause, out);
            }
            AppMsg::Content(msg) => {
                let neighbors = self.algo.neighbors();
                let sends = self.engine.on_msg(now, src, hops, &msg, &neighbors);
                self.exec_content(now, sends, cause, out);
            }
        }
    }

    /// Push overlay actions down into AODV as [`OverlayDown`] verbs.
    /// `cause` is the delivery (or unreachable report) that provoked the
    /// batch; when inactive and the batch is non-empty, a fresh
    /// "reconfig" trace is minted for it.
    fn exec_overlay(
        &mut self,
        now: SimTime,
        actions: Vec<OvAction>,
        cause: TraceCtx,
        out: &mut StackOutput,
    ) {
        let ctx = self.mint(now, cause, "reconfig", !actions.is_empty());
        for action in actions {
            let verb = match action {
                OvAction::Flood { ttl, msg } => OverlayDown::Flood { ttl, msg, ctx },
                OvAction::Send { to, msg } => OverlayDown::Send { to, msg, ctx },
            };
            self.overlay_down(now, verb, out);
        }
    }

    /// Push content-layer sends down into AODV as [`OverlayDown`] verbs,
    /// minting a trace named after the batch's leading message when
    /// there is no upstream cause (a locally originated query).
    fn exec_content(
        &mut self,
        now: SimTime,
        sends: Vec<CSend>,
        cause: TraceCtx,
        out: &mut StackOutput,
    ) {
        let label = match sends.first().map(|s| &s.msg) {
            Some(ContentMsg::Query { .. }) => "query",
            Some(ContentMsg::QueryHit { .. }) => "query_hit",
            Some(ContentMsg::FetchRequest { .. }) => "fetch",
            Some(ContentMsg::FileTransfer { .. }) => "transfer",
            None => "content",
        };
        let ctx = self.mint(now, cause, label, !sends.is_empty());
        for send in sends {
            self.overlay_down(
                now,
                OverlayDown::Content {
                    to: send.to,
                    msg: send.msg,
                    ctx,
                },
                out,
            );
        }
    }

    /// Execute one [`OverlayDown`] verb (the routing adapter's core).
    fn overlay_down(&mut self, now: SimTime, verb: OverlayDown, out: &mut StackOutput) {
        let actions = match verb {
            OverlayDown::Flood { ttl, msg, ctx } => {
                self.aodv.flood(now, ttl.max(1), AppMsg::Overlay(msg), ctx)
            }
            OverlayDown::Send { to, msg, ctx } => {
                self.aodv.send(now, to, AppMsg::Overlay(msg), ctx)
            }
            OverlayDown::Content { to, msg, ctx } => {
                self.aodv.send(now, to, AppMsg::Content(msg), ctx)
            }
        };
        self.exec(now, actions, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::{Rng, SimDuration};
    use p2p_content::{Catalog, ContentMsg, FileId, QueryCfg};
    use p2p_core::{build_algo, AlgoKind, OverlayParams};
    use std::collections::BTreeSet;
    use std::collections::VecDeque;

    /// A deliberately tiny in-memory substrate: a lossless full mesh
    /// where every node is one radio hop from every other — the same
    /// topology the loopback swarm realizes with UDP sockets.
    struct Mesh {
        nodes: Vec<StackMachine>,
        answered: usize,
        issued: usize,
    }

    impl Mesh {
        fn new(n: u32, files_of: impl Fn(u32) -> Vec<u16>) -> Mesh {
            let query = QueryCfg {
                response_wait: SimDuration::from_secs(2),
                think_min: SimDuration::from_millis(500),
                think_max: SimDuration::from_millis(1500),
                ..QueryCfg::default()
            };
            let nodes = (0..n)
                .map(|i| {
                    let id = NodeId(i);
                    let algo = build_algo(
                        AlgoKind::Regular,
                        id,
                        OverlayParams::default(),
                        0,
                        Rng::new(100 + i as u64),
                    );
                    let engine = QueryEngine::new(
                        id,
                        query,
                        Catalog::default(),
                        files_of(i).into_iter().map(FileId).collect(),
                        Rng::new(200 + i as u64),
                    );
                    StackMachine::new(id, AodvCfg::default(), algo, engine)
                })
                .collect();
            Mesh {
                nodes,
                answered: 0,
                issued: 0,
            }
        }

        /// Deliver every frame in `out` instantly, cascading.
        fn route(&mut self, from: usize, out: StackOutput, now: SimTime) {
            let mut pending: VecDeque<(usize, StackOutput)> = VecDeque::new();
            pending.push_back((from, out));
            while let Some((src, out)) = pending.pop_front() {
                for done in &out.completed {
                    self.issued += 1;
                    if !done.answers.is_empty() {
                        self.answered += 1;
                    }
                }
                for frame in out.frames {
                    match frame {
                        SendDown::Broadcast(msg) => {
                            for to in 0..self.nodes.len() {
                                if to != src {
                                    let up = FrameUp {
                                        from: NodeId(src as u32),
                                        msg: msg.clone(),
                                    };
                                    let o = self.nodes[to].on_frame(now, up);
                                    pending.push_back((to, o));
                                }
                            }
                        }
                        SendDown::Unicast { to, msg } => {
                            let to = to.0 as usize;
                            let up = FrameUp {
                                from: NodeId(src as u32),
                                msg,
                            };
                            let o = self.nodes[to].on_frame(now, up);
                            pending.push_back((to, o));
                        }
                    }
                }
            }
        }

        fn run(&mut self, until: SimTime) {
            let mut now = SimTime::ZERO;
            for i in 0..self.nodes.len() {
                let out = self.nodes[i].join(now);
                self.route(i, out, now);
            }
            loop {
                let (i, at) = (0..self.nodes.len())
                    .map(|i| (i, self.nodes[i].timer_request().at))
                    .min_by_key(|&(_, at)| at)
                    .expect("nonempty");
                if at > until {
                    break;
                }
                now = at.max(now);
                let out = self.nodes[i].tick(now);
                self.route(i, out, now);
            }
        }
    }

    /// The full composition answers queries end-to-end over an
    /// instantaneous mesh: overlay forms, queries fan out with TTL, a
    /// holder hits back, the window closes with ≥1 answer.
    #[test]
    fn mesh_answers_queries_end_to_end() {
        // Node 0 holds nothing; the rest share the catalogue's head so
        // every query target has a holder.
        let mut mesh = Mesh::new(4, |i| if i == 0 { vec![] } else { vec![0, 1, 2, 3] });
        mesh.run(SimTime::from_secs(20));
        assert!(
            mesh.nodes.iter().any(|n| !n.neighbors().is_empty()),
            "overlay never formed"
        );
        assert!(mesh.issued > 0, "no query ever issued");
        assert!(
            mesh.answered > 0,
            "no query answered (issued {})",
            mesh.issued
        );
    }

    /// Frames reaching a node that never joined are relayed by AODV but
    /// surface no overlay traffic — the DES's "pure relay" semantics.
    #[test]
    fn unjoined_node_is_a_pure_relay() {
        let mut m = {
            let id = NodeId(9);
            let algo = build_algo(
                AlgoKind::Regular,
                id,
                OverlayParams::default(),
                0,
                Rng::new(1),
            );
            let engine = QueryEngine::new(
                id,
                QueryCfg::default(),
                Catalog::default(),
                BTreeSet::new(),
                Rng::new(2),
            );
            StackMachine::new(id, AodvCfg::default(), algo, engine)
        };
        assert!(!m.is_joined());
        let msg = manet_aodv::Msg::Data(manet_aodv::Data {
            src: NodeId(1),
            dst: NodeId(9),
            hops: 1,
            payload: AppMsg::Content(ContentMsg::QueryHit {
                id: p2p_content::QueryId {
                    origin: NodeId(9),
                    seq: 0,
                },
                file: FileId(0),
                p2p_hops: 1,
            }),
            ctx: TraceCtx::NONE,
        });
        let out = m.on_frame(
            SimTime::from_secs(1),
            FrameUp {
                from: NodeId(1),
                msg,
            },
        );
        assert_eq!(out.delivered.len(), 1, "delivery still surfaces");
        assert!(out.frames.is_empty(), "no overlay reaction");
    }

    /// The combined timer is the min over all three layers, exactly as
    /// the DES stack computes it.
    #[test]
    fn timer_is_combined_min() {
        let id = NodeId(0);
        let algo = build_algo(
            AlgoKind::Regular,
            id,
            OverlayParams::default(),
            0,
            Rng::new(3),
        );
        let engine = QueryEngine::new(
            id,
            QueryCfg::default(),
            Catalog::default(),
            BTreeSet::new(),
            Rng::new(4),
        );
        let mut m = StackMachine::new(id, AodvCfg::default(), algo, engine);
        let before = m.timer_request().at;
        let _ = m.join(SimTime::ZERO);
        let after = m.timer_request().at;
        assert!(after < SimTime::MAX, "join arms discovery/query timers");
        assert!(
            after <= before,
            "combined timer folds the overlay/query wakes in: {after:?} vs {before:?}"
        );
    }
}
