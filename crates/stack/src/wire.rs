//! The datagram codec: a [`FrameUp`] verb as bytes.
//!
//! A frame on the wire is a fixed header — two magic bytes, a version
//! byte, the sender's node id — followed by the AODV message encoded by
//! [`manet_aodv::wire`], with [`AppMsg`] as the payload (one tag byte
//! selecting overlay vs content, then the layer's own codec). The sender
//! id travels in the header because UDP source addresses identify
//! *sockets*, not protocol nodes; carrying the id keeps the mapping
//! byte-exact and address-scheme independent.
//!
//! [`decode_frame`] validates everything — magic, version, every tag,
//! exact length — and returns a typed [`WireError`] on any corruption. A
//! real socket receives attacker-controlled bytes; panicking is not an
//! acceptable parse result.

use manet_aodv::wire::{decode_msg, encode_msg, WirePayload};
use manet_aodv::Msg;
use manet_des::wire::{put_u32, put_u8};
use manet_des::{NodeId, WireError, WireReader};
use p2p_content::{decode_content, encode_content};
use p2p_core::{decode_overlay, encode_overlay};

use crate::payload::AppMsg;
use crate::verbs::FrameUp;

/// Leading bytes of every datagram; anything else is rejected up front.
pub const FRAME_MAGIC: [u8; 2] = [0xAD, 0x0C];

/// Codec version; bumped on any layout change.
pub const FRAME_VERSION: u8 = 1;

const TAG_OVERLAY: u8 = 1;
const TAG_CONTENT: u8 = 2;

impl WirePayload for AppMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AppMsg::Overlay(m) => {
                put_u8(buf, TAG_OVERLAY);
                encode_overlay(m, buf);
            }
            AppMsg::Content(m) => {
                put_u8(buf, TAG_CONTENT);
                encode_content(m, buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_OVERLAY => Ok(AppMsg::Overlay(decode_overlay(r)?)),
            TAG_CONTENT => Ok(AppMsg::Content(decode_content(r)?)),
            tag => Err(WireError::BadTag {
                what: "app payload",
                tag,
            }),
        }
    }
}

/// Encode a frame from `from` into a fresh datagram buffer.
pub fn encode_frame(from: NodeId, msg: &Msg<AppMsg>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&FRAME_MAGIC);
    put_u8(&mut buf, FRAME_VERSION);
    put_u32(&mut buf, from.0);
    encode_msg(msg, &mut buf);
    buf
}

/// Decode a datagram written by [`encode_frame`] into the [`FrameUp`]
/// verb it carries. The whole buffer must be consumed.
pub fn decode_frame(buf: &[u8]) -> Result<FrameUp, WireError> {
    let mut r = WireReader::new(buf);
    for expect in FRAME_MAGIC {
        let got = r.u8()?;
        if got != expect {
            return Err(WireError::BadTag {
                what: "frame magic",
                tag: got,
            });
        }
    }
    let version = r.u8()?;
    if version != FRAME_VERSION {
        return Err(WireError::BadTag {
            what: "frame version",
            tag: version,
        });
    }
    let from = NodeId(r.u32()?);
    let msg = decode_msg::<AppMsg>(&mut r)?;
    r.finish()?;
    Ok(FrameUp { from, msg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_aodv::{Data, Flood};
    use manet_des::TraceCtx;
    use p2p_content::{ContentMsg, FileId, QueryId};
    use p2p_core::{OverlayMsg, ProbeKind};

    fn sample_frame() -> Msg<AppMsg> {
        Msg::Flood(Flood {
            origin: NodeId(3),
            flood_id: 8,
            ttl: 2,
            hops: 1,
            payload: AppMsg::Overlay(OverlayMsg::Probe {
                kind: ProbeKind::Regular,
            }),
            ctx: TraceCtx::NONE,
        })
    }

    #[test]
    fn frame_round_trips_header_and_sender() {
        let msg = sample_frame();
        let buf = encode_frame(NodeId(42), &msg);
        let up = decode_frame(&buf).expect("decodes");
        assert_eq!(up.from, NodeId(42));
        assert_eq!(up.msg, msg);
    }

    #[test]
    fn content_payload_round_trips() {
        let msg = Msg::Data(Data {
            src: NodeId(1),
            dst: NodeId(2),
            hops: 3,
            payload: AppMsg::Content(ContentMsg::Query {
                id: QueryId {
                    origin: NodeId(1),
                    seq: 5,
                },
                file: FileId(9),
                ttl: 6,
                p2p_hops: 0,
            }),
            ctx: TraceCtx::root(4, 4),
        });
        let up = decode_frame(&encode_frame(NodeId(1), &msg)).expect("decodes");
        assert_eq!(up.msg, msg);
    }

    #[test]
    fn wrong_magic_version_and_trailing_bytes_rejected() {
        let mut buf = encode_frame(NodeId(0), &sample_frame());
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode_frame(&bad_magic),
            Err(WireError::BadTag {
                what: "frame magic",
                tag: 0xAD ^ 0xFF
            })
        );
        let mut bad_version = buf.clone();
        bad_version[2] = 99;
        assert_eq!(
            decode_frame(&bad_version),
            Err(WireError::BadTag {
                what: "frame version",
                tag: 99
            })
        );
        buf.push(0);
        assert_eq!(decode_frame(&buf), Err(WireError::Trailing { extra: 1 }));
    }
}
