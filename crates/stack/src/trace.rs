//! Event tracing: a bounded, zero-cost-when-off protocol trace.
//!
//! Debugging a distributed protocol is miserable without a record of
//! *who did what, when*. [`TraceLog`] keeps the last `capacity`
//! interesting events in a ring buffer; DES worlds record into it when
//! the scenario's trace capacity is non-zero, and the real-time
//! substrate records into the same type through the machine's
//! observability sink. Rendering is plain text, one event per line,
//! suitable for diffing two runs.
//!
//! Beyond milestones (joins, connections, role changes), the log records
//! *causal* events: every frame transmission/reception, delivery,
//! unreachability verdict and traced timer arm carries a
//! [`TraceCtx`] linking it to the query or reconfiguration round that
//! caused it. [`TraceLog`] is also the span allocator —
//! [`alloc_trace`](TraceLog::alloc_trace) / [`alloc_span`](TraceLog::alloc_span)
//! hand out monotone non-zero ids with no simulation randomness, so a
//! traced run stays bit-identical to an untraced one — and
//! [`causal_events`](TraceLog::causal_events) converts the retained ring
//! into the flat stream `manet_obs::causal` analyzes and exports.
//!
//! Three mechanisms bound the cost of always-on capture:
//!
//! * **Arena ring.** Events live in a flat preallocated `Vec` written
//!   round-robin — no per-span allocation, no deque growth on the hot
//!   path.
//! * **Whole-trace reservoir sampling.** Instead of recording every span
//!   of every trace and letting the ring keep an arbitrary suffix, the
//!   log admits whole traces into a seeded Algorithm-R reservoir at mint
//!   time; spans of non-admitted traces are skipped entirely. Sampling
//!   whole traces (not individual spans) keeps every admitted causal tree
//!   complete. The sampler RNG is private to the log — simulation streams
//!   are never touched, so traced runs stay bit-identical to untraced
//!   ones. Milestone events (joins, connections, role/power changes) have
//!   no trace identity and are always recorded.
//! * **Bounded admission state.** Reservoir membership is a fixed-size
//!   slot vector plus a hash set sized to the reservoir — the log's
//!   memory is `O(capacity)` however many traces a long run mints, not
//!   one flag per trace forever.
//!
//! Sharded DES runs keep one log per shard, each allocating ids from 1;
//! [`merge_offset`](TraceLog::merge_offset) folds them into one log by
//! offsetting the ids of the folded log past the accumulator's, so merged
//! traces stay causally linked and collision-free. Multi-*process* runs
//! instead give each node a disjoint id namespace up front
//! ([`with_id_base`](TraceLog::with_id_base)): a trace minted on one node
//! flows through other nodes' logs under its original ids, so a
//! cross-process merge needs no remapping — and must not remap, or the
//! parent links stitched across the wire would be severed.

use std::collections::HashSet;

use manet_des::{NodeId, SimTime, TraceCtx};
use manet_metrics::MsgKind;
use p2p_core::Role;

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A member joined the overlay.
    Join {
        /// The node.
        node: NodeId,
    },
    /// An overlay/content message was delivered to a member.
    DeliverUp {
        /// The receiving member.
        node: NodeId,
        /// Who originated the message.
        from: NodeId,
        /// The figure category.
        kind: MsgKind,
        /// Ad-hoc hops travelled.
        hops: u8,
        /// Causal position ([`TraceCtx::NONE`] when causal tracing is not
        /// active for this message).
        ctx: TraceCtx,
    },
    /// A trace was minted: a query or reconfiguration round originated.
    Origin {
        /// The originating node.
        node: NodeId,
        /// The root context of the new trace.
        ctx: TraceCtx,
        /// What kind of activity this trace is (`"query"`, `"reconfig"`…).
        label: &'static str,
    },
    /// A traced frame left a node's radio.
    Send {
        /// The transmitting node.
        node: NodeId,
        /// Causal position of this transmission.
        ctx: TraceCtx,
        /// Unicast receiver, or `None` for a broadcast.
        to: Option<NodeId>,
        /// Frame kind (`"rreq"`, `"data"`, `"flood"`, …).
        frame: &'static str,
        /// Frame size on the air.
        bytes: u32,
    },
    /// A traced frame arrived at a node's radio.
    Recv {
        /// The receiving node.
        node: NodeId,
        /// Causal position of this reception.
        ctx: TraceCtx,
        /// The transmitting node.
        from: NodeId,
        /// Frame kind, mirroring the send.
        frame: &'static str,
    },
    /// Route discovery gave up on a traced destination.
    Unreachable {
        /// The node whose discovery failed.
        node: NodeId,
        /// Causal position.
        ctx: TraceCtx,
        /// The destination that could not be reached.
        dst: NodeId,
    },
    /// A node armed its protocol timer on behalf of a traced discovery.
    TimerArm {
        /// The node.
        node: NodeId,
        /// Causal position (the waiting discovery's context).
        ctx: TraceCtx,
        /// When the timer will fire.
        at: SimTime,
    },
    /// An overlay connection reached the established state (recorded from
    /// the neighbor-set delta, so both endpoints appear).
    ConnUp {
        /// The observing node.
        node: NodeId,
        /// The new neighbor.
        peer: NodeId,
    },
    /// An overlay connection went away.
    ConnDown {
        /// The observing node.
        node: NodeId,
        /// The lost neighbor.
        peer: NodeId,
    },
    /// A hybrid node changed role.
    RoleChange {
        /// The node.
        node: NodeId,
        /// Its new role.
        role: Role,
    },
    /// Churn or battery exhaustion toggled a node.
    PowerChange {
        /// The node.
        node: NodeId,
        /// True = came up, false = went down.
        up: bool,
    },
}

/// Reservoir slots per ring slot: a trace averages well over a handful of
/// spans, so tying the trace budget to the ring capacity this way keeps
/// admitted traces comfortably inside the ring.
const TRACES_PER_CAPACITY: usize = 16;

/// Floor on the reservoir size, so small rings still capture every trace
/// of a short run (the common unit-test and smoke-run shape).
const MIN_RESERVOIR: usize = 1024;

/// Width of one node's id namespace under [`TraceLog::with_id_base`]:
/// bases are spaced `2^40` apart, room for a trillion ids per node with
/// thousands of nodes before the u64 runs out.
pub const ID_NAMESPACE_BITS: u32 = 40;

/// The id base for `node`'s log in a multi-process run: node 0 mints ids
/// starting at `2^40 + 1`, node 1 at `2^41 + ...`, never colliding with
/// each other or with an un-namespaced (base 0) log.
pub fn node_id_base(node: u32) -> u64 {
    (node as u64 + 1) << ID_NAMESPACE_BITS
}

/// A bounded event trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// The arena: a flat ring written round-robin once full. `head` is
    /// the oldest entry (and the next overwrite target) when the arena is
    /// at capacity; while filling, entries are in order from index 0.
    pub(crate) arena: Vec<(SimTime, TraceEvent)>,
    pub(crate) head: usize,
    pub(crate) capacity: usize,
    /// Total events offered, including those evicted from the ring (but
    /// not spans skipped by the trace reservoir).
    pub(crate) offered: u64,
    /// Events evicted to make room — a non-zero value means the rendered
    /// trace is a suffix of the run, not the whole story.
    pub(crate) dropped: u64,
    /// Spans skipped because their trace was not in the reservoir.
    pub(crate) sampled_out: u64,
    /// Base added to every minted trace/span id; 0 for DES logs, a
    /// per-node [`node_id_base`] for multi-process logs.
    pub(crate) id_base: u64,
    /// Next trace id *sequence* to mint (minted id = `id_base + seq`;
    /// sequences start at 1, id 0 means "no trace").
    pub(crate) next_trace: u64,
    /// Next span id sequence (minted id = `id_base + seq`; 0 = "root").
    pub(crate) next_span: u64,
    /// The trace ids currently in the reservoir, slot-indexed for
    /// Algorithm R's uniform victim choice. Bounded by `reservoir_cap`.
    pub(crate) live: Vec<u64>,
    /// Mirror of `live` for O(1) admission checks at record time. A
    /// locally minted trace is admitted iff it is (still) in here;
    /// foreign traces (ids outside this log's mint range — another
    /// process's namespace, or a merged-in shard) bypass sampling, since
    /// their reservoir decision belongs to the minting log.
    pub(crate) live_set: HashSet<u64>,
    /// Reservoir size (0 disables sampling: every trace admitted).
    pub(crate) reservoir_cap: usize,
    /// Traces offered to the reservoir so far.
    pub(crate) traces_seen: u64,
    /// xorshift64 state for the reservoir — seeded, deterministic, and
    /// private to the log so simulation RNG streams are never perturbed.
    pub(crate) sampler_state: u64,
}

impl TraceLog {
    /// A log keeping at most `capacity` events (0 disables recording),
    /// with the default sampler seed.
    pub fn new(capacity: usize) -> Self {
        TraceLog::with_seed(capacity, 0)
    }

    /// A log whose trace reservoir is seeded from `seed` (worlds pass the
    /// replication seed, so reruns sample identically). Ids are minted
    /// from 1 — the DES shape, remapped at merge time when sharded.
    pub fn with_seed(capacity: usize, seed: u64) -> Self {
        TraceLog::with_id_base(capacity, seed, 0)
    }

    /// A log minting ids from a disjoint per-node namespace, for runs
    /// where multiple processes allocate concurrently and their spans
    /// must interlink across the wire (see [`node_id_base`]).
    pub fn with_id_base(capacity: usize, seed: u64, id_base: u64) -> Self {
        let reservoir_cap = if capacity == 0 {
            0
        } else {
            MIN_RESERVOIR.max(capacity / TRACES_PER_CAPACITY)
        };
        TraceLog {
            // One up-front allocation: the ring never grows on the hot
            // path (capped so absurd capacities still construct).
            arena: Vec::with_capacity(capacity.min(1 << 20)),
            head: 0,
            capacity,
            offered: 0,
            dropped: 0,
            sampled_out: 0,
            id_base,
            next_trace: 1,
            next_span: 1,
            live: Vec::with_capacity(reservoir_cap.min(1 << 20)),
            live_set: HashSet::with_capacity(reservoir_cap.min(1 << 20)),
            reservoir_cap,
            traces_seen: 0,
            // Mix in a fixed odd constant so seed 0 still works.
            sampler_state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.sampler_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.sampler_state = x;
        x
    }

    /// Algorithm R admission for a freshly minted trace: the first
    /// `reservoir_cap` traces enter outright; afterwards trace `n` enters
    /// with probability `cap / n`, replacing a uniformly chosen resident
    /// (whose remaining spans are then skipped).
    fn reserve(&mut self, id: u64) {
        if self.reservoir_cap == 0 {
            return;
        }
        self.traces_seen += 1;
        if self.live.len() < self.reservoir_cap {
            self.live.push(id);
            self.live_set.insert(id);
            return;
        }
        let j = self.next_rand() % self.traces_seen;
        if (j as usize) < self.reservoir_cap {
            let victim = self.live[j as usize];
            self.live_set.remove(&victim);
            self.live[j as usize] = id;
            self.live_set.insert(id);
        }
    }

    /// Mint a fresh trace id (monotone, non-zero, no simulation
    /// randomness) and decide its reservoir admission. Callers must only
    /// allocate when [`enabled`](Self::enabled) — id allocation when
    /// tracing is off would still be harmless to simulation results, but
    /// the discipline keeps the disabled path branch-only.
    pub fn alloc_trace(&mut self) -> u64 {
        let id = self.id_base + self.next_trace;
        self.next_trace += 1;
        self.reserve(id);
        id
    }

    /// Allocate a fresh span id (monotone, non-zero, no randomness).
    pub fn alloc_span(&mut self) -> u64 {
        let id = self.id_base + self.next_span;
        self.next_span += 1;
        id
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The trace an event belongs to (0 for milestones and untraced
    /// events).
    fn trace_of(event: &TraceEvent) -> u64 {
        match event {
            TraceEvent::DeliverUp { ctx, .. }
            | TraceEvent::Origin { ctx, .. }
            | TraceEvent::Send { ctx, .. }
            | TraceEvent::Recv { ctx, .. }
            | TraceEvent::Unreachable { ctx, .. }
            | TraceEvent::TimerArm { ctx, .. } => ctx.trace_id,
            TraceEvent::Join { .. }
            | TraceEvent::ConnUp { .. }
            | TraceEvent::ConnDown { .. }
            | TraceEvent::RoleChange { .. }
            | TraceEvent::PowerChange { .. } => 0,
        }
    }

    /// Was `trace` minted by this log's own allocator (and therefore
    /// subject to this log's reservoir)? Foreign ids — another process's
    /// namespace, or ids merged past our mint range — are recorded
    /// unconditionally: their sampling verdict was rendered where they
    /// were minted.
    fn is_locally_minted(&self, trace: u64) -> bool {
        trace > self.id_base && trace - self.id_base < self.next_trace
    }

    /// Record an event (skips spans of non-admitted traces, overwrites
    /// the oldest ring slot when full; no-op when disabled).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let trace = Self::trace_of(&event);
        if trace != 0
            && self.reservoir_cap != 0
            && self.is_locally_minted(trace)
            && !self.live_set.contains(&trace)
        {
            self.sampled_out += 1;
            return;
        }
        self.offered += 1;
        if self.arena.len() < self.capacity {
            self.arena.push((at, event));
        } else {
            self.arena[self.head] = (at, event);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.arena[self.head..]
            .iter()
            .chain(self.arena[..self.head].iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Total events seen (retained + evicted; reservoir-skipped spans are
    /// counted by [`sampled_out`](Self::sampled_out) instead).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events evicted from the ring (0 means the trace is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans skipped because their trace lost its reservoir slot. Zero
    /// whenever a run minted no more traces than the reservoir holds —
    /// i.e. the sampled trace is the complete trace.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// The ring capacity this log was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The id namespace base this log mints from (0 for DES logs).
    pub fn id_base(&self) -> u64 {
        self.id_base
    }

    /// Fold another log into this one.
    ///
    /// Two regimes, told apart by the id bases:
    ///
    /// * **Same base** (sharded DES: every shard allocates from 1) — the
    ///   folded log's trace and span ids are offset past this log's so
    ///   ids stay collision-free and causal links intact.
    /// * **Different base** (multi-process: each node owns a disjoint
    ///   namespace) — ids are globally unique already and a single trace's
    ///   spans are scattered across *both* logs, so no remapping happens;
    ///   remapping would sever the cross-process parent links.
    ///
    /// Either way events re-sort by time (stable: same-time events keep
    /// fold order, so folding shards in index order is thread-count
    /// invariant).
    pub fn merge_offset(&mut self, other: &TraceLog) {
        let same_namespace = self.id_base == other.id_base;
        let t_off = self.next_trace - 1;
        let s_off = self.next_span - 1;
        let remap = |ctx: &TraceCtx| -> TraceCtx {
            TraceCtx {
                trace_id: if ctx.trace_id == 0 {
                    0
                } else {
                    ctx.trace_id + t_off
                },
                parent_id: if ctx.parent_id == 0 {
                    0
                } else {
                    ctx.parent_id + s_off
                },
                span_seq: if ctx.span_seq == 0 {
                    0
                } else {
                    ctx.span_seq + s_off
                },
            }
        };
        let mut all: Vec<(SimTime, TraceEvent)> = self.events().cloned().collect();
        for (at, e) in other.events() {
            let mut e = e.clone();
            if same_namespace {
                match &mut e {
                    TraceEvent::DeliverUp { ctx, .. }
                    | TraceEvent::Origin { ctx, .. }
                    | TraceEvent::Send { ctx, .. }
                    | TraceEvent::Recv { ctx, .. }
                    | TraceEvent::Unreachable { ctx, .. }
                    | TraceEvent::TimerArm { ctx, .. } => *ctx = remap(ctx),
                    TraceEvent::Join { .. }
                    | TraceEvent::ConnUp { .. }
                    | TraceEvent::ConnDown { .. }
                    | TraceEvent::RoleChange { .. }
                    | TraceEvent::PowerChange { .. } => {}
                }
            }
            all.push((*at, e));
        }
        all.sort_by_key(|(at, _)| *at);
        self.capacity = self.capacity.max(other.capacity);
        self.offered += other.offered;
        self.dropped += other.dropped;
        self.sampled_out += other.sampled_out;
        let excess = all.len().saturating_sub(self.capacity);
        if excess > 0 {
            all.drain(..excess);
            self.dropped += excess as u64;
        }
        self.arena = all;
        self.head = 0;
        if same_namespace {
            self.next_trace += other.next_trace - 1;
            self.next_span += other.next_span - 1;
        }
    }

    /// Render the retained events as text, one per line. A truncated trace
    /// leads with a header stating how many events were evicted, so a
    /// partial recording can never pass for a complete one.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.dropped > 0 {
            s.push_str(&format!(
                "# trace truncated: {} of {} events dropped (capacity {})\n",
                self.dropped, self.offered, self.capacity
            ));
        }
        for (at, e) in self.events() {
            let line = match e {
                TraceEvent::Join { node } => format!("{at} {node} JOIN"),
                TraceEvent::DeliverUp {
                    node,
                    from,
                    kind,
                    hops,
                    ctx,
                } => {
                    let tag = trace_tag(ctx);
                    format!(
                        "{at} {node} RX {} from {from} ({hops} hops){tag}",
                        kind.name()
                    )
                }
                TraceEvent::ConnUp { node, peer } => format!("{at} {node} CONN+ {peer}"),
                TraceEvent::ConnDown { node, peer } => format!("{at} {node} CONN- {peer}"),
                TraceEvent::RoleChange { node, role } => {
                    format!("{at} {node} ROLE {role:?}")
                }
                TraceEvent::PowerChange { node, up } => {
                    format!("{at} {node} {}", if *up { "UP" } else { "DOWN" })
                }
                TraceEvent::Origin { node, ctx, label } => {
                    format!("{at} {node} ORIGIN {label}{}", trace_tag(ctx))
                }
                TraceEvent::Send {
                    node,
                    ctx,
                    to,
                    frame,
                    bytes,
                } => {
                    let dest = match to {
                        Some(to) => format!(" to {to}"),
                        None => " bcast".to_string(),
                    };
                    format!("{at} {node} TX {frame}{dest} {bytes}B{}", trace_tag(ctx))
                }
                TraceEvent::Recv {
                    node,
                    ctx,
                    from,
                    frame,
                } => format!("{at} {node} FRX {frame} from {from}{}", trace_tag(ctx)),
                TraceEvent::Unreachable { node, ctx, dst } => {
                    format!("{at} {node} UNREACHABLE {dst}{}", trace_tag(ctx))
                }
                TraceEvent::TimerArm { node, ctx, at: due } => {
                    format!("{at} {node} TIMER at {due}{}", trace_tag(ctx))
                }
            };
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// The causal subset of the retained ring as the flat stream
    /// `manet_obs::causal` analyzes: every event carrying an active
    /// [`TraceCtx`], in recording order. Milestone events (joins,
    /// connections, role/power changes) have no causal identity and are
    /// skipped, as are untraced deliveries.
    pub fn causal_events(&self) -> Vec<manet_obs::CausalEvent> {
        use manet_obs::{CausalEvent, CausalKind};
        let mut out = Vec::new();
        for (at, e) in self.events() {
            let (ctx, node, kind) = match e {
                TraceEvent::Origin { node, ctx, label } => (
                    ctx,
                    node,
                    CausalKind::Origin {
                        label: (*label).to_string(),
                    },
                ),
                TraceEvent::Send {
                    node,
                    ctx,
                    to,
                    frame,
                    bytes,
                } => (
                    ctx,
                    node,
                    CausalKind::Send {
                        frame: (*frame).to_string(),
                        to: to.map(|n| n.0),
                        bytes: *bytes,
                    },
                ),
                TraceEvent::Recv {
                    node,
                    ctx,
                    from,
                    frame,
                } => (
                    ctx,
                    node,
                    CausalKind::Recv {
                        frame: (*frame).to_string(),
                        from: from.0,
                    },
                ),
                TraceEvent::DeliverUp {
                    node,
                    kind,
                    hops,
                    ctx,
                    ..
                } => (
                    ctx,
                    node,
                    CausalKind::Deliver {
                        kind: kind.name().to_string(),
                        hops: *hops,
                    },
                ),
                TraceEvent::Unreachable { node, ctx, dst } => {
                    (ctx, node, CausalKind::Unreachable { dst: dst.0 })
                }
                TraceEvent::TimerArm { node, ctx, at: due } => {
                    (ctx, node, CausalKind::TimerArm { at: due.ticks() })
                }
                TraceEvent::Join { .. }
                | TraceEvent::ConnUp { .. }
                | TraceEvent::ConnDown { .. }
                | TraceEvent::RoleChange { .. }
                | TraceEvent::PowerChange { .. } => continue,
            };
            if !ctx.is_active() {
                continue;
            }
            out.push(CausalEvent {
                trace_id: ctx.trace_id,
                span: ctx.span_seq,
                parent: ctx.parent_id,
                t: at.ticks(),
                node: node.0,
                kind,
            });
        }
        out
    }
}

/// Compact ` [trace/parent>span]` suffix for traced render lines; empty
/// for untraced events so pre-existing trace text is unchanged.
fn trace_tag(ctx: &TraceCtx) -> String {
    if ctx.is_active() {
        format!(" [{}/{}>{}]", ctx.trace_id, ctx.parent_id, ctx.span_seq)
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        log.record(t(1), TraceEvent::Join { node: NodeId(1) });
        assert!(!log.enabled());
        assert!(log.is_empty());
        assert_eq!(log.offered(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = TraceLog::new(2);
        for k in 0..5u32 {
            log.record(t(k as u64), TraceEvent::Join { node: NodeId(k) });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.offered(), 5);
        assert_eq!(log.dropped(), 3);
        let text = log.render();
        assert!(
            text.starts_with("# trace truncated: 3 of 5 events dropped"),
            "missing truncation header:\n{text}"
        );
        let kept: Vec<u32> = log
            .events()
            .map(|(_, e)| match e {
                TraceEvent::Join { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4], "newest survive");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut log = TraceLog::new(8);
        log.record(t(1), TraceEvent::Join { node: NodeId(3) });
        log.record(
            t(2),
            TraceEvent::DeliverUp {
                node: NodeId(3),
                from: NodeId(5),
                kind: MsgKind::Ping,
                hops: 2,
                ctx: TraceCtx::NONE,
            },
        );
        log.record(
            t(3),
            TraceEvent::ConnUp {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(4),
            TraceEvent::ConnDown {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(5),
            TraceEvent::RoleChange {
                node: NodeId(3),
                role: Role::Master,
            },
        );
        log.record(
            t(6),
            TraceEvent::PowerChange {
                node: NodeId(3),
                up: false,
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("JOIN"));
        assert!(text.contains("RX ping from n5 (2 hops)"));
        assert!(!text.contains('['), "untraced lines carry no trace tag");
        assert!(text.contains("CONN+ n5"));
        assert!(text.contains("CONN- n5"));
        assert!(text.contains("ROLE Master"));
        assert!(text.contains("n3 DOWN"));
    }

    #[test]
    fn id_allocation_is_monotone_and_never_zero() {
        let mut log = TraceLog::new(4);
        assert_eq!(log.alloc_trace(), 1);
        assert_eq!(log.alloc_trace(), 2);
        assert_eq!(log.alloc_span(), 1);
        assert_eq!(log.alloc_span(), 2);
        assert_eq!(log.alloc_span(), 3);
    }

    #[test]
    fn id_base_namespaces_allocations() {
        let base = node_id_base(3);
        let mut log = TraceLog::with_id_base(16, 0, base);
        assert_eq!(log.alloc_trace(), base + 1);
        assert_eq!(log.alloc_span(), base + 1);
        assert_eq!(log.alloc_span(), base + 2);
        // Namespaces of distinct nodes never overlap.
        assert!(node_id_base(4) > base + (1 << ID_NAMESPACE_BITS) - 1);
    }

    #[test]
    fn foreign_trace_spans_bypass_the_local_reservoir() {
        // A node's log must record spans of traces minted elsewhere
        // unconditionally: the minting log owns the sampling verdict.
        let mut log = TraceLog::with_id_base(16, 0, node_id_base(1));
        let local = log.alloc_trace();
        let foreign = node_id_base(0) + 7; // as if minted by node 0
        for trace in [local, foreign] {
            let ctx = TraceCtx::root(trace, log.alloc_span());
            log.record(
                t(1),
                TraceEvent::Recv {
                    node: NodeId(1),
                    ctx,
                    from: NodeId(0),
                    frame: "flood",
                },
            );
        }
        assert_eq!(log.len(), 2, "both local and foreign spans recorded");
        assert_eq!(log.sampled_out(), 0);
    }

    #[test]
    fn causal_events_link_parents_and_skip_milestones() {
        let mut log = TraceLog::new(16);
        let trace = log.alloc_trace();
        let root = TraceCtx::root(trace, log.alloc_span());
        log.record(t(0), TraceEvent::Join { node: NodeId(0) });
        log.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(0),
                ctx: root,
                label: "query",
            },
        );
        let send = root.child(log.alloc_span());
        log.record(
            t(1),
            TraceEvent::Send {
                node: NodeId(0),
                ctx: send,
                to: None,
                frame: "flood",
                bytes: 40,
            },
        );
        let recv = send.child(log.alloc_span());
        log.record(
            t(2),
            TraceEvent::Recv {
                node: NodeId(1),
                ctx: recv,
                from: NodeId(0),
                frame: "flood",
            },
        );
        // An untraced delivery must not leak into the causal stream.
        log.record(
            t(3),
            TraceEvent::DeliverUp {
                node: NodeId(1),
                from: NodeId(0),
                kind: MsgKind::Ping,
                hops: 1,
                ctx: TraceCtx::NONE,
            },
        );
        let events = log.causal_events();
        assert_eq!(events.len(), 3, "join and untraced delivery skipped");
        assert_eq!(events[0].parent, 0, "origin is the root");
        assert_eq!(events[1].parent, events[0].span);
        assert_eq!(events[2].parent, events[1].span);
        assert!(events.iter().all(|e| e.trace_id == trace));
        // And the traced lines render with the compact tag.
        let text = log.render();
        assert!(text.contains("ORIGIN query [1/0>1]"), "got:\n{text}");
        assert!(text.contains("TX flood bcast 40B [1/1>2]"));
    }

    /// A log with a tiny forced reservoir: mint `n_traces` traces first
    /// (letting Algorithm R settle its admissions), then record one span
    /// per trace — spans of evicted traces are skipped at record time.
    fn reservoir_log(seed: u64, cap: usize, n_traces: usize) -> TraceLog {
        let mut log = TraceLog::with_seed(1024, seed);
        log.reservoir_cap = cap;
        let ctxs: Vec<TraceCtx> = (0..n_traces)
            .map(|_| {
                let trace = log.alloc_trace();
                TraceCtx::root(trace, log.alloc_span())
            })
            .collect();
        for ctx in ctxs {
            log.record(
                t(ctx.trace_id),
                TraceEvent::Origin {
                    node: NodeId(0),
                    ctx,
                    label: "query",
                },
            );
        }
        log
    }

    #[test]
    fn reservoir_bounds_distinct_traces_and_is_seed_deterministic() {
        let log = reservoir_log(7, 4, 100);
        let distinct: std::collections::BTreeSet<u64> =
            log.events().map(|(_, e)| TraceLog::trace_of(e)).collect();
        assert_eq!(
            distinct.len(),
            4,
            "exactly the reservoir's traces survive recording"
        );
        assert_eq!(log.sampled_out(), 96, "96 traces must have been thinned");
        // Same seed, same admissions; different seed, (almost surely)
        // different ones.
        let again = reservoir_log(7, 4, 100);
        assert_eq!(log.live, again.live);
        let other = reservoir_log(8, 4, 100);
        assert_ne!(log.live, other.live, "seed must steer the reservoir");
    }

    /// The pre-refactor reservoir, verbatim: xorshift64 draws plus one
    /// admission flag per minted trace. The bounded `live_set` rewrite
    /// must reproduce its slot assignments bit-for-bit — the golden
    /// fingerprints pin sampled traces, so the draw sequence and victim
    /// choices may not move.
    struct OracleReservoir {
        admit: Vec<bool>,
        live: Vec<u64>,
        cap: usize,
        seen: u64,
        state: u64,
    }

    impl OracleReservoir {
        fn new(cap: usize, seed: u64) -> Self {
            OracleReservoir {
                admit: Vec::new(),
                live: Vec::new(),
                cap,
                seen: 0,
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        fn mint(&mut self) {
            let id = self.admit.len() as u64 + 1;
            self.seen += 1;
            if self.live.len() < self.cap {
                self.live.push(id);
                self.admit.push(true);
                return;
            }
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            let j = x % self.seen;
            if (j as usize) < self.cap {
                let victim = self.live[j as usize];
                self.admit[(victim - 1) as usize] = false;
                self.live[j as usize] = id;
                self.admit.push(true);
            } else {
                self.admit.push(false);
            }
        }
    }

    #[test]
    fn bounded_admission_matches_the_unbounded_oracle_bit_for_bit() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let cap = 64;
            let mut log = TraceLog::with_seed(1024, seed);
            log.reservoir_cap = cap;
            let mut oracle = OracleReservoir::new(cap, seed);
            for n in 0..5_000u64 {
                let id = log.alloc_trace();
                assert_eq!(id, n + 1);
                oracle.mint();
                // Every admission verdict the old code would give is
                // reproduced by the new membership set.
                assert_eq!(
                    log.live_set.contains(&id),
                    oracle.admit[n as usize],
                    "seed {seed}, trace {id}"
                );
            }
            assert_eq!(log.live, oracle.live, "seed {seed}: slot-exact match");
            let survivors: std::collections::BTreeSet<u64> = oracle
                .admit
                .iter()
                .enumerate()
                .filter_map(|(i, &a)| if a { Some(i as u64 + 1) } else { None })
                .collect();
            let live: std::collections::BTreeSet<u64> = log.live.iter().copied().collect();
            assert_eq!(live, survivors, "seed {seed}: final admissions match");
        }
    }

    #[test]
    fn admission_state_stays_bounded_by_the_reservoir() {
        let mut log = TraceLog::with_seed(1024, 3);
        log.reservoir_cap = 8;
        for _ in 0..100_000 {
            log.alloc_trace();
        }
        assert_eq!(log.live.len(), 8);
        assert_eq!(log.live_set.len(), 8);
    }

    #[test]
    fn small_runs_admit_every_trace() {
        // Below the reservoir floor nothing is thinned: the sampled trace
        // is the complete trace.
        let log = reservoir_log(7, MIN_RESERVOIR, 500);
        assert_eq!(log.sampled_out(), 0);
        assert_eq!(log.len(), 500);
    }

    #[test]
    fn merge_offset_remaps_ids_and_keeps_causal_links() {
        let mut a = TraceLog::new(64);
        let ta = a.alloc_trace();
        let root_a = TraceCtx::root(ta, a.alloc_span());
        a.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(0),
                ctx: root_a,
                label: "query",
            },
        );
        let mut b = TraceLog::new(64);
        let tb = b.alloc_trace();
        let root_b = TraceCtx::root(tb, b.alloc_span());
        b.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(9),
                ctx: root_b,
                label: "query",
            },
        );
        let send_b = root_b.child(b.alloc_span());
        b.record(
            t(2),
            TraceEvent::Send {
                node: NodeId(9),
                ctx: send_b,
                to: None,
                frame: "flood",
                bytes: 40,
            },
        );
        a.merge_offset(&b);
        let events = a.causal_events();
        assert_eq!(events.len(), 3);
        let traces: std::collections::BTreeSet<u64> = events.iter().map(|e| e.trace_id).collect();
        assert_eq!(
            traces.len(),
            2,
            "merged traces must not collide: {events:?}"
        );
        // b's chain survives the remap: its send still links under its
        // origin.
        let origin_b = events
            .iter()
            .find(|e| e.node == 9 && e.parent == 0)
            .expect("remapped origin");
        let send = events
            .iter()
            .find(|e| e.node == 9 && e.parent != 0)
            .unwrap();
        assert_eq!(send.parent, origin_b.span);
        assert_eq!(send.trace_id, origin_b.trace_id);
        // Fresh ids minted after the merge keep ascending past both logs.
        assert_eq!(a.alloc_trace(), 3);
        assert!(a.alloc_span() > 3);
    }

    #[test]
    fn merge_offset_sorts_by_time_and_respects_capacity() {
        let mut a = TraceLog::new(3);
        a.record(t(5), TraceEvent::Join { node: NodeId(0) });
        let mut b = TraceLog::new(3);
        b.record(t(1), TraceEvent::Join { node: NodeId(1) });
        b.record(t(9), TraceEvent::Join { node: NodeId(2) });
        b.record(t(2), TraceEvent::Join { node: NodeId(3) });
        a.merge_offset(&b);
        let order: Vec<u32> = a
            .events()
            .map(|(_, e)| match e {
                TraceEvent::Join { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        // Combined timeline is n1@1, n3@2, n0@5, n2@9; capacity 3 drops
        // the oldest.
        assert_eq!(order, vec![3, 0, 2]);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.offered(), 4);
    }

    #[test]
    fn cross_namespace_merge_preserves_ids_verbatim() {
        // Node 0's log mints a trace; node 1's log records a reception of
        // that trace under node 0's ids (as the wire delivers them). The
        // parent merges both into a base-0 accumulator: no remapping, and
        // the cross-process parent link must survive intact.
        let mut a = TraceLog::with_id_base(64, 0, node_id_base(0));
        let ta = a.alloc_trace();
        let root = TraceCtx::root(ta, a.alloc_span());
        a.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(0),
                ctx: root,
                label: "query",
            },
        );
        let send = root.child(a.alloc_span());
        a.record(
            t(1),
            TraceEvent::Send {
                node: NodeId(0),
                ctx: send,
                to: None,
                frame: "flood",
                bytes: 40,
            },
        );

        let mut b = TraceLog::with_id_base(64, 0, node_id_base(1));
        let recv = send.child(b.alloc_span());
        b.record(
            t(2),
            TraceEvent::Recv {
                node: NodeId(1),
                ctx: recv,
                from: NodeId(0),
                frame: "flood",
            },
        );

        let mut acc = TraceLog::new(64);
        acc.merge_offset(&a);
        acc.merge_offset(&b);
        let events = acc.causal_events();
        assert_eq!(events.len(), 3);
        assert!(
            events.iter().all(|e| e.trace_id == ta),
            "one trace spanning two logs: {events:?}"
        );
        let recv_ev = events.iter().find(|e| e.node == 1).expect("recv kept");
        assert_eq!(recv_ev.parent, send.span_seq, "wire parent link intact");
        assert_eq!(recv_ev.span, recv.span_seq);
    }
}
