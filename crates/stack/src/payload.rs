//! The unified application payload carried by the routing layer.
//!
//! The overlay ((re)configuration) and the content (query) layers each
//! define their own messages; the routing layer carries one payload type.
//! [`AppMsg`] is that union, and classifies every message into the paper's
//! figure categories.

use manet_aodv::Payload;
use manet_metrics::MsgKind;
use p2p_content::ContentMsg;
use p2p_core::{MsgCategory, OverlayMsg};

/// Any application-level message crossing the MANET.
#[derive(Clone, Debug, PartialEq)]
pub enum AppMsg {
    /// A (re)configuration-protocol message.
    Overlay(OverlayMsg),
    /// A search-protocol message.
    Content(ContentMsg),
}

impl AppMsg {
    /// The figure category this message counts toward.
    pub fn kind(&self) -> MsgKind {
        match self {
            AppMsg::Overlay(m) => match m.category() {
                MsgCategory::Connect => MsgKind::Connect,
                MsgCategory::Ping => MsgKind::Ping,
                MsgCategory::Pong => MsgKind::Pong,
            },
            AppMsg::Content(ContentMsg::Query { .. }) => MsgKind::Query,
            AppMsg::Content(ContentMsg::QueryHit { .. }) => MsgKind::QueryHit,
            AppMsg::Content(ContentMsg::FetchRequest { .. }) => MsgKind::Fetch,
            AppMsg::Content(ContentMsg::FileTransfer { .. }) => MsgKind::Transfer,
        }
    }
}

impl Payload for AppMsg {
    fn wire_size(&self) -> u32 {
        1 + match self {
            AppMsg::Overlay(m) => m.wire_size(),
            AppMsg::Content(m) => m.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::NodeId;
    use p2p_content::{FileId, QueryId};
    use p2p_core::ProbeKind;

    #[test]
    fn kinds_map_to_figure_categories() {
        assert_eq!(
            AppMsg::Overlay(OverlayMsg::Probe {
                kind: ProbeKind::Basic
            })
            .kind(),
            MsgKind::Connect
        );
        assert_eq!(
            AppMsg::Overlay(OverlayMsg::Ping { token: 1 }).kind(),
            MsgKind::Ping
        );
        assert_eq!(
            AppMsg::Overlay(OverlayMsg::Capture { qualifier: 3 }).kind(),
            MsgKind::Connect
        );
        let q = AppMsg::Content(ContentMsg::Query {
            id: QueryId {
                origin: NodeId(0),
                seq: 0,
            },
            file: FileId(0),
            ttl: 6,
            p2p_hops: 0,
        });
        assert_eq!(q.kind(), MsgKind::Query);
        let hit = AppMsg::Content(ContentMsg::QueryHit {
            id: QueryId {
                origin: NodeId(0),
                seq: 0,
            },
            file: FileId(0),
            p2p_hops: 2,
        });
        assert_eq!(hit.kind(), MsgKind::QueryHit);
    }

    #[test]
    fn wire_size_adds_discriminant() {
        let m = AppMsg::Overlay(OverlayMsg::Confirm);
        assert_eq!(m.wire_size(), 1 + OverlayMsg::Confirm.wire_size());
    }
}
