//! The Gnutella-like query engine (paper §7.1–7.2).
//!
//! A member node periodically searches for a file it does not hold. The
//! query fans out over the overlay references with `TTL = 6` p2p hops and
//! the paper's three traffic-control rules:
//!
//! 1. each node forwards or responds to a given query only once;
//! 2. a query is never forwarded back to the neighbor it came from;
//! 3. a query is never forwarded to its original source.
//!
//! A node holding the file answers the *requirer directly* with a QueryHit
//! (and still forwards the query). The requirer collects answers for 30 s,
//! then thinks for a uniform 15–45 s before the next query.

use std::collections::HashMap;

use manet_des::{NodeId, Rng, SimDuration, SimTime};

use crate::catalog::{Catalog, FileId};
use std::collections::BTreeSet;

/// Identifies a query network-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct QueryId {
    /// The requirer.
    pub origin: NodeId,
    /// Its per-node sequence number.
    pub seq: u32,
}

/// Content-layer wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentMsg {
    /// A search, forwarded peer-to-peer.
    Query {
        /// Network-wide query identity (also carries the requirer).
        id: QueryId,
        /// What is being searched.
        file: FileId,
        /// Remaining p2p hops (the paper's TTL, 6).
        ttl: u8,
        /// P2p hops travelled so far.
        p2p_hops: u8,
    },
    /// A direct answer from a holder to the requirer.
    QueryHit {
        /// The query being answered.
        id: QueryId,
        /// The file found.
        file: FileId,
        /// P2p hops the query had travelled when it reached the holder.
        p2p_hops: u8,
    },
    /// The requirer asks the chosen holder for the file itself ("the file
    /// properly said, which is transferred directly between the peers").
    FetchRequest {
        /// The satisfied query.
        id: QueryId,
        /// The file to transfer.
        file: FileId,
    },
    /// The bulk file payload.
    FileTransfer {
        /// The query being satisfied.
        id: QueryId,
        /// The file carried.
        file: FileId,
        /// Payload size in bytes (drives radio delay and energy).
        bytes: u32,
    },
}

impl ContentMsg {
    /// Encoded size in bytes for the radio model.
    pub fn wire_size(&self) -> u32 {
        match self {
            ContentMsg::Query { .. } => 16,
            ContentMsg::QueryHit { .. } => 14,
            ContentMsg::FetchRequest { .. } => 12,
            ContentMsg::FileTransfer { bytes, .. } => 12 + bytes,
        }
    }
}

/// A transmission the engine asks the stack to perform (always routed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CSend {
    /// Destination.
    pub to: NodeId,
    /// Message.
    pub msg: ContentMsg,
}

/// One answer observed by the requirer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Answer {
    /// Who holds the file.
    pub holder: NodeId,
    /// Ad-hoc hops the QueryHit travelled back (routing-layer metric).
    pub adhoc_hops: u8,
    /// P2p hops the query travelled to the holder.
    pub p2p_hops: u8,
}

/// The outcome of one finished query (its 30 s window closed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedQuery {
    /// What was searched.
    pub file: FileId,
    /// When the query was issued.
    pub issued_at: SimTime,
    /// All answers that arrived in the window.
    pub answers: Vec<Answer>,
}

/// Engine configuration (paper values as defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCfg {
    /// TTL in p2p hops (Table 2: 6).
    pub ttl: u8,
    /// How long the requirer waits for responses (30 s).
    pub response_wait: SimDuration,
    /// Think-time bounds between queries (uniform 15–45 s).
    pub think_min: SimDuration,
    /// Upper think-time bound.
    pub think_max: SimDuration,
    /// Sample query targets by popularity (Zipf) rather than uniformly.
    pub zipf_targets: bool,
    /// How long seen-query dedup entries are retained.
    pub seen_lifetime: SimDuration,
    /// After a successful query, download the file from the closest
    /// answerer (`None` disables the transfer phase; the paper's figures
    /// count control traffic only, so the default is off).
    pub fetch_bytes: Option<u32>,
}

impl Default for QueryCfg {
    fn default() -> Self {
        QueryCfg {
            ttl: 6,
            response_wait: SimDuration::from_secs(30),
            think_min: SimDuration::from_secs(15),
            think_max: SimDuration::from_secs(45),
            zipf_targets: true,
            seen_lifetime: SimDuration::from_secs(120),
            fetch_bytes: None,
        }
    }
}

/// Per-node query statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries this node issued.
    pub issued: u64,
    /// Queries it forwarded for others.
    pub forwarded: u64,
    /// QueryHits it generated as a holder.
    pub hits_served: u64,
    /// Queries dropped by the dedup rule.
    pub duplicates_dropped: u64,
    /// Files this node downloaded.
    pub files_fetched: u64,
    /// Files this node served to others.
    pub files_served: u64,
}

#[derive(Clone, Debug)]
struct Outstanding {
    id: QueryId,
    file: FileId,
    issued_at: SimTime,
    deadline: SimTime,
    answers: Vec<Answer>,
}

/// The per-member query engine.
#[derive(Clone, Debug)]
pub struct QueryEngine {
    id: NodeId,
    cfg: QueryCfg,
    catalog: Catalog,
    files: BTreeSet<FileId>,
    rng: Rng,
    seen: HashMap<QueryId, SimTime>,
    outstanding: Option<Outstanding>,
    next_query_at: SimTime,
    next_seq: u32,
    stats: QueryStats,
    started: bool,
}

impl QueryEngine {
    /// An engine for node `id` holding `files`.
    pub fn new(
        id: NodeId,
        cfg: QueryCfg,
        catalog: Catalog,
        files: BTreeSet<FileId>,
        rng: Rng,
    ) -> Self {
        catalog.validate();
        QueryEngine {
            id,
            cfg,
            catalog,
            files,
            rng,
            seen: HashMap::new(),
            outstanding: None,
            next_query_at: SimTime::MAX,
            next_seq: 0,
            stats: QueryStats::default(),
            started: false,
        }
    }

    /// Files this node holds.
    pub fn files(&self) -> &BTreeSet<FileId> {
        &self.files
    }

    /// Statistics so far.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Begin querying; the first query fires after a random think time so
    /// the population does not fire in phase.
    pub fn start(&mut self, now: SimTime) {
        self.started = true;
        self.next_query_at = now + self.think();
    }

    fn think(&mut self) -> SimDuration {
        let lo = self.cfg.think_min.ticks();
        let hi = self.cfg.think_max.ticks().max(lo + 1);
        SimDuration::from_ticks(self.rng.range_u64(lo, hi))
    }

    /// Earliest instant [`tick`](Self::tick) needs to run.
    pub fn next_wake(&self) -> SimTime {
        match &self.outstanding {
            Some(o) => o.deadline,
            None if self.started => self.next_query_at,
            None => SimTime::MAX,
        }
    }

    /// Timer entry point. `neighbors` is the node's current overlay
    /// reference list. Returns transmissions plus, when a response window
    /// just closed, the completed query for metric recording.
    pub fn tick(
        &mut self,
        now: SimTime,
        neighbors: &[NodeId],
    ) -> (Vec<CSend>, Option<CompletedQuery>) {
        let mut out = Vec::new();
        let mut completed = None;

        if let Some(o) = &self.outstanding {
            if now >= o.deadline {
                let o = self.outstanding.take().expect("just checked");
                // Optional transfer phase: download from the *closest*
                // answerer (fewest ad-hoc hops, ties to the smallest id).
                if self.cfg.fetch_bytes.is_some() {
                    if let Some(best) = o.answers.iter().min_by_key(|a| (a.adhoc_hops, a.holder)) {
                        out.push(CSend {
                            to: best.holder,
                            msg: ContentMsg::FetchRequest {
                                id: o.id,
                                file: o.file,
                            },
                        });
                    }
                }
                completed = Some(CompletedQuery {
                    file: o.file,
                    issued_at: o.issued_at,
                    answers: o.answers,
                });
                // "Then, the node waits for a random period between 15 to
                // 45 seconds to send the next query."
                self.next_query_at = now + self.think();
            }
        }

        if self.started && self.outstanding.is_none() && now >= self.next_query_at {
            // Time to issue a new query (if there's someone to ask and
            // something we lack).
            let target = if self.cfg.zipf_targets {
                self.catalog.sample_target(&self.files, &mut self.rng)
            } else {
                self.catalog
                    .sample_target_uniform(&self.files, &mut self.rng)
            };
            match (target, neighbors.is_empty()) {
                (Some(file), false) => {
                    let id = QueryId {
                        origin: self.id,
                        seq: self.next_seq,
                    };
                    self.next_seq += 1;
                    self.seen.insert(id, now + self.cfg.seen_lifetime);
                    self.stats.issued += 1;
                    for &nb in neighbors {
                        out.push(CSend {
                            to: nb,
                            msg: ContentMsg::Query {
                                id,
                                file,
                                ttl: self.cfg.ttl,
                                p2p_hops: 0,
                            },
                        });
                    }
                    self.outstanding = Some(Outstanding {
                        id,
                        file,
                        issued_at: now,
                        deadline: now + self.cfg.response_wait,
                        answers: Vec::new(),
                    });
                }
                _ => {
                    // Isolated or sated: try again after a think time.
                    self.next_query_at = now + self.think();
                }
            }
        }

        // Bound the dedup cache.
        if self.seen.len() > 1024 {
            self.seen.retain(|_, &mut exp| exp > now);
        }

        (out, completed)
    }

    /// A content message arrived from overlay neighbor-or-holder `src`,
    /// `adhoc_hops` radio hops away.
    pub fn on_msg(
        &mut self,
        now: SimTime,
        src: NodeId,
        adhoc_hops: u8,
        msg: &ContentMsg,
        neighbors: &[NodeId],
    ) -> Vec<CSend> {
        let mut out = Vec::new();
        match msg {
            ContentMsg::Query {
                id,
                file,
                ttl,
                p2p_hops,
            } => {
                if id.origin == self.id {
                    return out; // rule 3 backstop: our own query came back
                }
                if self.seen.contains_key(id) {
                    self.stats.duplicates_dropped += 1;
                    return out; // rule 1
                }
                self.seen.insert(*id, now + self.cfg.seen_lifetime);
                let hops_here = p2p_hops + 1;
                // Holder answers the requirer directly...
                if self.files.contains(file) {
                    self.stats.hits_served += 1;
                    out.push(CSend {
                        to: id.origin,
                        msg: ContentMsg::QueryHit {
                            id: *id,
                            file: *file,
                            p2p_hops: hops_here,
                        },
                    });
                }
                // ...and forwards the query regardless ("even if it has the
                // file"), rules 2 and 3 applied.
                if *ttl > 1 {
                    self.stats.forwarded += 1;
                    for &nb in neighbors {
                        if nb != src && nb != id.origin {
                            out.push(CSend {
                                to: nb,
                                msg: ContentMsg::Query {
                                    id: *id,
                                    file: *file,
                                    ttl: ttl - 1,
                                    p2p_hops: hops_here,
                                },
                            });
                        }
                    }
                }
            }
            ContentMsg::QueryHit { id, p2p_hops, .. } => {
                if let Some(o) = &mut self.outstanding {
                    if o.id == *id {
                        o.answers.push(Answer {
                            holder: src,
                            adhoc_hops,
                            p2p_hops: *p2p_hops,
                        });
                    }
                }
            }
            ContentMsg::FetchRequest { id, file } => {
                // Serve the file if we still hold it and the requirer is
                // the query's origin (no open-relay transfers).
                if self.files.contains(file) && id.origin == src {
                    if let Some(bytes) = self.cfg.fetch_bytes {
                        self.stats.files_served += 1;
                        out.push(CSend {
                            to: src,
                            msg: ContentMsg::FileTransfer {
                                id: *id,
                                file: *file,
                                bytes,
                            },
                        });
                    }
                }
            }
            ContentMsg::FileTransfer { id, file, .. } => {
                if id.origin == self.id {
                    // The download completes: the node now holds the file
                    // and can serve future queries for it.
                    self.files.insert(*file);
                    self.stats.files_fetched += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QueryCfg {
        QueryCfg::default()
    }

    fn engine(id: u32, files: &[u16], seed: u64) -> QueryEngine {
        QueryEngine::new(
            NodeId(id),
            cfg(),
            Catalog::default(),
            files.iter().map(|&f| FileId(f)).collect(),
            Rng::new(seed),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn q(origin: u32, seq: u32, file: u16, ttl: u8, hops: u8) -> ContentMsg {
        ContentMsg::Query {
            id: QueryId {
                origin: NodeId(origin),
                seq,
            },
            file: FileId(file),
            ttl,
            p2p_hops: hops,
        }
    }

    #[test]
    fn issues_query_to_all_neighbors_after_think_time() {
        let mut e = engine(0, &[], 1);
        e.start(t(0));
        let wake = e.next_wake();
        assert!(wake >= t(15) && wake <= t(45), "think time in [15,45]s");
        let (out, done) = e.tick(wake, &[NodeId(1), NodeId(2)]);
        assert!(done.is_none());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|s| matches!(
            s.msg,
            ContentMsg::Query {
                ttl: 6,
                p2p_hops: 0,
                ..
            }
        )));
        assert_eq!(e.stats().issued, 1);
    }

    #[test]
    fn window_closes_and_reports_answers() {
        let mut e = engine(0, &[], 2);
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[NodeId(1)]);
        let id = match out[0].msg {
            ContentMsg::Query { id, .. } => id,
            ref m => panic!("expected query, got {m:?}"),
        };
        // Two answers arrive.
        e.on_msg(
            wake + SimDuration::from_secs(2),
            NodeId(5),
            3,
            &ContentMsg::QueryHit {
                id,
                file: FileId(0),
                p2p_hops: 2,
            },
            &[],
        );
        e.on_msg(
            wake + SimDuration::from_secs(3),
            NodeId(7),
            1,
            &ContentMsg::QueryHit {
                id,
                file: FileId(0),
                p2p_hops: 1,
            },
            &[],
        );
        let deadline = e.next_wake();
        assert_eq!(deadline, wake + cfg().response_wait);
        let (_, done) = e.tick(deadline, &[NodeId(1)]);
        let done = done.expect("window closed");
        assert_eq!(done.answers.len(), 2);
        assert_eq!(done.answers[0].holder, NodeId(5));
        assert_eq!(done.answers[1].adhoc_hops, 1);
        // Next query scheduled 15-45 s later.
        let next = e.next_wake();
        assert!(next >= deadline + cfg().think_min && next <= deadline + cfg().think_max);
    }

    #[test]
    fn holder_answers_requirer_directly_and_still_forwards() {
        let mut e = engine(3, &[5], 3);
        e.start(t(0));
        let out = e.on_msg(
            t(1),
            NodeId(2),
            2,
            &q(0, 1, 5, 6, 1),
            &[NodeId(2), NodeId(4)],
        );
        // One hit to the origin + one forward (not back to 2, not to 0).
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            CSend {
                to: NodeId(0),
                msg: ContentMsg::QueryHit {
                    id: QueryId {
                        origin: NodeId(0),
                        seq: 1
                    },
                    file: FileId(5),
                    p2p_hops: 2
                }
            }
        );
        assert_eq!(out[1].to, NodeId(4));
        assert!(matches!(
            out[1].msg,
            ContentMsg::Query {
                ttl: 5,
                p2p_hops: 2,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_queries_dropped() {
        let mut e = engine(3, &[], 4);
        e.start(t(0));
        let first = e.on_msg(t(1), NodeId(2), 2, &q(0, 1, 5, 6, 1), &[NodeId(4)]);
        assert_eq!(first.len(), 1);
        let dup = e.on_msg(t(2), NodeId(4), 2, &q(0, 1, 5, 5, 2), &[NodeId(2)]);
        assert!(dup.is_empty(), "rule 1: forward once");
        assert_eq!(e.stats().duplicates_dropped, 1);
    }

    #[test]
    fn never_forwards_to_sender_or_origin() {
        let mut e = engine(3, &[], 5);
        e.start(t(0));
        let out = e.on_msg(
            t(1),
            NodeId(2),
            2,
            &q(0, 1, 5, 6, 1),
            &[NodeId(0), NodeId(2), NodeId(7)],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(7));
    }

    #[test]
    fn ttl_exhaustion_stops_forwarding() {
        let mut e = engine(3, &[], 6);
        e.start(t(0));
        let out = e.on_msg(t(1), NodeId(2), 2, &q(0, 1, 5, 1, 5), &[NodeId(7)]);
        assert!(out.is_empty(), "ttl 1 means this node is the last hop");
    }

    #[test]
    fn own_query_echo_ignored() {
        let mut e = engine(0, &[5], 7);
        e.start(t(0));
        let out = e.on_msg(t(1), NodeId(2), 2, &q(0, 9, 5, 6, 3), &[NodeId(2)]);
        assert!(out.is_empty());
        assert_eq!(e.stats().hits_served, 0);
    }

    #[test]
    fn late_or_foreign_hits_ignored() {
        let mut e = engine(0, &[], 8);
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[NodeId(1)]);
        let id = match out[0].msg {
            ContentMsg::Query { id, .. } => id,
            ref m => panic!("unexpected {m:?}"),
        };
        // A hit for some other query: ignored.
        e.on_msg(
            wake,
            NodeId(5),
            1,
            &ContentMsg::QueryHit {
                id: QueryId {
                    origin: NodeId(0),
                    seq: 999,
                },
                file: FileId(0),
                p2p_hops: 1,
            },
            &[],
        );
        let (_, done) = e.tick(wake + cfg().response_wait, &[NodeId(1)]);
        assert_eq!(done.unwrap().answers.len(), 0);
        let _ = id;
    }

    #[test]
    fn isolated_node_defers_queries() {
        let mut e = engine(0, &[], 9);
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[]);
        assert!(out.is_empty());
        assert_eq!(e.stats().issued, 0);
        assert!(e.next_wake() > wake, "retry scheduled");
    }

    #[test]
    fn node_owning_everything_never_queries() {
        let all: Vec<u16> = (0..20).collect();
        let mut e = engine(0, &all, 10);
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[NodeId(1)]);
        assert!(out.is_empty());
    }

    #[test]
    fn fetch_phase_downloads_from_closest_answerer() {
        let mut e = QueryEngine::new(
            NodeId(0),
            QueryCfg {
                fetch_bytes: Some(4096),
                ..cfg()
            },
            Catalog::default(),
            BTreeSet::new(),
            Rng::new(12),
        );
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[NodeId(1)]);
        let (id, file) = match out[0].msg {
            ContentMsg::Query { id, file, .. } => (id, file),
            ref m => panic!("unexpected {m:?}"),
        };
        // Two answers: node 7 is closer than node 5.
        e.on_msg(
            wake,
            NodeId(5),
            4,
            &ContentMsg::QueryHit {
                id,
                file,
                p2p_hops: 2,
            },
            &[],
        );
        e.on_msg(
            wake,
            NodeId(7),
            2,
            &ContentMsg::QueryHit {
                id,
                file,
                p2p_hops: 1,
            },
            &[],
        );
        let (sends, done) = e.tick(wake + cfg().response_wait, &[NodeId(1)]);
        assert!(done.is_some());
        assert_eq!(
            sends,
            vec![CSend {
                to: NodeId(7),
                msg: ContentMsg::FetchRequest { id, file }
            }]
        );
        // The transfer arrives: the node now holds (and would serve) the file.
        e.on_msg(
            wake + SimDuration::from_secs(31),
            NodeId(7),
            2,
            &ContentMsg::FileTransfer {
                id,
                file,
                bytes: 4096,
            },
            &[],
        );
        assert!(e.files().contains(&file));
        assert_eq!(e.stats().files_fetched, 1);
    }

    #[test]
    fn holder_serves_fetch_requests_only_to_the_query_origin() {
        let mut holder = QueryEngine::new(
            NodeId(3),
            QueryCfg {
                fetch_bytes: Some(1000),
                ..cfg()
            },
            Catalog::default(),
            [FileId(5)].into_iter().collect(),
            Rng::new(13),
        );
        holder.start(t(0));
        let id = QueryId {
            origin: NodeId(0),
            seq: 1,
        };
        let legit = holder.on_msg(
            t(1),
            NodeId(0),
            2,
            &ContentMsg::FetchRequest {
                id,
                file: FileId(5),
            },
            &[],
        );
        assert_eq!(
            legit,
            vec![CSend {
                to: NodeId(0),
                msg: ContentMsg::FileTransfer {
                    id,
                    file: FileId(5),
                    bytes: 1000
                }
            }]
        );
        // A third party replaying the fetch gets nothing.
        let replay = holder.on_msg(
            t(2),
            NodeId(9),
            2,
            &ContentMsg::FetchRequest {
                id,
                file: FileId(5),
            },
            &[],
        );
        assert!(replay.is_empty());
        // Nor does anyone get a file the holder lacks.
        let missing = holder.on_msg(
            t(3),
            NodeId(0),
            2,
            &ContentMsg::FetchRequest {
                id,
                file: FileId(9),
            },
            &[],
        );
        assert!(missing.is_empty());
        assert_eq!(holder.stats().files_served, 1);
    }

    #[test]
    fn fetch_disabled_by_default() {
        let mut e = engine(0, &[], 14);
        e.start(t(0));
        let wake = e.next_wake();
        let (out, _) = e.tick(wake, &[NodeId(1)]);
        let (id, file) = match out[0].msg {
            ContentMsg::Query { id, file, .. } => (id, file),
            ref m => panic!("unexpected {m:?}"),
        };
        e.on_msg(
            wake,
            NodeId(5),
            2,
            &ContentMsg::QueryHit {
                id,
                file,
                p2p_hops: 1,
            },
            &[],
        );
        let (sends, _) = e.tick(wake + cfg().response_wait, &[NodeId(1)]);
        assert!(sends.is_empty(), "no fetch without fetch_bytes");
    }

    #[test]
    fn think_times_vary() {
        let mut e = engine(0, &[], 11);
        e.start(t(0));
        let mut wakes = std::collections::BTreeSet::new();
        let mut now = t(0);
        for _ in 0..10 {
            now = e.next_wake().max(now);
            let _ = e.tick(now, &[]);
            wakes.insert(e.next_wake().ticks() - now.ticks());
        }
        assert!(wakes.len() > 3, "think times should vary: {wakes:?}");
    }
}
