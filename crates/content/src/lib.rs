//! # p2p-content — the search substrate
//!
//! The Gnutella-like data-search model the paper evaluates its overlays
//! with: a 20-file catalogue distributed by a Zipf law with 40 % maximum
//! frequency ([`Catalog`]), and the query protocol with TTL = 6 p2p hops,
//! once-only forwarding, and direct QueryHit responses ([`QueryEngine`]).
//!
//! The engine is deliberately overlay-agnostic: it takes the node's current
//! neighbor list as an argument on every call, so it works identically over
//! the Basic, Regular, Random and Hybrid overlays (in the Hybrid case a
//! slave's only neighbor is its master, which concentrates query traffic on
//! masters — Figs 11–12).

pub mod catalog;
pub mod query;
pub mod wire;

pub use catalog::{Catalog, FileId};
pub use query::{
    Answer, CSend, CompletedQuery, ContentMsg, QueryCfg, QueryEngine, QueryId, QueryStats,
};
pub use wire::{decode_content, encode_content};
