//! The Zipf file catalogue.
//!
//! "Different files are distributed in the network following a Zipf law with
//! maximum frequency MAXFREQ of 40%": the most popular file is present on
//! 40 % of the p2p members, the second on 40/2 = 20 %, the third on 40/3 %,
//! and so on — the classic `1/rank` profile with 20 distinct files.

use std::collections::BTreeSet;

use manet_des::Rng;

/// A file identity: rank 1 is the most popular.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u16);

impl FileId {
    /// 1-based popularity rank.
    pub fn rank(self) -> u16 {
        self.0 + 1
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.rank())
    }
}

/// The catalogue: how many files exist and how popular each is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Catalog {
    /// Number of distinct searchable files (paper: 20).
    pub n_files: u16,
    /// Frequency of the most popular file (paper: 0.40).
    pub max_freq: f64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            n_files: 20,
            max_freq: 0.40,
        }
    }
}

impl Catalog {
    /// Panics on out-of-domain parameters.
    pub fn validate(&self) {
        if let Some(p) = self.problem() {
            panic!("{p}");
        }
    }

    /// Non-panicking validation: the first out-of-domain parameter,
    /// rendered; `None` when the catalogue is sound.
    pub fn problem(&self) -> Option<String> {
        if self.n_files < 1 {
            return Some("need at least one file".into());
        }
        if !(self.max_freq > 0.0 && self.max_freq <= 1.0) {
            return Some("max_freq must be a fraction of the population".into());
        }
        None
    }

    /// Presence frequency of `file`: `max_freq / rank`.
    pub fn frequency(&self, file: FileId) -> f64 {
        assert!(file.0 < self.n_files, "file out of catalogue");
        self.max_freq / file.rank() as f64
    }

    /// All files, most popular first.
    pub fn files(&self) -> impl Iterator<Item = FileId> {
        (0..self.n_files).map(FileId)
    }

    /// Distribute files over `n_members` members: file of rank `r` lands on
    /// `round(n_members * max_freq / r)` distinct members, at least one,
    /// chosen uniformly. Returns the per-member file sets (indexed by
    /// member slot, not NodeId — the scenario maps slots to nodes).
    pub fn assign(&self, n_members: usize, rng: &mut Rng) -> Vec<BTreeSet<FileId>> {
        self.validate();
        let mut holdings = vec![BTreeSet::new(); n_members];
        if n_members == 0 {
            return holdings;
        }
        for file in self.files() {
            let count =
                ((n_members as f64 * self.frequency(file)).round() as usize).clamp(1, n_members);
            for member in rng.sample_indices(n_members, count) {
                holdings[member].insert(file);
            }
        }
        holdings
    }

    /// Sample a query target with popularity-proportional (Zipf) weights,
    /// excluding files in `owned` (nobody searches for what they already
    /// have). Returns `None` if the node owns the entire catalogue.
    pub fn sample_target(&self, owned: &BTreeSet<FileId>, rng: &mut Rng) -> Option<FileId> {
        let candidates: Vec<FileId> = self.files().filter(|f| !owned.contains(f)).collect();
        if candidates.is_empty() {
            return None;
        }
        let weights: Vec<f64> = candidates.iter().map(|f| 1.0 / f.rank() as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.f64() * total;
        for (f, w) in candidates.iter().zip(&weights) {
            x -= w;
            if x <= 0.0 {
                return Some(*f);
            }
        }
        candidates.last().copied()
    }

    /// Sample a query target uniformly (ablation mode).
    pub fn sample_target_uniform(&self, owned: &BTreeSet<FileId>, rng: &mut Rng) -> Option<FileId> {
        let candidates: Vec<FileId> = self.files().filter(|f| !owned.contains(f)).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(*rng.choose(&candidates))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_follow_zipf() {
        let c = Catalog::default();
        assert_eq!(c.frequency(FileId(0)), 0.40);
        assert_eq!(c.frequency(FileId(1)), 0.20);
        assert!((c.frequency(FileId(2)) - 0.40 / 3.0).abs() < 1e-12);
        assert!((c.frequency(FileId(19)) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn assignment_counts_match_frequencies() {
        let c = Catalog::default();
        let mut rng = Rng::new(1);
        let n = 100;
        let holdings = c.assign(n, &mut rng);
        let count_of = |f: FileId| holdings.iter().filter(|h| h.contains(&f)).count();
        assert_eq!(count_of(FileId(0)), 40);
        assert_eq!(count_of(FileId(1)), 20);
        assert_eq!(count_of(FileId(3)), 10);
        // Rarest file still exists somewhere.
        assert!(count_of(FileId(19)) >= 1);
    }

    #[test]
    fn every_file_present_even_in_small_networks() {
        let c = Catalog::default();
        let mut rng = Rng::new(2);
        let holdings = c.assign(10, &mut rng);
        for f in c.files() {
            assert!(
                holdings.iter().any(|h| h.contains(&f)),
                "{f} missing from a 10-member network"
            );
        }
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let c = Catalog::default();
        let a = c.assign(50, &mut Rng::new(9));
        let b = c.assign(50, &mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_sampling_prefers_popular_files() {
        let c = Catalog::default();
        let mut rng = Rng::new(3);
        let owned = BTreeSet::new();
        let mut counts = vec![0u32; c.n_files as usize];
        for _ in 0..20_000 {
            let f = c.sample_target(&owned, &mut rng).unwrap();
            counts[f.0 as usize] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[19]);
        // Rough 1/rank proportionality between ranks 1 and 2.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "rank1/rank2 ratio {ratio}");
    }

    #[test]
    fn sampling_respects_exclusions() {
        let c = Catalog::default();
        let mut rng = Rng::new(4);
        let owned: BTreeSet<FileId> = c.files().take(19).collect();
        for _ in 0..100 {
            assert_eq!(c.sample_target(&owned, &mut rng), Some(FileId(19)));
        }
        let all: BTreeSet<FileId> = c.files().collect();
        assert_eq!(c.sample_target(&all, &mut rng), None);
        assert_eq!(c.sample_target_uniform(&all, &mut rng), None);
    }

    #[test]
    fn uniform_sampling_is_flat() {
        let c = Catalog::default();
        let mut rng = Rng::new(5);
        let owned = BTreeSet::new();
        let mut counts = vec![0u32; c.n_files as usize];
        for _ in 0..20_000 {
            let f = c.sample_target_uniform(&owned, &mut rng).unwrap();
            counts[f.0 as usize] += 1;
        }
        let expect = 20_000.0 / 20.0;
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                (n as f64 - expect).abs() < expect * 0.2,
                "file {i} count {n} too far from {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_max_freq_rejected() {
        Catalog {
            n_files: 20,
            max_freq: 1.5,
        }
        .validate();
    }
}
