//! Byte-exact codec for [`ContentMsg`].
//!
//! One tag byte per variant, little-endian fields in declaration order;
//! a [`QueryId`] encodes as origin + sequence. [`FileTransfer`]'s
//! `bytes` field is a *modelled* payload size, so the codec carries the
//! number, not that many bytes — the real-time substrate moves the same
//! control traffic the paper's figures count, not synthetic bulk.
//! Corruption decodes to a typed [`WireError`], never a panic.
//!
//! [`FileTransfer`]: ContentMsg::FileTransfer

use manet_des::wire::{put_u16, put_u32, put_u8};
use manet_des::{NodeId, WireError, WireReader};

use crate::catalog::FileId;
use crate::query::{ContentMsg, QueryId};

const TAG_QUERY: u8 = 1;
const TAG_QUERY_HIT: u8 = 2;
const TAG_FETCH_REQUEST: u8 = 3;
const TAG_FILE_TRANSFER: u8 = 4;

fn put_query_id(buf: &mut Vec<u8>, id: QueryId) {
    put_u32(buf, id.origin.0);
    put_u32(buf, id.seq);
}

fn read_query_id(r: &mut WireReader<'_>) -> Result<QueryId, WireError> {
    Ok(QueryId {
        origin: NodeId(r.u32()?),
        seq: r.u32()?,
    })
}

/// Append the encoded message.
pub fn encode_content(msg: &ContentMsg, buf: &mut Vec<u8>) {
    match msg {
        ContentMsg::Query {
            id,
            file,
            ttl,
            p2p_hops,
        } => {
            put_u8(buf, TAG_QUERY);
            put_query_id(buf, *id);
            put_u16(buf, file.0);
            put_u8(buf, *ttl);
            put_u8(buf, *p2p_hops);
        }
        ContentMsg::QueryHit { id, file, p2p_hops } => {
            put_u8(buf, TAG_QUERY_HIT);
            put_query_id(buf, *id);
            put_u16(buf, file.0);
            put_u8(buf, *p2p_hops);
        }
        ContentMsg::FetchRequest { id, file } => {
            put_u8(buf, TAG_FETCH_REQUEST);
            put_query_id(buf, *id);
            put_u16(buf, file.0);
        }
        ContentMsg::FileTransfer { id, file, bytes } => {
            put_u8(buf, TAG_FILE_TRANSFER);
            put_query_id(buf, *id);
            put_u16(buf, file.0);
            put_u32(buf, *bytes);
        }
    }
}

/// Decode one message written by [`encode_content`].
pub fn decode_content(r: &mut WireReader<'_>) -> Result<ContentMsg, WireError> {
    match r.u8()? {
        TAG_QUERY => Ok(ContentMsg::Query {
            id: read_query_id(r)?,
            file: FileId(r.u16()?),
            ttl: r.u8()?,
            p2p_hops: r.u8()?,
        }),
        TAG_QUERY_HIT => Ok(ContentMsg::QueryHit {
            id: read_query_id(r)?,
            file: FileId(r.u16()?),
            p2p_hops: r.u8()?,
        }),
        TAG_FETCH_REQUEST => Ok(ContentMsg::FetchRequest {
            id: read_query_id(r)?,
            file: FileId(r.u16()?),
        }),
        TAG_FILE_TRANSFER => Ok(ContentMsg::FileTransfer {
            id: read_query_id(r)?,
            file: FileId(r.u16()?),
            bytes: r.u32()?,
        }),
        tag => Err(WireError::BadTag {
            what: "content msg",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qid(origin: u32, seq: u32) -> QueryId {
        QueryId {
            origin: NodeId(origin),
            seq,
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let msgs = [
            ContentMsg::Query {
                id: qid(3, 9),
                file: FileId(17),
                ttl: 6,
                p2p_hops: 2,
            },
            ContentMsg::QueryHit {
                id: qid(0, u32::MAX),
                file: FileId(0),
                p2p_hops: 6,
            },
            ContentMsg::FetchRequest {
                id: qid(1, 1),
                file: FileId(u16::MAX),
            },
            ContentMsg::FileTransfer {
                id: qid(2, 7),
                file: FileId(4),
                bytes: 1 << 20,
            },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            encode_content(&msg, &mut buf);
            let mut r = WireReader::new(&buf);
            assert_eq!(decode_content(&mut r), Ok(msg.clone()), "{msg:?}");
            assert_eq!(r.finish(), Ok(()));
        }
    }

    #[test]
    fn corruption_is_typed() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(
            decode_content(&mut r),
            Err(WireError::BadTag {
                what: "content msg",
                tag: 9
            })
        );
        let mut r = WireReader::new(&[TAG_QUERY, 1, 2]);
        assert!(matches!(
            decode_content(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }
}
