//! # manet-radio — range-based wireless medium
//!
//! The physical layer of the MANET substrate. The model is the one the
//! paper's metrics are sensitive to, and no more:
//!
//! * **unit-disc connectivity** — a frame transmitted at position `p`
//!   reaches exactly the nodes within `range` metres (the paper: 10 m);
//! * **per-frame latency** — serialization at the configured bitrate plus a
//!   CSMA-like uniform random jitter that desynchronizes simultaneous
//!   rebroadcasts (ns-2's 802.11 backoff plays this role for the authors);
//! * **optional iid frame loss** — for robustness/ablation scenarios;
//! * **energy accounting** — per-byte + per-frame costs for transmit and
//!   receive, the dominant terms the paper's "network lifetime" argument
//!   rests on.
//!
//! A fuzzy coverage edge ([`RadioCfg::fuzz`]) optionally replaces the hard
//! unit disc for the paper's wireless-coverage sweeps. What is deliberately
//! *not* modelled: carrier sensing with collisions, capture effects,
//! fading. At pedestrian speeds and the paper's message rates the network
//! is far from saturation, and the reported metrics (message counts per
//! node, hop distances) do not depend on those effects. DESIGN.md records
//! this substitution.

pub mod config;
pub mod energy;
pub mod medium;
pub mod stats;

pub use config::RadioCfg;
pub use energy::EnergyMeter;
pub use medium::{LinkFaults, Medium, Reception, TxScratch};
pub use stats::PhyStats;
