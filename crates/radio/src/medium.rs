//! The shared medium: who hears a transmission, and when.
//!
//! [`Medium`] is a *calculator*, not an event owner: the world asks it which
//! nodes receive a frame and with what latency, then schedules the delivery
//! events itself. Keeping the medium stateless (apart from the config)
//! preserves the layering — all mutable state lives in the world and in the
//! per-node protocol machines.

use manet_des::{NodeId, Rng, SimDuration};
use manet_geom::{Point, SpatialGrid};

use crate::config::RadioCfg;

/// Transient link impairment injected on top of the configured radio
/// behaviour.
///
/// The fault layer (burst loss, link flaps, jitter spikes — see
/// `manet-sim`'s fault plan) owns the *schedule* of impairments; the medium
/// only needs to know what is in force for the transmission being planned,
/// so it stays a stateless calculator. Extra loss is drawn *after* the
/// configured loss/fuzz processes and only when non-zero, so a `NONE` value
/// consumes exactly the same RNG draws as the pre-fault medium — bit-for-bit
/// compatibility for fault-free runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Additional iid per-reception loss probability in `[0, 1]`.
    pub extra_loss: f64,
    /// Additional fixed latency on every transmission (jitter spike).
    pub extra_delay: SimDuration,
}

impl LinkFaults {
    /// No impairment: the medium behaves exactly as configured.
    pub const NONE: LinkFaults = LinkFaults {
        extra_loss: 0.0,
        extra_delay: SimDuration::ZERO,
    };

    /// True when this value injects nothing.
    pub fn is_none(&self) -> bool {
        self.extra_loss == 0.0 && self.extra_delay == SimDuration::ZERO
    }

    /// Panic on out-of-range parameters.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.extra_loss),
            "extra_loss must be a probability, got {}",
            self.extra_loss
        );
    }
}

/// Outcome of one planned reception.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reception {
    /// The receiving node.
    pub to: NodeId,
    /// Delay from the start of transmission to delivery at `to`.
    pub after: SimDuration,
    /// Whether the iid loss process destroyed this reception. The world
    /// still counts lost frames in PHY stats but does not deliver them.
    pub lost: bool,
}

/// Caller-owned scratch buffers for transmission planning.
///
/// [`Medium::plan_broadcast`] runs once per transmission on the simulation
/// hot path; routing all of its temporary storage through a scratch value
/// the caller keeps alive (the world owns one) means steady-state planning
/// performs zero heap allocations — buffers grow to the neighborhood size
/// once and are reused for every subsequent frame.
#[derive(Clone, Debug, Default)]
pub struct TxScratch {
    /// In-range receiver keys and positions (planning-internal).
    keys: Vec<(u32, Point)>,
    /// Receptions planned by the most recent [`Medium::plan_broadcast`].
    pub receptions: Vec<Reception>,
    /// Cumulative receptions planned across every broadcast through this
    /// scratch (deterministic; sampled by the observability layer).
    pub planned_total: u64,
    /// Cumulative planned receptions the loss process destroyed.
    pub lost_total: u64,
}

/// The wireless medium calculator.
#[derive(Clone, Debug)]
pub struct Medium {
    cfg: RadioCfg,
}

impl Medium {
    /// Create a medium with the given configuration (validated here).
    pub fn new(cfg: RadioCfg) -> Self {
        cfg.validate();
        Medium { cfg }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &RadioCfg {
        &self.cfg
    }

    /// Latency of one transmission: serialization + fixed hop latency +
    /// uniform jitter + any injected delay spike. The jitter draw is
    /// per-transmission (all receivers of one broadcast hear it at the same
    /// instant, as in the real world).
    pub fn tx_delay(&self, bytes: u32, rng: &mut Rng, faults: LinkFaults) -> SimDuration {
        let jitter = SimDuration::from_ticks(rng.below(self.cfg.max_jitter.ticks().max(1)));
        self.cfg.serialization_delay(bytes) + self.cfg.hop_latency + jitter + faults.extra_delay
    }

    /// Plan the receptions of a frame transmitted from `pos` by `sender`,
    /// into `scratch.receptions`.
    ///
    /// `grid` holds current node positions. Receivers are every node within
    /// range except the sender itself; each gets the same propagation delay,
    /// with loss drawn independently per receiver. RNG draws happen in
    /// ascending receiver-key order, independent of grid traversal order, so
    /// results are deterministic for a given seed.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_broadcast(
        &self,
        grid: &SpatialGrid,
        sender: NodeId,
        pos: Point,
        bytes: u32,
        rng: &mut Rng,
        faults: LinkFaults,
        scratch: &mut TxScratch,
    ) {
        scratch.receptions.clear();
        let after = self.tx_delay(bytes, rng, faults);
        grid.query_range_with_pos(pos, self.cfg.range_m, sender.0, &mut scratch.keys);
        for &(key, rx_pos) in &scratch.keys {
            let mut lost = rng.chance(self.cfg.loss_prob);
            if !lost && self.cfg.fuzz > 0.0 {
                lost = !rng.chance(self.cfg.reception_prob(rx_pos.distance(pos)));
            }
            if !lost && faults.extra_loss > 0.0 {
                lost = rng.chance(faults.extra_loss);
            }
            scratch.planned_total += 1;
            scratch.lost_total += lost as u64;
            scratch.receptions.push(Reception {
                to: NodeId(key),
                after,
                lost,
            });
        }
    }

    /// Plan a link-layer unicast from `pos` to `dst`.
    ///
    /// Returns `None` when `dst` is out of range (or unknown to the grid) —
    /// the caller treats that as a link break, which is how the routing layer
    /// learns about mobility (standing in for a missing 802.11 ACK).
    pub fn plan_unicast(
        &self,
        grid: &SpatialGrid,
        pos: Point,
        dst: NodeId,
        bytes: u32,
        rng: &mut Rng,
        faults: LinkFaults,
    ) -> Option<Reception> {
        let dst_pos = grid.position(dst.0)?;
        if !pos.within(dst_pos, self.cfg.range_m) {
            return None;
        }
        let after = self.tx_delay(bytes, rng, faults);
        let mut lost = rng.chance(self.cfg.loss_prob);
        if !lost && self.cfg.fuzz > 0.0 {
            lost = !rng.chance(self.cfg.reception_prob(dst_pos.distance(pos)));
        }
        if !lost && faults.extra_loss > 0.0 {
            lost = rng.chance(faults.extra_loss);
        }
        Some(Reception {
            to: dst,
            after,
            lost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Rect;

    fn setup() -> (Medium, SpatialGrid, Rng) {
        let medium = Medium::new(RadioCfg::paper());
        let grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        (medium, grid, Rng::new(7))
    }

    #[test]
    fn broadcast_reaches_exactly_in_range_nodes() {
        let (m, mut grid, mut rng) = setup();
        grid.upsert(0, Point::new(50.0, 50.0)); // sender
        grid.upsert(1, Point::new(55.0, 50.0)); // in range
        grid.upsert(2, Point::new(59.9, 50.0)); // in range
        grid.upsert(3, Point::new(61.0, 50.0)); // out of range
        let mut tx = TxScratch::default();
        m.plan_broadcast(
            &grid,
            NodeId(0),
            Point::new(50.0, 50.0),
            64,
            &mut rng,
            LinkFaults::NONE,
            &mut tx,
        );
        let ids: Vec<u32> = tx.receptions.iter().map(|r| r.to.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(
            tx.receptions.iter().all(|r| !r.lost),
            "no loss at loss_prob = 0"
        );
    }

    #[test]
    fn broadcast_excludes_sender() {
        let (m, mut grid, mut rng) = setup();
        grid.upsert(0, Point::new(50.0, 50.0));
        let mut tx = TxScratch::default();
        m.plan_broadcast(
            &grid,
            NodeId(0),
            Point::new(50.0, 50.0),
            64,
            &mut rng,
            LinkFaults::NONE,
            &mut tx,
        );
        assert!(tx.receptions.is_empty());
    }

    #[test]
    fn all_receivers_share_one_delay() {
        let (m, mut grid, mut rng) = setup();
        grid.upsert(0, Point::new(50.0, 50.0));
        for k in 1..=5 {
            grid.upsert(k, Point::new(50.0 + k as f64, 50.0));
        }
        let mut tx = TxScratch::default();
        m.plan_broadcast(
            &grid,
            NodeId(0),
            Point::new(50.0, 50.0),
            64,
            &mut rng,
            LinkFaults::NONE,
            &mut tx,
        );
        assert_eq!(tx.receptions.len(), 5);
        let d = tx.receptions[0].after;
        assert!(tx.receptions.iter().all(|r| r.after == d));
        assert!(d >= m.cfg().hop_latency, "delay includes fixed latency");
    }

    #[test]
    fn unicast_in_and_out_of_range() {
        let (m, mut grid, mut rng) = setup();
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(58.0, 50.0));
        grid.upsert(2, Point::new(90.0, 50.0));
        let src = Point::new(50.0, 50.0);
        assert!(m
            .plan_unicast(&grid, src, NodeId(1), 64, &mut rng, LinkFaults::NONE)
            .is_some());
        assert!(m
            .plan_unicast(&grid, src, NodeId(2), 64, &mut rng, LinkFaults::NONE)
            .is_none());
        assert!(
            m.plan_unicast(&grid, src, NodeId(99), 64, &mut rng, LinkFaults::NONE)
                .is_none(),
            "unknown node is a link break"
        );
    }

    #[test]
    fn loss_probability_respected() {
        let cfg = RadioCfg {
            loss_prob: 0.5,
            ..RadioCfg::paper()
        };
        let m = Medium::new(cfg);
        let mut grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(51.0, 50.0));
        let mut rng = Rng::new(5);
        let mut lost = 0;
        let n = 10_000;
        let mut tx = TxScratch::default();
        for _ in 0..n {
            m.plan_broadcast(
                &grid,
                NodeId(0),
                Point::new(50.0, 50.0),
                64,
                &mut rng,
                LinkFaults::NONE,
                &mut tx,
            );
            if tx.receptions[0].lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn fuzzy_edge_loses_some_receptions() {
        let cfg = RadioCfg {
            fuzz: 0.5,
            ..RadioCfg::paper()
        };
        let m = Medium::new(cfg);
        let mut grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(52.0, 50.0)); // solid core
        grid.upsert(2, Point::new(57.5, 50.0)); // mid-edge: p = 0.5
        let mut rng = Rng::new(8);
        let (mut core_lost, mut edge_lost) = (0u32, 0u32);
        let n = 4000;
        let mut tx = TxScratch::default();
        for _ in 0..n {
            m.plan_broadcast(
                &grid,
                NodeId(0),
                Point::new(50.0, 50.0),
                64,
                &mut rng,
                LinkFaults::NONE,
                &mut tx,
            );
            for r in &tx.receptions {
                match r.to.0 {
                    1 if r.lost => core_lost += 1,
                    2 if r.lost => edge_lost += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(core_lost, 0, "solid core never loses");
        let rate = edge_lost as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "mid-edge loss rate {rate}");
    }

    #[test]
    fn jitter_varies_but_is_bounded() {
        let (m, _, mut rng) = setup();
        let base = m.cfg().serialization_delay(64) + m.cfg().hop_latency;
        let max = base + m.cfg().max_jitter;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let d = m.tx_delay(64, &mut rng, LinkFaults::NONE);
            assert!(d >= base && d < max);
            distinct.insert(d.ticks());
        }
        assert!(distinct.len() > 10, "jitter should vary");
    }

    #[test]
    fn fault_free_plans_match_pre_fault_rng_stream() {
        // LinkFaults::NONE must not consume extra RNG draws: two media fed
        // from identically-seeded RNGs stay in lockstep whether or not the
        // NONE value is threaded through.
        let (m, mut grid, _) = setup();
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(55.0, 50.0));
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let mut tx = TxScratch::default();
        for _ in 0..50 {
            m.plan_broadcast(
                &grid,
                NodeId(0),
                Point::new(50.0, 50.0),
                64,
                &mut a,
                LinkFaults::NONE,
                &mut tx,
            );
            m.plan_unicast(
                &grid,
                Point::new(50.0, 50.0),
                NodeId(1),
                64,
                &mut b,
                LinkFaults::NONE,
            );
            m.plan_unicast(
                &grid,
                Point::new(50.0, 50.0),
                NodeId(1),
                64,
                &mut a,
                LinkFaults::NONE,
            );
            m.plan_broadcast(
                &grid,
                NodeId(0),
                Point::new(50.0, 50.0),
                64,
                &mut b,
                LinkFaults::NONE,
                &mut tx,
            );
        }
        assert_eq!(a.next_u64(), b.next_u64(), "streams diverged");
    }

    #[test]
    fn extra_loss_is_injected_on_top_of_config() {
        let (m, mut grid, mut rng) = setup(); // loss_prob = 0, fuzz = 0
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(51.0, 50.0));
        let faults = LinkFaults {
            extra_loss: 0.5,
            extra_delay: SimDuration::ZERO,
        };
        let mut lost = 0;
        let n = 10_000;
        let mut tx = TxScratch::default();
        for _ in 0..n {
            m.plan_broadcast(
                &grid,
                NodeId(0),
                Point::new(50.0, 50.0),
                64,
                &mut rng,
                faults,
                &mut tx,
            );
            if tx.receptions[0].lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.5).abs() < 0.02,
            "observed injected loss rate {rate}"
        );
    }

    #[test]
    fn extra_delay_shifts_every_transmission() {
        let (m, mut grid, mut rng) = setup();
        grid.upsert(0, Point::new(50.0, 50.0));
        grid.upsert(1, Point::new(51.0, 50.0));
        let spike = SimDuration::from_millis(250);
        let faults = LinkFaults {
            extra_loss: 0.0,
            extra_delay: spike,
        };
        let base = m.cfg().serialization_delay(64) + m.cfg().hop_latency;
        let r = m
            .plan_unicast(
                &grid,
                Point::new(50.0, 50.0),
                NodeId(1),
                64,
                &mut rng,
                faults,
            )
            .expect("in range");
        assert!(
            r.after >= base + spike,
            "delay spike not applied: {:?}",
            r.after
        );
    }

    #[test]
    #[should_panic(expected = "extra_loss must be a probability")]
    fn link_faults_validate_rejects_bad_loss() {
        LinkFaults {
            extra_loss: 1.5,
            extra_delay: SimDuration::ZERO,
        }
        .validate();
    }
}
