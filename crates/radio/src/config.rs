//! Radio parameters.

use manet_des::{Lookahead, SimDuration};

/// Physical-layer configuration shared by all nodes of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioCfg {
    /// Transmission range in metres (the paper: 10 m).
    pub range_m: f64,
    /// Link bitrate in bits/s; sets the serialization delay of a frame.
    /// Default 1 Mb/s, a conservative figure for 2003-era 802.11.
    pub bitrate_bps: f64,
    /// Fixed per-hop processing/propagation latency.
    pub hop_latency: SimDuration,
    /// Upper bound of the uniform CSMA-like jitter added to every
    /// transmission, desynchronizing simultaneous rebroadcasts.
    pub max_jitter: SimDuration,
    /// Probability that any given reception is lost (iid). 0 by default;
    /// raised in robustness ablations.
    pub loss_prob: f64,
    /// Edge softness of the coverage disc, in `[0, 1)`. 0 models the
    /// classic unit disc; with `fuzz > 0` reception is certain only within
    /// `range_m * (1 - fuzz)` and decays linearly to zero probability at
    /// `range_m` — the "wireless coverage" axis of the paper's future work.
    pub fuzz: f64,
    /// Energy drawn per transmitted byte, in millijoules.
    pub tx_mj_per_byte: f64,
    /// Fixed energy per transmission (electronics ramp-up), in millijoules.
    pub tx_mj_base: f64,
    /// Energy drawn per received byte, in millijoules.
    pub rx_mj_per_byte: f64,
    /// Fixed energy per reception, in millijoules.
    pub rx_mj_base: f64,
}

impl RadioCfg {
    /// The paper's scenario: 10 m range. Energy figures follow the classic
    /// WaveLAN measurements (~1.9 W tx / 1.5 W rx at 2 Mb/s) scaled per byte.
    pub fn paper() -> Self {
        RadioCfg {
            range_m: 10.0,
            bitrate_bps: 1_000_000.0,
            hop_latency: SimDuration::from_millis(1),
            max_jitter: SimDuration::from_millis(10),
            loss_prob: 0.0,
            fuzz: 0.0,
            tx_mj_per_byte: 0.008,
            tx_mj_base: 0.04,
            rx_mj_per_byte: 0.006,
            rx_mj_base: 0.03,
        }
    }

    /// Non-panicking validation: the first parameter outside its physical
    /// domain, rendered; `None` when the configuration is sound.
    pub fn problem(&self) -> Option<String> {
        if self.range_m <= 0.0 || self.range_m.is_nan() {
            return Some(format!("range must be positive, got {}", self.range_m));
        }
        if self.bitrate_bps <= 0.0 || self.bitrate_bps.is_nan() {
            return Some(format!(
                "bitrate must be positive, got {}",
                self.bitrate_bps
            ));
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return Some(format!(
                "loss_prob must be a probability, got {}",
                self.loss_prob
            ));
        }
        if !(0.0..1.0).contains(&self.fuzz) {
            return Some(format!("fuzz must be in [0, 1), got {}", self.fuzz));
        }
        if !(self.tx_mj_per_byte >= 0.0
            && self.tx_mj_base >= 0.0
            && self.rx_mj_per_byte >= 0.0
            && self.rx_mj_base >= 0.0)
        {
            return Some("energy costs must be non-negative".into());
        }
        None
    }

    /// Panics if any parameter is out of its physical domain.
    pub fn validate(&self) {
        if let Some(p) = self.problem() {
            panic!("{p}");
        }
    }

    /// Serialization delay of a frame of `bytes` at the configured bitrate.
    pub fn serialization_delay(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bitrate_bps)
    }

    /// The conservative-parallel synchronization slack this radio admits:
    /// the minimum time any transmission needs to cross the air. Every
    /// frame pays at least the serialization delay of a 1-byte frame plus
    /// the fixed hop latency before it can arrive anywhere (real frames
    /// are >= 2 bytes and jitter only adds), so no event at time `t` can
    /// influence another node — or another shard — before `t + lookahead`.
    pub fn lookahead(&self) -> Lookahead {
        Lookahead(self.serialization_delay(1) + self.hop_latency)
    }

    /// Reception probability at `dist` metres: 1 inside the solid core,
    /// linear decay across the fuzzy edge, 0 beyond `range_m`.
    pub fn reception_prob(&self, dist: f64) -> f64 {
        if dist > self.range_m {
            return 0.0;
        }
        let solid = self.range_m * (1.0 - self.fuzz);
        if dist <= solid {
            1.0
        } else {
            // fuzz > 0 here, so the edge has positive width.
            1.0 - (dist - solid) / (self.range_m - solid)
        }
    }
}

impl Default for RadioCfg {
    fn default() -> Self {
        RadioCfg::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        RadioCfg::paper().validate();
        assert_eq!(RadioCfg::paper().range_m, 10.0);
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = RadioCfg::paper();
        let d1 = cfg.serialization_delay(125); // 1000 bits at 1 Mb/s = 1 ms
        assert_eq!(d1, SimDuration::from_millis(1));
        let d2 = cfg.serialization_delay(250);
        assert_eq!(d2, SimDuration::from_millis(2));
    }

    #[test]
    fn lookahead_is_min_over_the_air_latency() {
        let cfg = RadioCfg::paper();
        // 1 byte at 1 Mb/s = 8 us, plus 1 ms hop latency.
        assert_eq!(cfg.lookahead().ticks(), 8 + 1000);
        assert!(cfg.lookahead().is_usable());
    }

    #[test]
    fn reception_prob_profile() {
        let solid = RadioCfg::paper();
        assert_eq!(solid.reception_prob(0.0), 1.0);
        assert_eq!(
            solid.reception_prob(10.0),
            1.0,
            "unit disc: certain at range"
        );
        assert_eq!(solid.reception_prob(10.01), 0.0);
        let fuzzy = RadioCfg {
            fuzz: 0.5,
            ..RadioCfg::paper()
        };
        assert_eq!(fuzzy.reception_prob(5.0), 1.0, "solid core");
        assert!((fuzzy.reception_prob(7.5) - 0.5).abs() < 1e-12, "mid-edge");
        assert!(fuzzy.reception_prob(9.9) < 0.05);
        assert_eq!(fuzzy.reception_prob(12.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fuzz")]
    fn invalid_fuzz_rejected() {
        let cfg = RadioCfg {
            fuzz: 1.0,
            ..RadioCfg::paper()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rejected() {
        let cfg = RadioCfg {
            loss_prob: 1.5,
            ..RadioCfg::paper()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "range")]
    fn invalid_range_rejected() {
        let cfg = RadioCfg {
            range_m: 0.0,
            ..RadioCfg::paper()
        };
        cfg.validate();
    }
}
