//! Per-node energy accounting.
//!
//! The paper's central efficiency argument is that indiscriminate broadcast
//! drains batteries: "each message transmitted or received consumes energy,
//! which is a restrict resource". The meter charges a cost per transmitted
//! and received byte (plus fixed per-frame overheads) against a battery
//! budget, giving the network-lifetime estimates the extension experiments
//! report.

use crate::config::RadioCfg;

/// Tracks the remaining battery of one node, in millijoules.
#[derive(Clone, Copy, Debug)]
pub struct EnergyMeter {
    capacity_mj: f64,
    spent_tx_mj: f64,
    spent_rx_mj: f64,
}

impl EnergyMeter {
    /// A meter with `capacity_mj` millijoules of budget. Use
    /// [`EnergyMeter::unlimited`] when lifetime is not under study.
    pub fn new(capacity_mj: f64) -> Self {
        assert!(capacity_mj > 0.0, "battery capacity must be positive");
        EnergyMeter {
            capacity_mj,
            spent_tx_mj: 0.0,
            spent_rx_mj: 0.0,
        }
    }

    /// A meter that never depletes (capacity = +inf) but still accumulates
    /// spending, so consumption metrics remain available.
    pub fn unlimited() -> Self {
        EnergyMeter {
            capacity_mj: f64::INFINITY,
            spent_tx_mj: 0.0,
            spent_rx_mj: 0.0,
        }
    }

    /// Charge one transmission of `bytes`.
    pub fn charge_tx(&mut self, cfg: &RadioCfg, bytes: u32) {
        self.spent_tx_mj += cfg.tx_mj_base + cfg.tx_mj_per_byte * bytes as f64;
    }

    /// Charge one reception of `bytes`.
    pub fn charge_rx(&mut self, cfg: &RadioCfg, bytes: u32) {
        self.spent_rx_mj += cfg.rx_mj_base + cfg.rx_mj_per_byte * bytes as f64;
    }

    /// Total energy spent so far, millijoules.
    pub fn spent_mj(&self) -> f64 {
        self.spent_tx_mj + self.spent_rx_mj
    }

    /// Energy spent transmitting, millijoules.
    pub fn spent_tx_mj(&self) -> f64 {
        self.spent_tx_mj
    }

    /// Energy spent receiving, millijoules.
    pub fn spent_rx_mj(&self) -> f64 {
        self.spent_rx_mj
    }

    /// Remaining budget, millijoules (never negative; +inf when unlimited).
    pub fn remaining_mj(&self) -> f64 {
        (self.capacity_mj - self.spent_mj()).max(0.0)
    }

    /// Fraction of the budget left, in `[0, 1]` (1.0 when unlimited).
    pub fn level(&self) -> f64 {
        if self.capacity_mj.is_infinite() {
            1.0
        } else {
            self.remaining_mj() / self.capacity_mj
        }
    }

    /// True once the budget is exhausted — the node is dead and the world
    /// stops delivering to or transmitting from it.
    pub fn is_depleted(&self) -> bool {
        self.spent_mj() >= self.capacity_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RadioCfg {
        RadioCfg::paper()
    }

    #[test]
    fn charges_accumulate() {
        let c = cfg();
        let mut m = EnergyMeter::new(1000.0);
        m.charge_tx(&c, 100);
        m.charge_rx(&c, 100);
        let expect_tx = c.tx_mj_base + 100.0 * c.tx_mj_per_byte;
        let expect_rx = c.rx_mj_base + 100.0 * c.rx_mj_per_byte;
        assert!((m.spent_tx_mj() - expect_tx).abs() < 1e-12);
        assert!((m.spent_rx_mj() - expect_rx).abs() < 1e-12);
        assert!((m.spent_mj() - (expect_tx + expect_rx)).abs() < 1e-12);
    }

    #[test]
    fn tx_costs_more_than_rx() {
        let c = cfg();
        let mut tx = EnergyMeter::new(1000.0);
        let mut rx = EnergyMeter::new(1000.0);
        tx.charge_tx(&c, 500);
        rx.charge_rx(&c, 500);
        assert!(tx.spent_mj() > rx.spent_mj());
    }

    #[test]
    fn depletion_and_level() {
        let c = cfg();
        let mut m = EnergyMeter::new(1.0);
        assert!(!m.is_depleted());
        assert_eq!(m.level(), 1.0);
        for _ in 0..1000 {
            m.charge_tx(&c, 100);
        }
        assert!(m.is_depleted());
        assert_eq!(m.remaining_mj(), 0.0);
        assert_eq!(m.level(), 0.0);
    }

    #[test]
    fn unlimited_never_depletes() {
        let c = cfg();
        let mut m = EnergyMeter::unlimited();
        for _ in 0..100_000 {
            m.charge_tx(&c, 1500);
        }
        assert!(!m.is_depleted());
        assert_eq!(m.level(), 1.0);
        assert!(m.spent_mj() > 0.0, "spending still tracked");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        EnergyMeter::new(0.0);
    }
}
