//! Physical-layer counters.

/// Per-node PHY statistics, updated by the world as it executes receptions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhyStats {
    /// Frames this node put on the air.
    pub frames_sent: u64,
    /// Frames delivered to this node.
    pub frames_received: u64,
    /// Receptions destroyed by the loss process.
    pub frames_lost: u64,
    /// Unicasts that failed because the destination was out of range.
    pub link_breaks: u64,
    /// Bytes transmitted.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

impl PhyStats {
    /// Record a transmission of `bytes`.
    pub fn on_send(&mut self, bytes: u32) {
        self.frames_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Record a successful reception of `bytes`.
    pub fn on_receive(&mut self, bytes: u32) {
        self.frames_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// Record a lost reception.
    pub fn on_loss(&mut self) {
        self.frames_lost += 1;
    }

    /// Record a failed unicast (destination out of range).
    pub fn on_link_break(&mut self) {
        self.link_breaks += 1;
    }

    /// Merge another node's (or run's) counters into this one.
    pub fn merge(&mut self, other: &PhyStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.frames_lost += other.frames_lost;
        self.link_breaks += other.link_breaks;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = PhyStats::default();
        s.on_send(100);
        s.on_send(50);
        s.on_receive(100);
        s.on_loss();
        s.on_link_break();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.frames_received, 1);
        assert_eq!(s.bytes_received, 100);
        assert_eq!(s.frames_lost, 1);
        assert_eq!(s.link_breaks, 1);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = PhyStats::default();
        a.on_send(10);
        let mut b = PhyStats::default();
        b.on_send(20);
        b.on_receive(5);
        a.merge(&b);
        assert_eq!(a.frames_sent, 2);
        assert_eq!(a.bytes_sent, 30);
        assert_eq!(a.frames_received, 1);
    }
}
