//! The substrate seam: what a protocol stack may ask of whatever is
//! executing it.
//!
//! A *substrate* is the thing that owns time and timers for a set of
//! protocol stacks. Two exist in this workspace:
//!
//! * the DES — `manet-sim`'s engine, where "now" is the virtual clock of
//!   the future-event list and an armed timer is a `NodeTimer` event;
//! * the real-time driver — `manet-rt`'s epoll loop, where "now" is
//!   elapsed wall-clock microseconds and an armed timer is the next
//!   `epoll_wait` deadline.
//!
//! The protocol machines themselves (AODV, the reconfiguration
//! algorithms, the query engine) never see this trait: they are pure
//! state machines taking `now` as an argument and *requesting* wakes by
//! reporting `next_wake()`. The trait is the contract for the layer that
//! hosts them — everything a host may do about time is read the clock and
//! arm one combined timer per node, so a stack runs identically on either
//! substrate.

use crate::ids::NodeId;
use crate::time::SimTime;

/// Time and timer service a substrate provides to the stacks it hosts.
///
/// `SimTime` is the common currency: one tick is one microsecond on both
/// substrates ([`TICKS_PER_SECOND`](crate::TICKS_PER_SECOND) = 10⁶). The
/// DES interprets it as virtual time; the real-time driver anchors tick 0
/// at loop start and converts deadlines to `epoll_wait` timeouts.
pub trait Substrate {
    /// The current instant on this substrate's clock.
    fn now(&self) -> SimTime;

    /// Arm node `node`'s combined protocol timer to fire at `at`.
    ///
    /// Implementations need not dedup: callers are expected to hold the
    /// earliest-pending-wake guard (the DES keeps a per-node `timer_at`
    /// slot, the real-time loop keeps a single next-deadline), so a call
    /// always tightens the pending deadline.
    fn arm_timer(&mut self, node: NodeId, at: SimTime);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A substrate is object-safe and trivially mockable: the protocol
    /// side of the seam compiles against `&mut dyn Substrate` alone.
    struct Manual {
        now: SimTime,
        armed: Vec<(NodeId, SimTime)>,
    }

    impl Substrate for Manual {
        fn now(&self) -> SimTime {
            self.now
        }
        fn arm_timer(&mut self, node: NodeId, at: SimTime) {
            self.armed.push((node, at));
        }
    }

    #[test]
    fn object_safe_and_mockable() {
        let mut m = Manual {
            now: SimTime::from_secs(2),
            armed: Vec::new(),
        };
        let sub: &mut dyn Substrate = &mut m;
        let wake = sub.now() + crate::SimDuration::from_millis(5);
        sub.arm_timer(NodeId(3), wake);
        assert_eq!(m.armed, vec![(NodeId(3), SimTime::from_ticks(2_005_000))]);
    }
}
