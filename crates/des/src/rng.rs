//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own PRNG (xoshiro256++ seeded through SplitMix64)
//! instead of depending on an external crate so that a given master seed
//! produces bit-identical runs on every platform and toolchain, forever.
//!
//! Streams are *forked* hierarchically: one master seed yields independent
//! per-replication streams, each of which yields independent per-node and
//! per-layer streams. Forking mixes a label into the state through SplitMix64,
//! so sibling streams are statistically independent and insensitive to the
//! order in which they are created.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both as the seeding function recommended by the xoshiro authors and
/// as a cheap hash for deriving child seeds from (seed, label) pairs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator: fast, 256-bit state, passes BigCrush.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed, expanding it with SplitMix64.
    ///
    /// Any seed is acceptable, including zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro256++ requires a non-zero state; SplitMix64 outputs are zero
        // with probability 2^-256 for the full array, but be explicit anyway.
        if s == [0, 0, 0, 0] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Fork an independent child stream labelled by `label`.
    ///
    /// Children with distinct labels are independent of each other and of the
    /// parent's future output. The parent is *not* advanced, so forking is
    /// insensitive to call order.
    pub fn fork(&self, label: u64) -> Rng {
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut seed = splitmix64(&mut sm);
        seed ^= splitmix64(&mut sm).rotate_left(32);
        Rng::new(seed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 top bits -> uniform dyadic rationals in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's unbiased method.
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`. Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform `f64` in `[lo, hi)`. Panics if the range is not finite or inverted.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite());
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed draw with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Avoid ln(0): f64() is in [0,1), so 1 - f64() is in (0,1].
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal draw (Box-Muller; one value per call, no caching, to
    /// keep the stream position deterministic and simple to reason about).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal std_dev must be non-negative");
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Rng::choose on empty slice");
        &slice[self.index(slice.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// Returns fewer than `k` indices when `n < k`. Output order is not
    /// specified but is deterministic for a given stream position.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut reservoir: Vec<usize> = (0..n.min(k)).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn fork_is_order_insensitive_and_independent() {
        let parent = Rng::new(7);
        let mut c1a = parent.fork(1);
        let mut c2 = parent.fork(2);
        let mut c1b = parent.fork(1);
        assert_eq!(c1a.next_u64(), c1b.next_u64());
        assert_ne!(c1a.next_u64(), c2.next_u64());
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range_and_covers_all_values() {
        let mut r = Rng::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut r = Rng::new(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = r.range_u64(10, 13);
            assert!((10..=13).contains(&v));
            hit_lo |= v == 10;
            hit_hi |= v == 13;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn range_u64_full_domain_does_not_panic() {
        let mut r = Rng::new(5);
        let _ = r.range_u64(0, u64::MAX);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::new(21);
        let n = 50_000;
        let mean = 30.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(22);
        let n = 50_000;
        let (mu, sigma) = (5.0, 2.0);
        let draws: Vec<f64> = (0..n).map(|_| r.normal(mu, sigma)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(33);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng::new(44);
        let sample = r.sample_indices(50, 10);
        assert_eq!(sample.len(), 10);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_when_population_small() {
        let mut r = Rng::new(45);
        let sample = r.sample_indices(3, 10);
        assert_eq!(sample, vec![0, 1, 2]);
    }
}
