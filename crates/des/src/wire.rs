//! Byte-exact wire primitives shared by every protocol codec.
//!
//! The DES carries messages as in-memory structs; the real-time substrate
//! puts them on UDP sockets, which needs an actual encoding. This module
//! owns the pieces every layer's codec builds on: little-endian integer
//! writers, a bounds-checked [`WireReader`], the typed [`WireError`] (a
//! corrupted frame must decode to an error, never a panic), and the codec
//! for the one type this crate defines that crosses the wire —
//! [`TraceCtx`], encoded as a presence flag plus its three ids so untraced
//! traffic pays a single byte.

use crate::trace::TraceCtx;

/// Why a buffer failed to decode. Every decoder in the workspace returns
/// this instead of panicking: a malformed datagram is an expected input on
/// a real socket, not a bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a field: `need` more bytes, `have` left.
    Truncated {
        /// Bytes the next field needs.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A discriminant byte has no defined meaning.
    BadTag {
        /// Which field rejected it (a static codec label).
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The buffer decoded cleanly but `extra` bytes were left over.
    Trailing {
        /// Undecoded bytes at the end.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} more bytes, have {have}")
            }
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `v` as one byte.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append `v` little-endian.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append `v` little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append `v` little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a [`TraceCtx`]: a presence byte, then the three ids only when
/// the context is active. Matches [`read_ctx`].
pub fn put_ctx(buf: &mut Vec<u8>, ctx: TraceCtx) {
    if ctx.is_active() {
        put_u8(buf, 1);
        put_u64(buf, ctx.trace_id);
        put_u64(buf, ctx.parent_id);
        put_u64(buf, ctx.span_seq);
    } else {
        put_u8(buf, 0);
    }
}

/// A bounds-checked cursor over an incoming datagram. Every read is
/// checked; running out of bytes yields [`WireError::Truncated`].
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read a presence flag that must be 0 or 1.
    pub fn flag(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Assert the buffer is fully consumed (frame-level decoders call this
    /// last, so a datagram with garbage appended is rejected, not
    /// silently accepted).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

/// Read a [`TraceCtx`] written by [`put_ctx`].
pub fn read_ctx(r: &mut WireReader<'_>) -> Result<TraceCtx, WireError> {
    if r.flag("trace ctx presence")? {
        Ok(TraceCtx {
            trace_id: r.u64()?,
            parent_id: r.u64()?,
            span_seq: r.u64()?,
        })
    } else {
        Ok(TraceCtx::NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_round_trip_little_endian() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0x1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0102_0304_0506_0708);
        assert_eq!(buf[1..3], [0x34, 0x12], "u16 is little-endian");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(WireError::Truncated { need: 4, have: 2 }),
            "reads past the end are typed errors"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut r = WireReader::new(&[7, 8]);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.finish(), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn ctx_costs_one_byte_when_absent() {
        let mut buf = Vec::new();
        put_ctx(&mut buf, TraceCtx::NONE);
        assert_eq!(buf, [0]);
        let mut r = WireReader::new(&buf);
        assert_eq!(read_ctx(&mut r).unwrap(), TraceCtx::NONE);
    }

    #[test]
    fn active_ctx_round_trips() {
        let ctx = TraceCtx {
            trace_id: 7,
            parent_id: 3,
            span_seq: 9,
        };
        let mut buf = Vec::new();
        put_ctx(&mut buf, ctx);
        assert_eq!(buf.len(), 1 + 24);
        let mut r = WireReader::new(&buf);
        assert_eq!(read_ctx(&mut r).unwrap(), ctx);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn ctx_presence_flag_validated() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(
            read_ctx(&mut r),
            Err(WireError::BadTag {
                what: "trace ctx presence",
                tag: 2
            })
        );
    }
}
