//! A key-ordered future-event list for conservative parallel simulation.
//!
//! The sequential [`EventQueue`](crate::queue::EventQueue) breaks
//! timestamp ties by *insertion sequence* — exactly one legal execution,
//! but one that depends on the global order every event was scheduled in.
//! A spatially sharded world has no global insertion order: each shard
//! schedules its own events and absorbs cross-shard messages at barrier
//! points, so two different partitions of the same world interleave their
//! `schedule` calls differently.
//!
//! [`KeyedQueue`] restores determinism by breaking ties with an
//! *intrinsic* [`EventKey`] instead: a total order derived from what the
//! event **is** (its class, the nodes involved, the sender's transmission
//! sequence) rather than when it was scheduled. Any shard that ends up
//! holding the same set of `(time, key)` events pops them in the same
//! order, whatever route they arrived by — the property the sharded
//! world's partition-invariance rests on.
//!
//! The insertion sequence is kept only as a final fallback so the order
//! is total even for key collisions; well-formed worlds never produce
//! two distinct simultaneous events with equal keys (see the key
//! construction rules in `manet-sim`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The physically justified synchronization slack of a conservative
/// parallel simulation: no message sent at time `t` can affect another
/// shard before `t + lookahead`, so every shard may safely advance to
/// `min(global next event) + lookahead` between barriers.
///
/// For a radio medium this is the minimum over-the-air latency: the
/// serialization delay of the smallest possible frame plus the
/// propagation (hop) latency. `manet-radio` derives it from a `RadioCfg`
/// (`RadioCfg::lookahead`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Lookahead(pub SimDuration);

impl Lookahead {
    /// The slack in ticks.
    pub fn ticks(self) -> u64 {
        self.0.ticks()
    }

    /// A conservative window is only useful if it is non-empty: a zero
    /// lookahead means messages can arrive in the instant they are sent
    /// and shards could never advance past one another.
    pub fn is_usable(self) -> bool {
        self.0.ticks() >= 1
    }
}

/// An intrinsic total order over simultaneous events.
///
/// Compared lexicographically as `(class, k1, k2)`. The producer assigns
/// `class` per event kind and packs identifying state into `k1`/`k2`
/// (node ids, subsystem ids, per-sender transmission sequence numbers) —
/// anything derived from the event itself, never from scheduling order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventKey {
    /// Event-kind rank (producer-defined).
    pub class: u8,
    /// Primary discriminator (e.g. node id, sender/receiver pair).
    pub k1: u64,
    /// Secondary discriminator (e.g. per-sender transmission sequence).
    pub k2: u64,
}

impl EventKey {
    /// The smallest key: sorts before every other key of the same class 0.
    pub const MIN: EventKey = EventKey {
        class: 0,
        k1: 0,
        k2: 0,
    };
}

struct KeyedEntry<E> {
    at: SimTime,
    key: EventKey,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for KeyedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for KeyedEntry<E> {}
impl<E> PartialOrd for KeyedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for KeyedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the earliest entry must win.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, key)` with a per-queue
/// insertion sequence as the final tie-break. No cancellation — the
/// sharded world re-checks liveness at dispatch instead — which keeps
/// entries small and the hot path branch-free.
pub struct KeyedQueue<E> {
    heap: BinaryHeap<KeyedEntry<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for KeyedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyedQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        KeyedQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` at `at` under `key`. Panics if `at` is in the
    /// queue's past — the same contract as the sequential queue.
    pub fn schedule(&mut self, at: SimTime, key: EventKey, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(KeyedEntry {
            at,
            key,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
        self.scheduled_total += 1;
    }

    /// Timestamp of the earliest pending event, if any. O(1).
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if its timestamp is `<= limit`, advancing
    /// the queue clock to it.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().is_some_and(|e| e.at <= limit) {
            let e = self.heap.pop().expect("peeked");
            self.now = e.at;
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// The queue clock: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events ever scheduled (a workload measure; never decreases).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Remove and return every pending event matching `pred`, preserving
    /// each survivor's original insertion sequence (relative order under
    /// equal `(time, key)` is unchanged). O(n) rebuild — used only at
    /// shard-migration boundaries, never on the hot path.
    pub fn drain_matching(
        &mut self,
        mut pred: impl FnMut(&E) -> bool,
    ) -> Vec<(SimTime, EventKey, E)> {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut drained = Vec::new();
        let mut kept = Vec::with_capacity(entries.len());
        for e in entries {
            if pred(&e.payload) {
                drained.push((e.at, e.key, e.payload));
            } else {
                kept.push(e);
            }
        }
        self.heap = BinaryHeap::from(kept);
        // Deterministic hand-off order: by (time, key), not heap layout.
        drained.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(class: u8, k1: u64, k2: u64) -> EventKey {
        EventKey { class, k1, k2 }
    }

    #[test]
    fn pops_by_time_then_key_not_insertion_order() {
        let mut q = KeyedQueue::new();
        let t = SimTime::from_ticks(100);
        // Inserted in reverse key order: key order must still win.
        q.schedule(t, key(2, 7, 1), "c");
        q.schedule(t, key(1, 9, 0), "b");
        q.schedule(t, key(1, 2, 0), "a");
        q.schedule(SimTime::from_ticks(50), key(9, 0, 0), "first");
        let mut got = Vec::new();
        while let Some((_, p)) = q.pop_before(SimTime::MAX) {
            got.push(p);
        }
        assert_eq!(got, vec!["first", "a", "b", "c"]);
    }

    #[test]
    fn insertion_order_is_irrelevant_for_distinct_keys() {
        let t = SimTime::from_ticks(5);
        let keys = [key(0, 3, 0), key(1, 1, 4), key(1, 1, 2), key(2, 0, 0)];
        let mut forward = KeyedQueue::new();
        let mut backward = KeyedQueue::new();
        for (i, &k) in keys.iter().enumerate() {
            forward.schedule(t, k, i);
        }
        for (i, &k) in keys.iter().enumerate().rev() {
            backward.schedule(t, k, i);
        }
        let drain = |mut q: KeyedQueue<usize>| {
            let mut v = Vec::new();
            while let Some((_, p)) = q.pop_before(SimTime::MAX) {
                v.push(p);
            }
            v
        };
        assert_eq!(drain(forward), drain(backward));
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        let mut q = KeyedQueue::new();
        q.schedule(SimTime::from_ticks(10), EventKey::MIN, "early");
        q.schedule(SimTime::from_ticks(20), EventKey::MIN, "late");
        assert_eq!(
            q.pop_before(SimTime::from_ticks(15)),
            Some((SimTime::from_ticks(10), "early"))
        );
        assert_eq!(q.pop_before(SimTime::from_ticks(15)), None);
        assert_eq!(q.next_time(), Some(SimTime::from_ticks(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_matching_splits_exactly() {
        let mut q = KeyedQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_ticks(i), key(0, i, 0), i);
        }
        let drained = q.drain_matching(|&v| v % 2 == 0);
        assert_eq!(drained.len(), 5);
        // Drained events come back sorted by (time, key).
        assert!(drained
            .windows(2)
            .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        let mut rest = Vec::new();
        while let Some((_, v)) = q.pop_before(SimTime::MAX) {
            rest.push(v);
        }
        assert_eq!(rest, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn lookahead_usability() {
        assert!(!Lookahead(SimDuration::from_ticks(0)).is_usable());
        assert!(Lookahead(SimDuration::from_ticks(1)).is_usable());
    }
}
