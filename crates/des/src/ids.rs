//! Shared identifier types.
//!
//! Every layer of the stack (radio, routing, overlay, content) names nodes
//! the same way, so the id type lives in the base crate.

use std::fmt;

/// A node identity: dense indices `0..n` assigned by the scenario builder.
///
/// Dense ids double as vector indices in the hot paths (spatial grid keys,
/// per-node metric rows), avoiding hash maps where a `Vec` will do.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
