//! Simulation clock types.
//!
//! The simulator measures time in integer **microseconds** since the start of
//! the run. Integer time makes event ordering exact and replications
//! bit-reproducible across platforms; one microsecond is far below any
//! latency the radio or protocol layers model (the shortest modelled delay is
//! on the order of hundreds of microseconds), so quantization is harmless.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microsecond ticks per second.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// An instant on the simulation timeline, in microseconds since t = 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Construct from fractional seconds (rounds to the nearest tick).
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_ticks(secs))
    }

    /// Raw microsecond ticks since t = 0.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Construct from fractional seconds (rounds to the nearest tick).
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_ticks(secs))
    }

    /// Raw microsecond ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by `factor`, saturating at the representable maximum.
    ///
    /// Used for the paper's `timer = min(timer * 2, MAXTIMER)` backoff.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

fn secs_to_ticks(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    if secs.is_infinite() {
        return u64::MAX;
    }
    let ticks = secs * TICKS_PER_SECOND as f64;
    if ticks >= u64::MAX as f64 {
        u64::MAX
    } else {
        ticks.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).ticks(), 2 * TICKS_PER_SECOND);
        assert_eq!(SimTime::from_secs_f64(0.5).ticks(), TICKS_PER_SECOND / 2);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(0.25).ticks(), 250_000);
    }

    #[test]
    fn negative_and_nan_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn huge_seconds_saturate_to_max() {
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_ticks(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis_for_test(1500)), "1.500s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> Self {
            SimTime(ms * 1000)
        }
    }
}
