//! Calendar-queue scheduler backend (a bucketed timing wheel).
//!
//! The classic ns-2 future-event list (Brown 1988): events hash into
//! `buckets.len()` buckets by `floor(time / width) mod buckets`, and the pop
//! cursor sweeps the wheel one *window* (one bucket-width of simulated time)
//! at a time. With the width tuned so each window holds O(1) events, both
//! schedule and pop are amortized O(1) — versus O(log n) for a binary heap —
//! which is what let ns-2 scale to large node counts.
//!
//! Ordering contract: [`take_min`](CalendarQueue::take_min) always removes
//! and returns the globally minimal item by `(time, seq)`. Two items with
//! equal timestamps hash into the same bucket, so the within-bucket scan can
//! resolve the `seq` tie exactly; the wheel therefore reproduces the binary
//! heap's pop sequence bit-for-bit, which `EventQueue` relies on to make the
//! scheduler choice unobservable.
//!
//! Each bucket keeps its pending items sorted ascending by `(time, seq)`
//! behind a consumed-prefix head index, so a cursor visit inspects only the
//! bucket's front item (O(1)) and popping advances the head (O(1)). The
//! classic unsorted-bucket calendar scans whole buckets per visit, which
//! makes it hypersensitive to the width on bursty workloads: this simulation
//! alternates flood bursts (inter-event gaps of microseconds) with timer
//! lulls (gaps of many milliseconds), and no single width serves both when
//! scans are O(bucket). Sorted buckets decouple pop cost from the width;
//! inserts pay a binary search plus a short tail shift, which stays cheap
//! because a tuned width keeps co-window clusters small.
//!
//! Self-tuning: the bucket width is re-estimated on every rebuild from the
//! mean clock advance per pop since the previous rebuild — the measured
//! event density, robust to the skew of the pending set (whose head is
//! whatever burst was scheduled last). A sweep-effort counter triggers a
//! retuning rebuild when the width is doing badly even though the queue
//! size is stable. All heuristics are pure functions of the push/pop
//! sequence — no wall clock, no randomness — so runs stay deterministic and
//! the pop order never changes.

use crate::queue::Item;

/// Smallest wheel size; also the size the wheel shrinks back to.
const MIN_BUCKETS: usize = 16;

/// Bucket width before the first calibration, in ticks (4.096 ms: below the
/// per-hop radio latency, so early traffic spreads across the wheel).
const INITIAL_WIDTH: u64 = 1 << 12;

/// Events sampled (from the earliest queued) when re-estimating the width.
const WIDTH_SAMPLE: usize = 32;

/// Pops between sweep-effort checks; a retuning rebuild fires when the
/// sweep work since the last rebuild exceeds [`EFFORT_FACTOR`] per pop.
/// Long enough that the O(items) rebuild amortizes to noise and the mean
/// pop gap is averaged across burst/lull regimes, not sampled inside one.
const TUNE_INTERVAL: u64 = 8192;

/// Tolerated cursor window-visits per pop before retuning.
const EFFORT_FACTOR: u64 = 16;

/// One wheel slot: pending items sorted ascending by `(at, seq)` after a
/// consumed prefix of `head` already-popped entries.
#[derive(Clone, Default)]
struct Bucket {
    v: Vec<Item>,
    head: usize,
}

impl Bucket {
    /// The still-pending tail, in ascending `(at, seq)` order.
    #[inline]
    fn live(&self) -> &[Item] {
        &self.v[self.head..]
    }

    /// First pending item, if any — the bucket's `(at, seq)` minimum.
    #[inline]
    fn front(&self) -> Option<&Item> {
        self.v.get(self.head)
    }

    /// Remove and return the front item. Caller checks non-emptiness.
    fn take_front(&mut self) -> Item {
        let item = self.v[self.head];
        self.head += 1;
        if self.head == self.v.len() {
            self.v.clear();
            self.head = 0;
        }
        item
    }

    /// Insert preserving ascending `(at, seq)` order. Bursts scheduled in
    /// time order append in O(1); out-of-order arrivals shift only the
    /// bucket's short tail.
    fn insert(&mut self, item: Item) {
        if self.head > 0 && self.head * 2 >= self.v.len() {
            self.v.drain(..self.head);
            self.head = 0;
        }
        // Search only the live region: the consumed prefix still holds
        // stale copies of taken items (head only advances), and a re-insert
        // of the same key (an unpop) must not land among them.
        let key = (item.at, item.seq);
        let pos =
            self.head + self.v[self.head..].partition_point(|probe| (probe.at, probe.seq) < key);
        if pos == self.v.len() {
            self.v.push(item);
        } else {
            self.v.insert(pos, item);
        }
    }
}

pub(crate) struct CalendarQueue {
    /// The wheel. Length is always a power of two.
    buckets: Vec<Bucket>,
    /// Simulated-time span of one bucket, in ticks (≥ 1).
    width: u64,
    /// Current window number: the cursor is at bucket `window % buckets`,
    /// and an item is *due* there iff `item.at / width == window`.
    window: u64,
    /// Total items stored, live and lazily-cancelled alike.
    items: usize,
    /// Time (ticks) of the most recently popped item. Pops are globally
    /// sorted, so this is the popped-time high-water mark.
    last_pop: u64,
    /// `last_pop` as of the previous rebuild: the anchor for the mean
    /// pop-gap width estimate.
    tune_anchor: u64,
    /// Cursor window-visits accumulated since the last rebuild.
    effort: u64,
    /// Pops since the last rebuild.
    pops_since_tune: u64,
    /// Lifetime diagnostics: pops, window visits, fallback scans, rebuilds.
    stats: [u64; 4],
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: vec![Bucket::default(); MIN_BUCKETS],
            width: INITIAL_WIDTH,
            window: 0,
            items: 0,
            last_pop: 0,
            tune_anchor: 0,
            effort: 0,
            pops_since_tune: 0,
            stats: [0; 4],
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    #[inline]
    fn bucket_of(&self, ticks: u64) -> usize {
        ((ticks / self.width) as usize) & self.mask()
    }

    pub(crate) fn len(&self) -> usize {
        self.items
    }

    pub(crate) fn push(&mut self, item: Item) {
        let b = self.bucket_of(item.at.ticks());
        self.buckets[b].insert(item);
        self.items += 1;
        if self.items > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Remove and return the stored item with the smallest `(at, seq)`.
    ///
    /// The cursor sweep visits windows in increasing time order. Because
    /// every stored item satisfies `at ≥ now` (the queue never schedules
    /// into the past and `now` only advances to popped times), no item can
    /// hash behind the cursor within its current revolution, so the first
    /// due item found *is* the global minimum. A full revolution without a
    /// due item means the next event lies more than one wheel-span ahead;
    /// a direct scan then finds it and teleports the cursor.
    pub(crate) fn take_min(&mut self) -> Option<Item> {
        if self.items == 0 {
            return None;
        }
        self.stats[0] += 1;
        let mut found = None;
        for _ in 0..self.buckets.len() {
            let b = (self.window as usize) & self.mask();
            self.stats[1] += 1;
            self.effort += 1;
            if self.front_due(b, self.window) {
                found = Some(b);
                break;
            }
            self.window = self.window.saturating_add(1);
        }
        let b = match found {
            Some(b) => b,
            None => {
                // Sparse stretch: nothing within one revolution. Direct
                // search for the global minimum, then jump the cursor.
                self.stats[2] += 1;
                self.effort += self.buckets.len() as u64;
                let b = self.global_min().expect("items > 0");
                self.window = self.buckets[b].front().expect("non-empty").at.ticks() / self.width;
                b
            }
        };
        let item = self.buckets[b].take_front();
        self.items -= 1;
        self.last_pop = item.at.ticks();
        self.pops_since_tune += 1;
        if self.items < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        } else if self.pops_since_tune >= TUNE_INTERVAL
            && self.effort > self.pops_since_tune * EFFORT_FACTOR
        {
            // The width is doing badly (long sweeps or fallback scans) even
            // though the size thresholds have not fired: rebuild in place
            // with a freshly estimated width.
            self.rebuild(self.buckets.len());
        }
        Some(item)
    }

    /// Re-insert an item just returned by [`take_min`](Self::take_min),
    /// rewinding the cursor to the window of the caller's clock `now_ticks`.
    ///
    /// The plain `push` is not enough here: `take_min` advanced the cursor
    /// to the taken item's window, and a later `push` at an earlier time
    /// (but still `≥ now`) would land behind the cursor and be missed for a
    /// whole revolution — breaking the global-minimum guarantee.
    pub(crate) fn unpop(&mut self, item: Item, now_ticks: u64) {
        self.window = now_ticks / self.width;
        self.push(item);
    }

    /// Rewind the cursor to the window containing `now_ticks`.
    ///
    /// Needed when a scan consumed trailing lazily-cancelled items (moving
    /// the cursor to their windows) without yielding a live event: a later
    /// `push` between the cancelled items' times and `now` must not land
    /// behind the cursor. Rewinding below the true minimum is always safe —
    /// it only costs extra empty-bucket scanning.
    pub(crate) fn reset_cursor(&mut self, now_ticks: u64) {
        self.window = now_ticks / self.width;
    }

    /// Drop items failing the predicate (lazy-cancellation sweep).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&Item) -> bool) {
        let mut removed = 0usize;
        for bucket in &mut self.buckets {
            if bucket.head > 0 {
                bucket.v.drain(..bucket.head);
                bucket.head = 0;
            }
            bucket.v.retain(|item| {
                let k = keep(item);
                if !k {
                    removed += 1;
                }
                k
            });
        }
        self.items -= removed;
        if self.items < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
    }

    /// Lifetime diagnostics: `[pops, window_visits, fallback_scans,
    /// rebuilds, width, buckets, items]`. For tuning probes and tests.
    pub(crate) fn stats(&self) -> [u64; 7] {
        let [p, w, f, r] = self.stats;
        [
            p,
            w,
            f,
            r,
            self.width,
            self.buckets.len() as u64,
            self.items as u64,
        ]
    }

    /// Iterate over all stored items in arbitrary order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Item> + '_ {
        self.buckets.iter().flat_map(Bucket::live)
    }

    /// Is bucket `b`'s front item due in `window`?
    ///
    /// The front is the bucket's `(at, seq)` minimum and nothing hashes
    /// behind the cursor, so due-ness is a single upper-bound comparison
    /// against the window's last tick — no division, no scan. The
    /// saturating end is exact: only the final representable window can
    /// saturate, and no item can lie beyond it.
    #[inline]
    fn front_due(&self, b: usize, window: u64) -> bool {
        let end = window
            .saturating_mul(self.width)
            .saturating_add(self.width - 1);
        match self.buckets[b].front() {
            Some(item) => item.at.ticks() <= end,
            None => false,
        }
    }

    /// Bucket holding the globally minimal `(at, seq)` item: the minimum
    /// over bucket fronts, since each front is its bucket's minimum.
    fn global_min(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(item) = bucket.front() {
                let better = match best {
                    Some(bb) => {
                        let cur = self.buckets[bb].front().expect("candidate non-empty");
                        (item.at, item.seq) < (cur.at, cur.seq)
                    }
                    None => true,
                };
                if better {
                    best = Some(b);
                }
            }
        }
        best
    }

    /// Re-bucket everything into a wheel of `new_len` buckets (clamped to a
    /// power of two ≥ [`MIN_BUCKETS`]) with a freshly sampled width.
    ///
    /// The cursor is re-derived from the start tick of the current window,
    /// which is ≤ every stored item's time, so the sweep invariant (nothing
    /// behind the cursor) survives the rebuild.
    fn rebuild(&mut self, new_len: usize) {
        let new_len = new_len.max(MIN_BUCKETS).next_power_of_two();
        let base = self.window.saturating_mul(self.width);
        let mut old: Vec<Item> = Vec::with_capacity(self.items);
        for b in &mut self.buckets {
            old.extend_from_slice(&b.v[b.head..]);
            b.v.clear();
            b.head = 0;
        }
        self.width = self.sample_width(&old);
        if self.buckets.len() != new_len {
            self.buckets = vec![Bucket::default(); new_len];
        }
        self.window = base / self.width;
        self.stats[3] += 1;
        self.effort = 0;
        self.pops_since_tune = 0;
        self.tune_anchor = self.last_pop;
        // Redistribute in global `(at, seq)` order so every bucket receives
        // its items in ascending order: pure appends, no insertion shifts.
        old.sort_unstable_by_key(|item| (item.at, item.seq));
        for item in old {
            let b = self.bucket_of(item.at.ticks());
            self.buckets[b].v.push(item);
        }
    }

    /// Estimate a bucket width for the next rebuild.
    ///
    /// Preferred estimate: the mean clock advance per pop since the last
    /// rebuild — `(last popped time - anchor) / pops` over at least a
    /// thousand pops, so bursts of simultaneous events and quiet stretches
    /// average out instead of whipsawing the width (a short-window sample
    /// oscillates by orders of magnitude on bursty workloads and triggers a
    /// costly rebuild every interval). The pending set is a biased sample —
    /// its head is whatever burst was scheduled last — but the pop sequence
    /// *is* the workload. Before any pops have spread (bulk loading,
    /// simultaneous bursts) fall back to the mean gap of the earliest
    /// [`WIDTH_SAMPLE`] stored items, then to the current width.
    fn sample_width(&self, items: &[Item]) -> u64 {
        if self.pops_since_tune >= 2 && self.last_pop > self.tune_anchor {
            let gap = (self.last_pop - self.tune_anchor) / self.pops_since_tune;
            if gap > 0 {
                return gap.saturating_mul(4);
            }
        }
        if items.len() < 2 {
            return self.width;
        }
        let mut times: Vec<u64> = items.iter().map(|i| i.at.ticks()).collect();
        let k = WIDTH_SAMPLE.min(times.len());
        times.select_nth_unstable(k - 1);
        let head = &mut times[..k];
        head.sort_unstable();
        let span = head[k - 1] - head[0];
        let gap = span / (k as u64 - 1);
        if gap == 0 {
            self.width
        } else {
            gap.saturating_mul(3).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn item(at: u64, seq: u64) -> Item {
        Item {
            at: SimTime::from_ticks(at),
            seq,
            slot: seq as usize,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c = CalendarQueue::new();
        c.push(item(500, 0));
        c.push(item(100, 1));
        c.push(item(100, 2));
        c.push(item(9_000_000, 3));
        let order: Vec<u64> = std::iter::from_fn(|| c.take_min()).map(|i| i.seq).collect();
        assert_eq!(order, vec![1, 2, 0, 3]);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut c = CalendarQueue::new();
        // Far beyond one revolution of the initial wheel.
        c.push(item(u64::from(u32::MAX) * 1000, 0));
        c.push(item(3, 1));
        assert_eq!(c.take_min().unwrap().seq, 1);
        assert_eq!(c.take_min().unwrap().seq, 0);
        assert!(c.take_min().is_none());
    }

    #[test]
    fn grows_and_shrinks_through_rebuilds() {
        let mut c = CalendarQueue::new();
        for i in 0..10_000u64 {
            c.push(item(i * 37 % 100_000, i));
        }
        assert!(c.buckets.len() > MIN_BUCKETS, "wheel should have grown");
        let mut last = (0u64, 0u64);
        let mut n = 0;
        while let Some(it) = c.take_min() {
            let cur = (it.at.ticks(), it.seq);
            assert!(
                cur > last || n == 0,
                "order violated: {cur:?} after {last:?}"
            );
            last = cur;
            n += 1;
        }
        assert_eq!(n, 10_000);
        assert_eq!(c.buckets.len(), MIN_BUCKETS, "wheel should shrink back");
    }

    #[test]
    fn retain_drops_and_recounts() {
        let mut c = CalendarQueue::new();
        for i in 0..100u64 {
            c.push(item(i * 10, i));
        }
        c.retain(|it| it.seq % 2 == 0);
        assert_eq!(c.len(), 50);
        let seqs: Vec<u64> = std::iter::from_fn(|| c.take_min()).map(|i| i.seq).collect();
        assert!(seqs.iter().all(|s| s % 2 == 0));
        assert_eq!(seqs.len(), 50);
    }

    #[test]
    fn max_time_items_do_not_wedge_the_cursor() {
        let mut c = CalendarQueue::new();
        c.push(item(u64::MAX, 0));
        c.push(item(u64::MAX, 1));
        assert_eq!(c.take_min().unwrap().seq, 0);
        assert_eq!(c.take_min().unwrap().seq, 1);
        assert!(c.take_min().is_none());
    }
}
