//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by timestamp; ties are broken by insertion sequence
//! number so that simultaneous events fire in the order they were scheduled.
//! That rule makes the whole simulation deterministic: there is exactly one
//! legal execution for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Internally carries the entry slot so cancellation is O(1); slot reuse is
/// guarded by the sequence number, so stale ids are harmless.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    seq: u64,
    slot: usize,
}

struct Entry<E> {
    seq: u64,
    cancelled: bool,
    payload: Option<E>,
}

/// Heap wrapper ordering entries min-first by `(time, seq)`.
struct HeapItem {
    at: SimTime,
    seq: u64,
    slot: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// `E` is the simulation's event payload type. Supports O(log n) schedule and
/// pop, and O(1) cancellation (lazy removal). Popping never returns an event
/// earlier than the last popped time, so causality is monotone.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapItem>,
    entries: Vec<Entry<E>>,
    free: Vec<usize>,
    next_seq: u64,
    now: SimTime,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` is earlier than the current time (scheduling into the
    /// past would break causality).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            seq,
            cancelled: false,
            payload: Some(payload),
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.heap.push(HeapItem { at, seq, slot });
        self.live += 1;
        EventId { seq, slot }
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was pending and is now cancelled, `false`
    /// if it had already fired or been cancelled. O(1): the heap item is
    /// removed lazily when it reaches the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.entries.get_mut(id.slot) {
            Some(entry) if entry.seq == id.seq && !entry.cancelled && entry.payload.is_some() => {
                entry.cancelled = true;
                entry.payload = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Remove and return the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(item) = self.heap.pop() {
            let entry = &mut self.entries[item.slot];
            // Stale heap items (recycled slot or cancelled event) are skipped.
            if entry.seq != item.seq || entry.cancelled {
                if entry.seq == item.seq {
                    self.free.push(item.slot);
                }
                continue;
            }
            let payload = entry.payload.take().expect("live entry has payload");
            self.free.push(item.slot);
            self.live -= 1;
            debug_assert!(item.at >= self.now, "event queue time went backwards");
            self.now = item.at;
            return Some((item.at, payload));
        }
        None
    }

    /// Timestamp of the earliest pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The heap top may be stale; scan lazily without mutating.
        self.heap
            .iter()
            .filter(|item| {
                let e = &self.entries[item.slot];
                e.seq == item.seq && !e.cancelled && e.payload.is_some()
            })
            .map(|item| item.at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.schedule(t(5), 2);
        q.schedule(t(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(4), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn slot_recycling_does_not_confuse_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.pop(); // frees slot 0
        let b = q.schedule(t(2), 2); // reuses slot 0
        assert!(!q.cancel(a), "stale id must not cancel the new event");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1u32);
        let (now, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        q.schedule(now + SimDuration::from_secs(1), 2);
        q.schedule(now + SimDuration::from_secs(3), 4);
        q.schedule(now + SimDuration::from_secs(2), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = crate::rng::Rng::new(99);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            let at = SimTime::from_ticks(rng.below(1_000_000));
            q.schedule(at, at);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, payload)) = q.pop() {
            assert_eq!(at, payload);
            assert!(at >= last);
            last = at;
        }
    }
}
