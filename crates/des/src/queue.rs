//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by timestamp; ties are broken by insertion sequence
//! number so that simultaneous events fire in the order they were scheduled.
//! That rule makes the whole simulation deterministic: there is exactly one
//! legal execution for a given seed.
//!
//! Two interchangeable scheduler backends implement that contract: a binary
//! heap (the reference) and a calendar queue (the ns-2 style bucketed
//! timing wheel that is the default). Both pop the exact same
//! `(time, seq)` sequence, so the choice is a pure performance knob —
//! property-tested for equivalence in `crate::properties`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Internally carries the entry slot so cancellation is O(1); slot reuse is
/// guarded by the sequence number, so stale ids are harmless. Slot numbers
/// are an allocation detail: they may differ between scheduler backends even
/// though the observable pop sequence is identical.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    seq: u64,
    slot: usize,
}

/// Which future-event-list implementation an [`EventQueue`] runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SchedulerKind {
    /// Lazy-deletion binary heap: O(log n) schedule/pop. The reference
    /// implementation.
    Heap,
    /// Calendar queue (bucketed timing wheel): amortized O(1) schedule/pop
    /// under simulation-like workloads. Bit-identical pop order to `Heap`.
    #[default]
    Calendar,
}

struct Entry<E> {
    seq: u64,
    cancelled: bool,
    payload: Option<E>,
}

/// One scheduled occurrence as stored inside a backend: timestamp, global
/// insertion sequence, and the slot of its payload entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Item {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: usize,
}

/// Heap wrapper ordering items min-first by `(time, seq)`.
struct HeapItem(Item);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

enum Backend {
    Heap(BinaryHeap<HeapItem>),
    Calendar(CalendarQueue),
}

impl Backend {
    fn push(&mut self, item: Item) {
        match self {
            Backend::Heap(h) => h.push(HeapItem(item)),
            Backend::Calendar(c) => c.push(item),
        }
    }

    /// Remove and return the minimal `(at, seq)` item, live or stale.
    fn take_min(&mut self) -> Option<Item> {
        match self {
            Backend::Heap(h) => h.pop().map(|h| h.0),
            Backend::Calendar(c) => c.take_min(),
        }
    }

    /// Undo a `take_min`: re-insert `item` and restore any cursor state to
    /// the caller's clock `now_ticks`.
    fn unpop(&mut self, item: Item, now_ticks: u64) {
        match self {
            Backend::Heap(h) => h.push(HeapItem(item)),
            Backend::Calendar(c) => c.unpop(item, now_ticks),
        }
    }

    /// Restore any cursor state to the caller's clock `now_ticks` after a
    /// scan that removed items without yielding a live event.
    fn reset_cursor(&mut self, now_ticks: u64) {
        match self {
            Backend::Heap(_) => {}
            Backend::Calendar(c) => c.reset_cursor(now_ticks),
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&Item) -> bool) {
        match self {
            Backend::Heap(h) => {
                let mut v = std::mem::take(h).into_vec();
                v.retain(|hi| keep(&hi.0));
                *h = BinaryHeap::from(v);
            }
            Backend::Calendar(c) => c.retain(keep),
        }
    }

    fn stored(&self) -> usize {
        match self {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = &Item> + '_> {
        match self {
            Backend::Heap(h) => Box::new(h.iter().map(|hi| &hi.0)),
            Backend::Calendar(c) => Box::new(c.iter()),
        }
    }
}

/// Stale items must outnumber this floor before a compaction sweep runs, so
/// small queues never pay the O(n) rebuild.
const COMPACT_FLOOR: usize = 64;

/// A deterministic future-event list.
///
/// `E` is the simulation's event payload type. Supports O(1) cancellation
/// (lazy removal) and — on the default calendar-queue backend — amortized
/// O(1) schedule and pop. Popping never returns an event earlier than the
/// last popped time, so causality is monotone. When lazily-cancelled items
/// come to outnumber half the live count the queue compacts itself, so
/// churn-heavy workloads cannot grow the backlog without bound.
pub struct EventQueue<E> {
    backend: Backend,
    entries: Vec<Entry<E>>,
    free: Vec<usize>,
    next_seq: u64,
    now: SimTime,
    live: usize,
    /// Cancelled items still sitting in the backend awaiting lazy removal.
    dead: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero, on the default
    /// (calendar-queue) scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// Create an empty queue on an explicit scheduler backend. The choice
    /// affects performance only: pop sequences are bit-identical.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let backend = match kind {
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => Backend::Calendar(CalendarQueue::new()),
        };
        EventQueue {
            backend,
            entries: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
            dead: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled on this queue (the insertion-sequence
    /// high-water mark; includes popped and cancelled events).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` is earlier than the current time (scheduling into the
    /// past would break causality).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            seq,
            cancelled: false,
            payload: Some(payload),
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.backend.push(Item { at, seq, slot });
        self.live += 1;
        EventId { seq, slot }
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was pending and is now cancelled, `false`
    /// if it had already fired or been cancelled. O(1): the backend item is
    /// removed lazily when it reaches the front — or eagerly by the
    /// compaction sweep once stale items exceed half the live count.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.entries.get_mut(id.slot) {
            Some(entry) if entry.seq == id.seq && !entry.cancelled && entry.payload.is_some() => {
                entry.cancelled = true;
                entry.payload = None;
                self.live -= 1;
                self.dead += 1;
                if self.dead >= COMPACT_FLOOR && self.dead * 2 > self.live {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    /// Eagerly sweep lazily-cancelled items out of the backend, reclaiming
    /// their payload slots. O(stored items). Runs automatically from
    /// [`cancel`](Self::cancel) once stale items exceed half the live count
    /// (and a small floor), so long churn-heavy runs cannot accumulate an
    /// unbounded backlog of tombstones.
    pub fn compact(&mut self) {
        let entries = &self.entries;
        let free = &mut self.free;
        self.backend.retain(|item| {
            let e = &entries[item.slot];
            let live = e.seq == item.seq && !e.cancelled;
            if !live && e.seq == item.seq {
                free.push(item.slot);
            }
            live
        });
        self.dead = 0;
    }

    /// Number of items physically stored in the backend, including
    /// lazily-cancelled tombstones. Exposed for tests and benches.
    pub fn stored(&self) -> usize {
        self.backend.stored()
    }

    /// Remove and return the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// Remove and return the earliest pending event *iff* its timestamp is
    /// `<= limit`; otherwise leave the queue untouched and return `None`.
    ///
    /// This is the horizon-bounded variant the simulation loop uses: one
    /// amortized O(1)/O(log n) operation instead of a peek-scan followed by
    /// a pop. The clock only advances when an event is actually returned.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            let Some(item) = self.backend.take_min() else {
                // The scan may have consumed trailing cancelled items and
                // left the cursor at their (future) windows; rewind it so
                // later schedules cannot land behind it.
                self.backend.reset_cursor(self.now.ticks());
                return None;
            };
            let entry = &mut self.entries[item.slot];
            // Stale items (recycled slot or cancelled event) are skipped.
            if entry.seq != item.seq || entry.cancelled {
                if entry.seq == item.seq {
                    self.free.push(item.slot);
                    self.dead -= 1;
                }
                continue;
            }
            if item.at > limit {
                self.backend.unpop(item, self.now.ticks());
                return None;
            }
            let payload = entry.payload.take().expect("live entry has payload");
            self.free.push(item.slot);
            self.live -= 1;
            debug_assert!(item.at >= self.now, "event queue time went backwards");
            self.now = item.at;
            return Some((item.at, payload));
        }
    }

    /// Calendar-backend diagnostics (`[pops, window_visits, fallback_scans,
    /// rebuilds, width, buckets, items]`), `None` on the heap backend.
    #[doc(hidden)]
    pub fn calendar_stats(&self) -> Option<[u64; 7]> {
        match &self.backend {
            Backend::Heap(_) => None,
            Backend::Calendar(c) => Some(c.stats()),
        }
    }

    /// Timestamp of the earliest pending event, if any, without popping it.
    ///
    /// O(n): scans the backend without mutating. Use
    /// [`pop_before`](Self::pop_before) on hot paths.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.backend
            .iter()
            .filter(|item| {
                let e = &self.entries[item.slot];
                e.seq == item.seq && !e.cancelled && e.payload.is_some()
            })
            .map(|item| item.at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// Every test runs against both backends; they must be interchangeable.
    fn on_both(test: impl Fn(EventQueue<&'static str>)) {
        test(EventQueue::with_scheduler(SchedulerKind::Heap));
        test(EventQueue::with_scheduler(SchedulerKind::Calendar));
    }

    #[test]
    fn default_scheduler_is_calendar() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.scheduler(), SchedulerKind::Calendar);
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.schedule(t(3), "c");
            q.schedule(t(1), "a");
            q.schedule(t(2), "b");
            assert_eq!(q.pop(), Some((t(1), "a")));
            assert_eq!(q.pop(), Some((t(2), "b")));
            assert_eq!(q.pop(), Some((t(3), "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = EventQueue::with_scheduler(kind);
            q.schedule(t(5), 1);
            q.schedule(t(5), 2);
            q.schedule(t(5), 3);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|mut q| {
            q.schedule(t(7), "x");
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), t(7));
        });
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(4), ());
    }

    #[test]
    fn cancel_removes_event() {
        on_both(|mut q| {
            let a = q.schedule(t(1), "a");
            q.schedule(t(2), "b");
            assert!(q.cancel(a));
            assert!(!q.cancel(a), "double cancel reports false");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((t(2), "b")));
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        on_both(|mut q| {
            let a = q.schedule(t(1), "a");
            q.pop();
            assert!(!q.cancel(a));
        });
    }

    #[test]
    fn slot_recycling_does_not_confuse_ids() {
        on_both(|mut q| {
            let a = q.schedule(t(1), "x");
            q.pop(); // frees slot 0
            let b = q.schedule(t(2), "y"); // reuses slot 0
            assert!(!q.cancel(a), "stale id must not cancel the new event");
            assert!(q.cancel(b));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        on_both(|mut q| {
            let a = q.schedule(t(1), "x");
            q.schedule(t(2), "y");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(t(2)));
        });
    }

    #[test]
    fn pop_before_respects_the_limit() {
        on_both(|mut q| {
            q.schedule(t(1), "a");
            q.schedule(t(5), "b");
            assert_eq!(q.pop_before(t(3)), Some((t(1), "a")));
            assert_eq!(q.pop_before(t(3)), None);
            assert_eq!(q.len(), 1, "over-limit event stays queued");
            assert_eq!(q.now(), t(1), "clock must not advance past the limit");
            assert_eq!(q.pop_before(t(5)), Some((t(5), "b")));
        });
    }

    #[test]
    fn pop_before_discards_stale_items_without_advancing() {
        on_both(|mut q| {
            let a = q.schedule(t(1), "a");
            q.schedule(t(9), "z");
            q.cancel(a);
            assert_eq!(q.pop_before(t(3)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((t(9), "z")));
        });
    }

    #[test]
    fn schedule_behind_a_discarded_cancelled_future_event() {
        // Regression: draining a cancelled far-future event must not leave
        // the calendar cursor ahead of the clock, or an event scheduled
        // between `now` and the cancelled time would be missed or reordered.
        on_both(|mut q| {
            q.schedule(t(1), "first");
            let far = q.schedule(t(100), "cancelled");
            assert_eq!(q.pop(), Some((t(1), "first"))); // now = 1s
            q.cancel(far);
            assert_eq!(q.pop(), None, "only a cancelled event remains");
            q.schedule(t(2), "early");
            q.schedule(t(50), "late");
            assert_eq!(q.pop(), Some((t(2), "early")));
            assert_eq!(q.pop(), Some((t(50), "late")));
        });
    }

    #[test]
    fn schedule_behind_an_over_limit_event() {
        // Regression: pop_before must rewind the cursor when it re-inserts
        // an over-the-horizon event, or an earlier later-scheduled event
        // would be missed by the wheel sweep.
        on_both(|mut q| {
            q.schedule(t(1), "first");
            q.schedule(t(100), "far");
            assert_eq!(q.pop(), Some((t(1), "first"))); // now = 1s
            assert_eq!(q.pop_before(t(10)), None, "far event is over limit");
            q.schedule(t(2), "early");
            assert_eq!(q.pop(), Some((t(2), "early")));
            assert_eq!(q.pop(), Some((t(100), "far")));
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = EventQueue::with_scheduler(kind);
            q.schedule(t(1), 1u32);
            let (now, v) = q.pop().unwrap();
            assert_eq!(v, 1);
            q.schedule(now + SimDuration::from_secs(1), 2);
            q.schedule(now + SimDuration::from_secs(3), 4);
            q.schedule(now + SimDuration::from_secs(2), 3);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            assert_eq!(order, vec![2, 3, 4]);
        }
    }

    #[test]
    fn compaction_bounds_stale_backlog() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = EventQueue::with_scheduler(kind);
            let mut ids = Vec::new();
            for i in 0..(COMPACT_FLOOR as u64 * 4) {
                ids.push(q.schedule(SimTime::from_ticks(1000 + i), i));
            }
            // Cancel everything but the last few: compaction must kick in.
            let keep = 8;
            for id in &ids[..ids.len() - keep] {
                assert!(q.cancel(*id));
            }
            assert_eq!(q.len(), keep);
            assert!(
                q.stored() <= q.len() + COMPACT_FLOOR,
                "{kind:?}: stored {} items for {} live",
                q.stored(),
                q.len()
            );
            // Survivors still pop in order.
            let survivors: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            let expect: Vec<u64> = (ids.len() as u64 - keep as u64..ids.len() as u64).collect();
            assert_eq!(survivors, expect);
        }
    }

    #[test]
    fn explicit_compact_reclaims_slots() {
        let mut q = EventQueue::with_scheduler(SchedulerKind::Heap);
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        assert_eq!(q.stored(), 2);
        q.compact();
        assert_eq!(q.stored(), 1);
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn large_volume_stays_sorted() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut rng = crate::rng::Rng::new(99);
            let mut q = EventQueue::with_scheduler(kind);
            for _ in 0..10_000 {
                let at = SimTime::from_ticks(rng.below(1_000_000));
                q.schedule(at, at);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, payload)) = q.pop() {
                assert_eq!(at, payload);
                assert!(at >= last);
                last = at;
            }
        }
    }
}
