//! Causal trace context: the identity a traced cause carries through the
//! simulation.
//!
//! A [`TraceCtx`] names one *trace* (a query or a reconfiguration round,
//! minted where the traffic originates) and one position inside it: the
//! span of the event that most recently happened on this causal path
//! (`span_seq`) and the span of the event before that (`parent_id`).
//! Recording points allocate a fresh span, link it under `span_seq` via
//! [`child`](TraceCtx::child), and stamp the advanced context back onto
//! whatever they forward — so every message always carries the span of the
//! last recorded event on its own path, and the recorded events form a
//! parent-linked tree per trace.
//!
//! The context is *inert metadata*: no protocol machine branches on it, it
//! never contributes to wire sizes, and span allocation draws no
//! randomness — a traced run is bit-identical to an untraced one.
//! [`TraceCtx::NONE`] (all zeros) marks untraced traffic; id `0` is never
//! allocated.

/// Causal position of a message or event inside one trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace (query / reconfiguration round) this belongs to; 0 = none.
    pub trace_id: u64,
    /// Span of the event *before* the most recent one on this path
    /// (0 = the most recent event is the trace root).
    pub parent_id: u64,
    /// Span of the most recent recorded event on this path; the next
    /// recorded event links under it.
    pub span_seq: u64,
}

impl TraceCtx {
    /// The untraced context (all zeros). Carried by all traffic when
    /// tracing is disabled, and by background traffic (HELLO beacons,
    /// silence-triggered RERRs) even when it is enabled.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_id: 0,
        span_seq: 0,
    };

    /// A root context for a freshly minted trace: `span` is the origin
    /// event's span.
    pub fn root(trace_id: u64, span: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_id: 0,
            span_seq: span,
        }
    }

    /// Whether this context belongs to a live trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// Advance the causal chain: the new event `span` is a child of the
    /// previous most-recent event.
    pub fn child(&self, span: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_id: self.span_seq,
            span_seq: span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!TraceCtx::NONE.is_active());
        assert_eq!(TraceCtx::default(), TraceCtx::NONE);
    }

    #[test]
    fn child_links_spans_into_a_chain() {
        let root = TraceCtx::root(7, 1);
        assert!(root.is_active());
        assert_eq!(root.parent_id, 0);
        let hop1 = root.child(2);
        assert_eq!(hop1.trace_id, 7);
        assert_eq!(hop1.parent_id, 1, "links under the root span");
        assert_eq!(hop1.span_seq, 2);
        let hop2 = hop1.child(5);
        assert_eq!((hop2.parent_id, hop2.span_seq), (2, 5));
    }
}
