//! # manet-des — deterministic discrete-event simulation engine
//!
//! The foundation of the IPDPS'03 reproduction: a minimal, fully
//! deterministic discrete-event kernel playing the role ns-2 played for the
//! paper's authors.
//!
//! Three pieces:
//!
//! * [`time`] — integer-microsecond simulation clock ([`SimTime`],
//!   [`SimDuration`]);
//! * [`queue`] — the future-event list ([`EventQueue`]) with exact
//!   `(time, insertion-sequence)` ordering and O(1) cancellation;
//! * [`rng`] — an in-tree xoshiro256++ PRNG ([`Rng`]) with hierarchical,
//!   order-insensitive stream forking, so one master seed reproduces a whole
//!   multi-threaded experiment bit-for-bit.
//!
//! Higher layers (radio, AODV, the P2P overlay) are written as pure state
//! machines; the only mutable shared state in a running world is this queue.
//!
//! ```
//! use manet_des::{EventQueue, SimTime, SimDuration, Rng};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! let mut rng = Rng::new(0xC0FFEE);
//! q.schedule(SimTime::from_secs(1), "hello");
//! q.schedule(SimTime::from_secs(1) + SimDuration::from_millis(rng.below(500)), "world");
//! while let Some((at, what)) = q.pop() {
//!     println!("{at}: {what}");
//! }
//! ```

pub mod ids;
pub mod queue;
pub mod rng;
pub mod time;

pub use ids::NodeId;
pub use queue::{EventId, EventQueue};
pub use rng::Rng;
pub use time::{SimDuration, SimTime, TICKS_PER_SECOND};

#[cfg(test)]
mod properties {
    use crate::queue::EventQueue;
    use crate::rng::Rng as SimRng;
    use crate::time::SimTime;
    use manet_testkit::{any_bool, any_u64, prop_assert, prop_assert_eq, properties, vec_of};

    properties! {
        config = manet_testkit::Config::cases(64);

        /// Events always pop in non-decreasing time order, whatever the
        /// scheduling order, with ties resolved by insertion sequence.
        fn queue_pops_sorted(times in vec_of(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), (t, i));
            }
            let mut last: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = q.pop() {
                prop_assert_eq!(at.ticks(), t);
                if let Some((lt, li)) = last {
                    prop_assert!(t > lt || (t == lt && i > li));
                }
                last = Some((t, i));
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        fn queue_cancel_subset(
            times in vec_of(0u64..1000, 1..100),
            mask in vec_of(any_bool(), 100..101),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (i, q.schedule(SimTime::from_ticks(t), i)))
                .collect();
            let mut kept = Vec::new();
            for (i, id) in &ids {
                if mask[*i % mask.len()] {
                    prop_assert!(q.cancel(*id));
                } else {
                    kept.push(*i);
                }
            }
            let mut popped: Vec<usize> = Vec::new();
            while let Some((_, i)) = q.pop() {
                popped.push(i);
            }
            popped.sort_unstable();
            kept.sort_unstable();
            prop_assert_eq!(popped, kept);
        }

        /// below(n) is always < n for any seed.
        fn rng_below_in_bounds(seed in any_u64(), bound in 1u64..1_000_000) {
            let mut r = SimRng::new(seed);
            for _ in 0..50 {
                prop_assert!(r.below(bound) < bound);
            }
        }

        /// Forked streams with equal labels are identical; stream equality is
        /// independent of other forks.
        fn rng_fork_reproducible(seed in any_u64(), label in any_u64()) {
            let parent = SimRng::new(seed);
            let mut a = parent.fork(label);
            let _noise = parent.fork(label.wrapping_add(1));
            let mut b = parent.fork(label);
            for _ in 0..20 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        /// SimTime arithmetic round-trips through seconds within a tick.
        fn time_secs_roundtrip(ticks in 0u64..u64::MAX / 2) {
            let t = SimTime::from_ticks(ticks);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            let diff = back.ticks().abs_diff(t.ticks());
            // f64 has 53 bits of mantissa; allow proportional slack.
            prop_assert!(diff <= 1 + (ticks >> 50));
        }
    }
}
