//! # manet-des — deterministic discrete-event simulation engine
//!
//! The foundation of the IPDPS'03 reproduction: a minimal, fully
//! deterministic discrete-event kernel playing the role ns-2 played for the
//! paper's authors.
//!
//! Three pieces:
//!
//! * [`time`] — integer-microsecond simulation clock ([`SimTime`],
//!   [`SimDuration`]);
//! * [`queue`] — the future-event list ([`EventQueue`]) with exact
//!   `(time, insertion-sequence)` ordering and O(1) cancellation, on either
//!   of two bit-identical scheduler backends ([`SchedulerKind`]): a binary
//!   heap and a calendar queue (ns-2's bucketed timing wheel, the default —
//!   amortized O(1) schedule/pop);
//! * [`rng`] — an in-tree xoshiro256++ PRNG ([`Rng`]) with hierarchical,
//!   order-insensitive stream forking, so one master seed reproduces a whole
//!   multi-threaded experiment bit-for-bit.
//!
//! A fourth piece serves the sharded parallel world: [`keyed`] provides
//! [`KeyedQueue`], a future-event list that breaks timestamp ties with an
//! intrinsic [`EventKey`] instead of insertion order, and [`Lookahead`],
//! the conservative synchronization slack.
//!
//! Plus one shared piece of metadata: [`trace`] defines [`TraceCtx`], the
//! inert causal-trace context every layer above can carry on its messages
//! without perturbing a run.
//!
//! Two further pieces serve the sim-to-real split: [`substrate`] defines
//! [`Substrate`], the seam behind which the DES and the real-time UDP
//! driver are interchangeable hosts for the same protocol stacks, and
//! [`wire`] holds the byte-exact encoding primitives ([`WireReader`],
//! [`WireError`]) every layer's codec builds on.
//!
//! Higher layers (radio, AODV, the P2P overlay) are written as pure state
//! machines; the only mutable shared state in a running world is this queue.
//!
//! ```
//! use manet_des::{EventQueue, SimTime, SimDuration, Rng};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! let mut rng = Rng::new(0xC0FFEE);
//! q.schedule(SimTime::from_secs(1), "hello");
//! q.schedule(SimTime::from_secs(1) + SimDuration::from_millis(rng.below(500)), "world");
//! while let Some((at, what)) = q.pop() {
//!     println!("{at}: {what}");
//! }
//! ```

mod calendar;
pub mod ids;
pub mod keyed;
pub mod queue;
pub mod rng;
pub mod substrate;
pub mod time;
pub mod trace;
pub mod wire;

pub use ids::NodeId;
pub use keyed::{EventKey, KeyedQueue, Lookahead};
pub use queue::{EventId, EventQueue, SchedulerKind};
pub use rng::Rng;
pub use substrate::Substrate;
pub use time::{SimDuration, SimTime, TICKS_PER_SECOND};
pub use trace::TraceCtx;
pub use wire::{WireError, WireReader};

#[cfg(test)]
mod properties {
    use crate::queue::{EventQueue, SchedulerKind};
    use crate::rng::Rng as SimRng;
    use crate::time::SimTime;
    use manet_testkit::{any_bool, any_u64, prop_assert, prop_assert_eq, properties, vec_of};

    properties! {
        config = manet_testkit::Config::cases(64);

        /// The heap and calendar-queue backends are observationally
        /// identical: fed the same interleaving of schedules, cancels,
        /// bounded pops and plain pops — with heavy same-timestamp tie
        /// pressure — they report the same cancel outcomes and pop the same
        /// `(time, payload)` sequence.
        fn schedulers_pop_identically(
            ops in vec_of((0u8..4, 0u64..50), 1..400),
        ) {
            let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
            let mut cal = EventQueue::with_scheduler(SchedulerKind::Calendar);
            prop_assert_eq!(cal.scheduler(), SchedulerKind::Calendar);
            // Logical event index -> per-queue id (slot allocation is a
            // backend detail, so ids are tracked per queue, not shared).
            let mut heap_ids = Vec::new();
            let mut cal_ids = Vec::new();
            let mut scheduled = 0u64;
            for (op, x) in ops {
                match op {
                    // Schedule at a coarse timestamp: plenty of exact ties.
                    0 | 1 => {
                        let at = SimTime::from_ticks(heap.now().ticks() + (x / 10) * 1000);
                        heap_ids.push(heap.schedule(at, scheduled));
                        cal_ids.push(cal.schedule(at, scheduled));
                        scheduled += 1;
                    }
                    // Cancel an arbitrary previously scheduled event.
                    2 if !heap_ids.is_empty() => {
                        let i = (x as usize) % heap_ids.len();
                        let a = heap.cancel(heap_ids[i]);
                        let b = cal.cancel(cal_ids[i]);
                        prop_assert_eq!(a, b, "cancel outcome diverged");
                    }
                    // Pop (sometimes horizon-bounded).
                    _ => {
                        let got = if x % 3 == 0 {
                            let limit = SimTime::from_ticks(
                                heap.now().ticks() + (x % 7) * 1000,
                            );
                            (heap.pop_before(limit), cal.pop_before(limit))
                        } else {
                            (heap.pop(), cal.pop())
                        };
                        prop_assert_eq!(got.0, got.1, "pop diverged");
                        prop_assert_eq!(heap.now(), cal.now());
                    }
                }
                prop_assert_eq!(heap.len(), cal.len());
            }
            // Drain: the tails must match exactly too.
            loop {
                let (a, b) = (heap.pop(), cal.pop());
                prop_assert_eq!(a, b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }

        /// Events always pop in non-decreasing time order, whatever the
        /// scheduling order, with ties resolved by insertion sequence.
        fn queue_pops_sorted(times in vec_of(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), (t, i));
            }
            let mut last: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = q.pop() {
                prop_assert_eq!(at.ticks(), t);
                if let Some((lt, li)) = last {
                    prop_assert!(t > lt || (t == lt && i > li));
                }
                last = Some((t, i));
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        fn queue_cancel_subset(
            times in vec_of(0u64..1000, 1..100),
            mask in vec_of(any_bool(), 100..101),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (i, q.schedule(SimTime::from_ticks(t), i)))
                .collect();
            let mut kept = Vec::new();
            for (i, id) in &ids {
                if mask[*i % mask.len()] {
                    prop_assert!(q.cancel(*id));
                } else {
                    kept.push(*i);
                }
            }
            let mut popped: Vec<usize> = Vec::new();
            while let Some((_, i)) = q.pop() {
                popped.push(i);
            }
            popped.sort_unstable();
            kept.sort_unstable();
            prop_assert_eq!(popped, kept);
        }

        /// below(n) is always < n for any seed.
        fn rng_below_in_bounds(seed in any_u64(), bound in 1u64..1_000_000) {
            let mut r = SimRng::new(seed);
            for _ in 0..50 {
                prop_assert!(r.below(bound) < bound);
            }
        }

        /// Forked streams with equal labels are identical; stream equality is
        /// independent of other forks.
        fn rng_fork_reproducible(seed in any_u64(), label in any_u64()) {
            let parent = SimRng::new(seed);
            let mut a = parent.fork(label);
            let _noise = parent.fork(label.wrapping_add(1));
            let mut b = parent.fork(label);
            for _ in 0..20 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        /// SimTime arithmetic round-trips through seconds within a tick.
        fn time_secs_roundtrip(ticks in 0u64..u64::MAX / 2) {
            let t = SimTime::from_ticks(ticks);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            let diff = back.ticks().abs_diff(t.ticks());
            // f64 has 53 bits of mantissa; allow proportional slack.
            prop_assert!(diff <= 1 + (ticks >> 50));
        }
    }
}
