//! # manet-graph — graph analysis for overlays and radio topologies
//!
//! Two consumers:
//!
//! * the Fig 5–6 metric "minimum number of hops from the source to the peer
//!   holding the information" — BFS over the instantaneous radio
//!   connectivity graph ([`Graph::bfs_distances`]);
//! * the small-world discussion (§6.1.2): clustering coefficient,
//!   characteristic path length and the Watts–Strogatz comparison against
//!   random-graph baselines ([`SmallWorld`]).

pub mod analysis;
pub mod graph;

pub use analysis::{small_world, SmallWorld};
pub use graph::Graph;
