//! Small-world analysis (paper §6.1.2).
//!
//! A graph is "small-world" (Watts–Strogatz) when its clustering
//! coefficient stays near a regular lattice's while its characteristic path
//! length drops near a random graph's. The paper quotes the standard
//! asymptotics: regular lattices have `L ≈ n / 2k`, random graphs
//! `L ≈ ln n / ln k`, with `k` the mean degree.
//!
//! [`small_world`] computes the observed `C` and `L` plus those baselines
//! and the usual sigma index `(C/C_rand) / (L/L_rand)`; `sigma >> 1` is the
//! small-world signature. The Random algorithm's long links should push
//! sigma above the Regular algorithm's — the effect the authors looked for
//! (and, in their small scenarios, could not yet observe).

use crate::graph::Graph;

/// Observed metrics plus analytic baselines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallWorld {
    /// Vertices considered (the largest component).
    pub n: usize,
    /// Mean degree of the largest component.
    pub k: f64,
    /// Observed average clustering coefficient.
    pub clustering: f64,
    /// Observed characteristic path length.
    pub path_length: f64,
    /// Random-graph clustering baseline `k / n`.
    pub c_random: f64,
    /// Random-graph path-length baseline `ln n / ln k`.
    pub l_random: f64,
    /// Regular-lattice path-length baseline `n / 2k`.
    pub l_regular: f64,
    /// `(C / C_rand) / (L / L_rand)`; `NaN` when undefined.
    pub sigma: f64,
}

/// Analyze the largest connected component of `g`. Returns `None` when the
/// component is too small for the metrics to mean anything (< 4 vertices or
/// mean degree <= 1).
pub fn small_world(g: &Graph) -> Option<SmallWorld> {
    let comps = g.components();
    let comp = comps.first()?;
    if comp.len() < 4 {
        return None;
    }
    // Re-index the component into its own graph.
    let index_of = |v: u32| comp.binary_search(&v).expect("component vertex") as u32;
    let mut sub = Graph::new(comp.len());
    for &v in comp {
        for &w in g.neighbors(v) {
            if v < w && comp.binary_search(&w).is_ok() {
                sub.add_edge(index_of(v), index_of(w));
            }
        }
    }
    let n = sub.len();
    let k = sub.avg_degree();
    if k <= 1.0 {
        return None;
    }
    let clustering = sub.avg_clustering();
    let path_length = sub.characteristic_path_length()?;
    let c_random = k / n as f64;
    let l_random = (n as f64).ln() / k.ln();
    let l_regular = n as f64 / (2.0 * k);
    let sigma = if c_random > 0.0 && l_random > 0.0 && path_length > 0.0 {
        (clustering / c_random) / (path_length / l_random)
    } else {
        f64::NAN
    };
    Some(SmallWorld {
        n,
        k,
        clustering,
        path_length,
        c_random,
        l_random,
        l_regular,
        sigma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::Rng;

    /// A ring lattice: n vertices each linked to the k/2 nearest on both
    /// sides — the Watts–Strogatz starting point.
    fn ring_lattice(n: u32, k: u32) -> Graph {
        let mut g = Graph::new(n as usize);
        for v in 0..n {
            for j in 1..=(k / 2) {
                g.add_edge(v, (v + j) % n);
            }
        }
        g
    }

    /// Rewire a fraction of the lattice's edges randomly (Watts–Strogatz).
    fn rewire(g: Graph, p: f64, rng: &mut Rng) -> Graph {
        let n = g.len() as u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|v| {
                g.neighbors(v)
                    .iter()
                    .filter(move |&&w| w > v)
                    .map(move |&w| (v, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut out = Graph::new(n as usize);
        for (a, b) in edges {
            if rng.chance(p) {
                // Redirect b to a random non-a vertex (collisions are fine,
                // add_edge dedups).
                let mut c = rng.below(n as u64) as u32;
                if c == a {
                    c = (c + 1) % n;
                }
                out.add_edge(a, c);
            } else {
                out.add_edge(a, b);
            }
        }
        out
    }

    #[test]
    fn lattice_metrics_match_theory() {
        let g = ring_lattice(100, 6);
        let sw = small_world(&g).unwrap();
        assert_eq!(sw.n, 100);
        assert!((sw.k - 6.0).abs() < 1e-9);
        // Ring lattice clustering: 3(k-2) / 4(k-1) = 0.6 for k = 6.
        assert!((sw.clustering - 0.6).abs() < 0.01, "C = {}", sw.clustering);
        // Path length near n/2k = 8.33.
        assert!(
            (sw.path_length - sw.l_regular).abs() < sw.l_regular * 0.1,
            "L = {}, expected ≈ {}",
            sw.path_length,
            sw.l_regular
        );
    }

    #[test]
    fn small_rewiring_gives_small_world_signature() {
        let mut rng = Rng::new(77);
        let lattice = ring_lattice(200, 8);
        let sw_lattice = small_world(&lattice).unwrap();
        let rewired = rewire(lattice.clone(), 0.05, &mut rng);
        let sw_rw = small_world(&rewired).unwrap();
        // Path length collapses...
        assert!(
            sw_rw.path_length < sw_lattice.path_length * 0.7,
            "L {} vs lattice {}",
            sw_rw.path_length,
            sw_lattice.path_length
        );
        // ...while clustering stays comparatively high.
        assert!(
            sw_rw.clustering > sw_lattice.clustering * 0.5,
            "C {} vs lattice {}",
            sw_rw.clustering,
            sw_lattice.clustering
        );
        // And sigma grows markedly.
        assert!(
            sw_rw.sigma > sw_lattice.sigma * 1.5,
            "sigma {} vs {}",
            sw_rw.sigma,
            sw_lattice.sigma
        );
    }

    #[test]
    fn analysis_uses_largest_component() {
        let mut g = ring_lattice(50, 4);
        // A far-away tiny component must not skew the metrics.
        let mut big = Graph::new(53);
        for v in 0..50u32 {
            for &w in g.neighbors(v) {
                if w > v {
                    big.add_edge(v, w);
                }
            }
        }
        big.add_edge(50, 51);
        big.add_edge(51, 52);
        let sw_iso = small_world(&big).unwrap();
        let sw_ref = small_world(&g).unwrap();
        assert_eq!(sw_iso.n, 50);
        assert!((sw_iso.path_length - sw_ref.path_length).abs() < 1e-9);
        g.add_edge(0, 1);
    }

    #[test]
    fn degenerate_graphs_yield_none() {
        assert!(small_world(&Graph::new(0)).is_none());
        assert!(small_world(&Graph::new(10)).is_none(), "edgeless");
        let tiny = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(small_world(&tiny).is_none(), "below 4 vertices");
        // A long path has mean degree just under 2: allowed.
        let path = Graph::from_edges(10, (0..9).map(|i| (i, i + 1)));
        assert!(small_world(&path).is_some());
    }
}
