//! A compact undirected graph with the traversals the metrics need.

use std::collections::VecDeque;

/// An undirected graph over dense vertex ids `0..n`.
///
/// Parallel edges are collapsed; self-loops are rejected. Neighbor lists
/// are kept sorted for deterministic iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Insert the undirected edge `a — b` (idempotent). Panics on
    /// self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        if let Err(pos) = self.adj[a as usize].binary_search(&b) {
            self.adj[a as usize].insert(pos, b);
        }
        if let Err(pos) = self.adj[b as usize].binary_search(&a) {
            self.adj[b as usize].insert(pos, a);
        }
    }

    /// Whether the edge `a — b` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj
            .get(a as usize)
            .is_some_and(|ns| ns.binary_search(&b).is_ok())
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// BFS hop distances from `src`; `None` for unreachable vertices.
    pub fn bfs_distances(&self, src: u32) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.adj.len()];
        if (src as usize) >= self.adj.len() {
            return dist;
        }
        dist[src as usize] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize].expect("queued vertices have distances");
            for &w in &self.adj[v as usize] {
                if dist[w as usize].is_none() {
                    dist[w as usize] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Minimum hop distance from `src` to any vertex in `targets`.
    pub fn min_distance_to_any(&self, src: u32, targets: &[u32]) -> Option<u32> {
        let dist = self.bfs_distances(src);
        targets
            .iter()
            .filter_map(|&t| dist.get(t as usize).copied().flatten())
            .min()
    }

    /// Connected components as sorted vertex lists, largest first (ties by
    /// smallest vertex).
    pub fn components(&self) -> Vec<Vec<u32>> {
        let mut seen = vec![false; self.adj.len()];
        let mut comps = Vec::new();
        for start in 0..self.adj.len() as u32 {
            if seen[start as usize] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start as usize] = true;
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &w in &self.adj[v as usize] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        comps
    }

    /// Local clustering coefficient of `v`: existing links among its
    /// neighbors over all possible ones (`None` for degree < 2 — the
    /// coefficient is undefined there).
    pub fn clustering(&self, v: u32) -> Option<f64> {
        let ns = &self.adj[v as usize];
        let k = ns.len();
        if k < 2 {
            return None;
        }
        let mut links = 0usize;
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if self.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        Some(links as f64 * 2.0 / (k * (k - 1)) as f64)
    }

    /// Average clustering coefficient over vertices where it is defined.
    pub fn avg_clustering(&self) -> f64 {
        let vals: Vec<f64> = (0..self.adj.len() as u32)
            .filter_map(|v| self.clustering(v))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Characteristic path length: mean BFS distance over all *connected*
    /// ordered pairs. `None` when no pair is connected.
    pub fn characteristic_path_length(&self) -> Option<f64> {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for v in 0..self.adj.len() as u32 {
            for d in self.bfs_distances(v).into_iter().flatten() {
                if d > 0 {
                    total += d as u64;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            None
        } else {
            Some(total as f64 / pairs as f64)
        }
    }

    /// Mean degree.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.adj.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn edges_are_idempotent_and_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn min_distance_to_any_picks_closest_target() {
        let g = path(6);
        assert_eq!(g.min_distance_to_any(0, &[5, 2]), Some(2));
        assert_eq!(g.min_distance_to_any(0, &[0]), Some(0));
        assert_eq!(g.min_distance_to_any(0, &[]), None);
    }

    #[test]
    fn components_sorted_largest_first() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![4, 5], vec![3]]);
    }

    #[test]
    fn clustering_triangle_vs_star() {
        let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle.clustering(0), Some(1.0));
        assert_eq!(triangle.avg_clustering(), 1.0);
        let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(star.clustering(0), Some(0.0));
        assert_eq!(star.clustering(1), None, "degree 1: undefined");
        assert_eq!(star.avg_clustering(), 0.0);
    }

    #[test]
    fn clustering_partial() {
        // 0 connected to 1,2,3; only 1-2 linked among them: C = 1/3.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]);
        let c = g.clustering(0).unwrap();
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_length_of_path_graph() {
        // Path 0-1-2: distances 1,2,1,1,2,1 -> mean 8/6.
        let g = path(3);
        let l = g.characteristic_path_length().unwrap();
        assert!((l - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn path_length_ignores_disconnected_pairs() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(g.characteristic_path_length(), Some(1.0));
        let empty = Graph::new(3);
        assert_eq!(empty.characteristic_path_length(), None);
    }

    #[test]
    fn avg_degree() {
        let g = path(5);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }
}
