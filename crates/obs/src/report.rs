//! Per-run observability configuration and report.
//!
//! [`ObsConfig`] is the sink switch the simulation layer consults (kept
//! free of simulation types — cadence is plain seconds). [`ObsReport`]
//! bundles one run's registry, span profile and flight recorder; reports
//! merge deterministically across replications and export as JSONL.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json::Value;
use crate::recorder::{push_line, FlightRecorder};
use crate::registry::Registry;
use crate::span::SpanProfile;

/// The observability sink configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObsConfig {
    /// Master switch. On by default: the observed hot path is within the
    /// perf gate's obs-tax bound of the bare one, so every run ships with
    /// metrics and flight-recorder context. Off means instrumented code
    /// dispatches to a precomputed no-op sink and does nothing else —
    /// results are untouched either way (obs is fingerprint-excluded).
    pub enabled: bool,
    /// Sim-time sampling cadence for counter/gauge time series, in
    /// simulated seconds (0 disables series sampling).
    pub sample_period_secs: f64,
    /// Flight-recorder ring capacity (0 disables the recorder).
    pub recorder_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            sample_period_secs: 10.0,
            recorder_capacity: 4096,
        }
    }
}

impl ObsConfig {
    /// The default enabled configuration (10 s cadence, 4096-record ring).
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// The disabled configuration: the no-op sink, for bare-perf baselines
    /// and callers that opt out of observability.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }
}

/// Everything one run's observability produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Counters, gauges, histograms and their time series. Deterministic:
    /// identical for identical `(scenario, seed)` runs.
    pub registry: Registry,
    /// Per-phase wall-clock profile. Nondeterministic by nature; excluded
    /// from cross-run comparisons.
    pub spans: SpanProfile,
    /// The severity-tagged ring of run occurrences. Deterministic.
    pub recorder: FlightRecorder,
    /// Runs folded into this report (0 = sink was disabled).
    pub runs: u32,
}

impl ObsReport {
    /// Whether the report carries any data.
    pub fn enabled(&self) -> bool {
        self.runs > 0
    }

    /// Fold another run's report into this one. Always fold in replication
    /// order: the result is then identical whatever thread count produced
    /// the runs (see `run_replications`).
    pub fn merge(&mut self, other: &ObsReport) {
        self.registry.merge(&other.registry);
        self.spans.merge(&other.spans);
        self.recorder.merge(&other.recorder);
        self.runs += other.runs;
    }

    /// Fold one shard's report of the *same* run into this one.
    ///
    /// Shards partition a single run, so `runs` takes the maximum instead
    /// of summing — the merged report still describes one run. Counters
    /// sum (each shard owner-gates its bumps, so per-name totals partition
    /// across shards), gauges keep maxima, series merge pointwise by
    /// sample index (shards sample at identical logical points — see
    /// `ShardedWorld`). Always fold in shard order: the result is then
    /// identical whatever worker count executed the shards.
    pub fn merge_shard(&mut self, other: &ObsReport) {
        self.registry.merge(&other.registry);
        self.spans.merge(&other.spans);
        self.recorder.merge(&other.recorder);
        self.runs = self.runs.max(other.runs);
    }

    /// The full report as JSONL: a header line, one line per counter,
    /// gauge, histogram, series point and span, then the flight-recorder
    /// lines. Every line parses standalone; the `type` field names the
    /// record kind.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        push_line(
            &mut out,
            &Value::Obj(vec![
                ("type".into(), Value::Str("obs_report".into())),
                ("runs".into(), Value::Num(self.runs as f64)),
            ]),
        );
        for (name, v) in self.registry.counters() {
            push_line(
                &mut out,
                &Value::Obj(vec![
                    ("type".into(), Value::Str("counter".into())),
                    ("name".into(), Value::Str(name.into())),
                    ("value".into(), Value::Num(v as f64)),
                ]),
            );
        }
        for (name, v) in self.registry.gauges() {
            push_line(
                &mut out,
                &Value::Obj(vec![
                    ("type".into(), Value::Str("gauge".into())),
                    ("name".into(), Value::Str(name.into())),
                    ("value".into(), Value::Num(v)),
                ]),
            );
        }
        for (name, h) in self.registry.hists() {
            let buckets = h
                .nonzero()
                .into_iter()
                .map(|(floor, c)| Value::Arr(vec![Value::Num(floor as f64), Value::Num(c as f64)]))
                .collect();
            push_line(
                &mut out,
                &Value::Obj(vec![
                    ("type".into(), Value::Str("hist".into())),
                    ("name".into(), Value::Str(name.into())),
                    ("count".into(), Value::Num(h.count() as f64)),
                    ("sum".into(), Value::Num(h.sum() as f64)),
                    ("buckets".into(), Value::Arr(buckets)),
                ]),
            );
        }
        if let Value::Obj(fields) = self.registry.to_json() {
            if let Some(Value::Arr(points)) = fields
                .into_iter()
                .find(|(k, _)| k == "series")
                .map(|(_, v)| v)
            {
                for p in points {
                    let mut line = vec![("type".to_string(), Value::Str("sample".into()))];
                    if let Value::Obj(pf) = p {
                        line.extend(pf);
                    }
                    push_line(&mut out, &Value::Obj(line));
                }
            }
        }
        for (name, total, entries) in self.spans.rows() {
            push_line(
                &mut out,
                &Value::Obj(vec![
                    ("type".into(), Value::Str("span".into())),
                    ("name".into(), Value::Str(name.into())),
                    ("ms".into(), Value::Num(total.as_secs_f64() * 1e3)),
                    ("entries".into(), Value::Num(entries as f64)),
                ]),
            );
        }
        out.push_str(&self.recorder.to_jsonl());
        out
    }

    /// Write [`to_jsonl`](Self::to_jsonl) to `path`, creating parent
    /// directories.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl())
    }
}

/// Write a failure dump: a `{"type": "failure"}` header naming the label
/// and the violations, followed by the report's JSONL. Returns the path
/// written (`<dir>/failure_<label>.jsonl`).
///
/// This is what turns a red invariant check into a post-mortem artifact:
/// callers invoke it when `check_invariants`/`check_result` comes back
/// non-empty or a fault-plan run panics.
pub fn dump_failure(
    dir: &Path,
    label: &str,
    violations: &[String],
    report: &ObsReport,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("failure_{sanitized}.jsonl"));
    let mut out = String::new();
    push_line(
        &mut out,
        &Value::Obj(vec![
            ("type".into(), Value::Str("failure".into())),
            ("label".into(), Value::Str(label.into())),
            (
                "violations".into(),
                Value::Arr(violations.iter().map(|v| Value::Str(v.clone())).collect()),
            ),
        ]),
    );
    out.push_str(&report.to_jsonl());
    let mut f = std::fs::File::create(&path)?;
    f.write_all(out.as_bytes())?;
    Ok(path)
}

/// The directory failure dumps default to: `$OBS_DUMP_DIR` when set, else
/// `target/obs-dumps` relative to the current directory.
pub fn default_dump_dir() -> PathBuf {
    std::env::var_os("OBS_DUMP_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/obs-dumps"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Severity;

    fn small_report() -> ObsReport {
        let mut r = ObsReport {
            runs: 1,
            ..ObsReport::default()
        };
        let c = r.registry.counter("des.events_popped");
        r.registry.inc(c, 42);
        let g = r.registry.gauge("des.queue_depth");
        r.registry.set_gauge(g, 17.0);
        let h = r.registry.hist("radio.broadcast_fanout");
        r.registry.observe(h, 6);
        r.registry.sample(10.0);
        let s = r.spans.register("des.pop");
        r.spans.add(s, std::time::Duration::from_micros(3));
        r.recorder = FlightRecorder::new(16);
        r.recorder
            .record(1.0, Severity::Info, "join", "n1 joined".into());
        r
    }

    #[test]
    fn jsonl_roundtrip_every_line_parses() {
        let report = small_report();
        let text = report.to_jsonl();
        let mut types = Vec::new();
        for line in text.lines() {
            let v = Value::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            types.push(
                v.get("type")
                    .and_then(Value::as_str)
                    .expect("typed line")
                    .to_string(),
            );
        }
        for expect in [
            "obs_report",
            "counter",
            "gauge",
            "hist",
            "sample",
            "span",
            "recorder",
            "record",
        ] {
            assert!(
                types.iter().any(|t| t == expect),
                "missing {expect}: {types:?}"
            );
        }
    }

    #[test]
    fn merge_is_deterministic_over_fold_order_of_equal_runs() {
        // Folding [a, b] must equal folding [a, b] computed elsewhere —
        // and differ from [b, a] only in recorder order, never counters.
        let a = small_report();
        let b = small_report();
        let mut m1 = ObsReport::default();
        m1.merge(&a);
        m1.merge(&b);
        let mut m2 = ObsReport::default();
        m2.merge(&a);
        m2.merge(&b);
        assert_eq!(m1, m2);
        assert_eq!(m1.runs, 2);
        assert_eq!(m1.registry.counter_by_name("des.events_popped"), Some(84));
    }

    #[test]
    fn failure_dump_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("obs_dump_test_{}", std::process::id()));
        let report = small_report();
        let path = dump_failure(
            &dir,
            "unit/test case",
            &["member census: off by one".into()],
            &report,
        )
        .expect("dump written");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("unit_test_case"));
        let text = std::fs::read_to_string(&path).expect("readable");
        let first = Value::parse(text.lines().next().expect("nonempty")).expect("header parses");
        assert_eq!(first.get("type").and_then(Value::as_str), Some("failure"));
        assert_eq!(
            first
                .get("violations")
                .and_then(Value::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
        for line in text.lines() {
            Value::parse(line).expect("every dump line parses");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
