//! # manet-obs — dependency-free observability
//!
//! The measurement substrate for the simulator (see DESIGN.md,
//! "Observability"). Three pillars, all plain data with no external
//! dependencies and no knowledge of the simulation crates:
//!
//! * [`Registry`] — named counters, gauges and log-bucketed histograms,
//!   sampled on a sim-time cadence into per-run time series;
//! * [`SpanProfile`] — scoped wall-clock timers over hot-path regions,
//!   aggregated into a per-phase profile;
//! * [`FlightRecorder`] — a severity-tagged ring buffer of protocol
//!   occurrences, dumped as JSONL when a run fails its invariants.
//!
//! The [`causal`] module is the analysis half of causal query tracing:
//! it rebuilds per-trace causal trees from the simulator's parent-linked
//! event stream, decomposes per-query latency (route-discovery wait vs.
//! radio transit vs. processing), and exports Chrome trace-event /
//! Perfetto-loadable JSON artifacts.
//!
//! The [`slab`] module is the hot-path half of the registry: plain
//! per-subsystem counter/histogram slabs whose per-event cost is a single
//! unsynchronized slot bump, folded into the registry at sample points.
//!
//! [`ObsReport`] bundles the three for one finished run and merges
//! deterministically across replications (and owner-gated across shards
//! via [`ObsReport::merge_shard`]); [`ObsConfig`] is the switch the
//! simulation layer consults — on by default, since the observed hot path
//! is held within a few percent of the bare one by the perf gate.
//! Everything here is passive: when the sink is disabled the instrumented
//! code dispatches to a precomputed no-op sink and does no work, so
//! toggling observability never changes simulation results — only
//! wall-clock.
//!
//! The [`json`] module is the workspace's hand-rolled JSON reader/writer
//! (promoted from the bench harness); [`ObsReport::to_jsonl`] and the
//! failure dumps are built on it, and `bench` re-exports it for
//! `BENCH_RESULTS.json`.

pub mod causal;
pub mod intern;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod slab;
pub mod span;

pub use causal::{CausalEvent, CausalKind, CausalTree, PathBreakdown, TraceSummary};
pub use intern::intern;
pub use recorder::{FlightRecord, FlightRecorder, Severity};
pub use registry::{CounterId, GaugeId, HistId, Histogram, Registry};
pub use report::{ObsConfig, ObsReport};
pub use slab::{HistSlab, HistSlotId, Slab, SlotId};
pub use span::{SpanId, SpanProfile};
