//! Causal trace analysis: per-query trees, latency breakdowns, and a
//! Chrome-trace-event exporter.
//!
//! The simulation records parent-linked [`CausalEvent`]s: each names a
//! trace (one overlay query or reconfiguration round), its own span id,
//! and the span of the event that caused it. This module is the pure
//! analysis half — it knows nothing about the simulator:
//!
//! * [`build_trees`] groups a flat event stream into per-trace
//!   [`CausalTree`]s (children indexed, orphans skipped);
//! * [`CausalTree::summary`] computes the paper-metric breakdown for one
//!   query: per-delivery route-discovery wait vs. in-flight transit vs.
//!   local processing, hop counts, fan-out, and dead branches;
//! * [`artifact`] / [`events_from_artifact`] / [`validate_artifact`]
//!   round-trip the events through a JSON artifact whose `traceEvents`
//!   array is Chrome trace-event format — loadable in Perfetto or
//!   `chrome://tracing` — while the lossless `spans` array feeds
//!   re-analysis.
//!
//! Timestamps are simulation ticks, which are microseconds — exactly the
//! unit the trace-event `ts` field wants, so no conversion happens
//! anywhere.

use std::collections::HashMap;

use crate::json::Value;

/// What happened at one recorded point.
#[derive(Clone, Debug, PartialEq)]
pub enum CausalKind {
    /// A trace was minted: a query or reconfiguration round originated.
    Origin {
        /// What kind of activity this trace is (e.g. `"query"`,
        /// `"reconfig"`).
        label: String,
    },
    /// A frame left a node's radio.
    Send {
        /// Frame kind (`"rreq"`, `"rrep"`, `"rerr"`, `"data"`, `"flood"`).
        frame: String,
        /// Unicast receiver, or `None` for a broadcast.
        to: Option<u32>,
        /// Frame size on the air.
        bytes: u32,
    },
    /// A frame arrived at a node's radio.
    Recv {
        /// Frame kind, mirroring the parent send.
        frame: String,
        /// The transmitting node.
        from: u32,
    },
    /// An overlay/content payload was handed up to a member.
    Deliver {
        /// The figure category of the payload (e.g. `"query"`, `"reply"`).
        kind: String,
        /// Ad-hoc hops the payload travelled.
        hops: u8,
    },
    /// Route discovery gave up; the traced payloads were dropped.
    Unreachable {
        /// The destination that could not be reached.
        dst: u32,
    },
    /// A node armed its protocol timer on behalf of this trace (a route
    /// discovery retry is pending).
    TimerArm {
        /// When the timer will fire, in ticks.
        at: u64,
    },
}

impl CausalKind {
    /// Stable tag used in artifacts and display.
    pub fn name(&self) -> &'static str {
        match self {
            CausalKind::Origin { .. } => "origin",
            CausalKind::Send { .. } => "send",
            CausalKind::Recv { .. } => "recv",
            CausalKind::Deliver { .. } => "deliver",
            CausalKind::Unreachable { .. } => "unreachable",
            CausalKind::TimerArm { .. } => "timer",
        }
    }
}

/// One recorded causal event.
#[derive(Clone, Debug, PartialEq)]
pub struct CausalEvent {
    /// The trace this event belongs to (non-zero).
    pub trace_id: u64,
    /// This event's span id (unique within a run, non-zero).
    pub span: u64,
    /// Span of the causing event; 0 marks the trace root.
    pub parent: u64,
    /// When it happened, in simulation ticks (microseconds).
    pub t: u64,
    /// The node it happened at.
    pub node: u32,
    /// What happened.
    pub kind: CausalKind,
}

/// All retained events of one trace, children indexed by span.
#[derive(Clone, Debug)]
pub struct CausalTree {
    /// The trace id shared by every event in the tree.
    pub trace_id: u64,
    /// Events in recording (time) order; parents precede children.
    pub events: Vec<CausalEvent>,
    /// span → index into `events`.
    by_span: HashMap<u64, usize>,
    /// span → indices of events whose parent is that span.
    children: HashMap<u64, Vec<usize>>,
}

/// Latency decomposition of one delivered payload, in ticks.
///
/// The path from the trace root to the delivery is a chain of recorded
/// events; overlay processing is instantaneous in simulation time, so
/// every positive gap on the chain is attributable: a gap ending in a
/// `Recv` is radio transit, a gap ending in a `data` `Send` is time the
/// payload sat buffered waiting for route discovery, and anything else
/// (normally zero) is processing. The three always sum to `total`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathBreakdown {
    /// The member the payload reached.
    pub node: u32,
    /// Ad-hoc hops it travelled.
    pub hops: u8,
    /// End-to-end latency: delivery time − trace origin time.
    pub total: u64,
    /// Time spent waiting for AODV route discovery.
    pub discovery: u64,
    /// Time spent on the air (sum of per-hop send→recv gaps).
    pub transit: u64,
    /// Everything else (forwarding/processing; ~0 in this simulator).
    pub processing: u64,
}

/// The paper-metric summary of one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// The trace id.
    pub trace_id: u64,
    /// The origin label (`"query"`, `"reconfig"`, …); empty if the origin
    /// event was evicted.
    pub label: String,
    /// When the trace was minted, in ticks.
    pub origin_t: u64,
    /// Frames transmitted on behalf of this trace.
    pub sends: u64,
    /// Frame receptions on behalf of this trace.
    pub recvs: u64,
    /// Payloads handed up to members, each with its latency breakdown,
    /// in delivery order.
    pub deliveries: Vec<PathBreakdown>,
    /// Destinations declared unreachable under this trace.
    pub unreachable: u64,
    /// Transmissions that reached no receiver (a `Send` with no `Recv`
    /// child): radio range misses and failed unicasts.
    pub dead_branches: u64,
    /// Largest per-transmission fan-out (receivers of one broadcast).
    pub max_fanout: u64,
}

/// Group a flat event stream into per-trace trees.
///
/// Events whose parent chain does not resolve (the parent was evicted
/// from the ring buffer before export) are skipped, along with their
/// descendants, so every returned tree is internally consistent. Trees
/// come back ordered by first appearance in the stream.
pub fn build_trees(events: &[CausalEvent]) -> Vec<CausalTree> {
    let mut order: Vec<u64> = Vec::new();
    let mut trees: HashMap<u64, CausalTree> = HashMap::new();
    for e in events {
        if e.trace_id == 0 || e.span == 0 {
            continue;
        }
        let tree = trees.entry(e.trace_id).or_insert_with(|| {
            order.push(e.trace_id);
            CausalTree {
                trace_id: e.trace_id,
                events: Vec::new(),
                by_span: HashMap::new(),
                children: HashMap::new(),
            }
        });
        // Parents are always recorded before children, so one forward
        // pass resolves the chain; an orphan's descendants are orphans.
        if e.parent != 0 && !tree.by_span.contains_key(&e.parent) {
            continue;
        }
        let idx = tree.events.len();
        tree.by_span.insert(e.span, idx);
        tree.children.entry(e.parent).or_default().push(idx);
        tree.events.push(e.clone());
    }
    let mut out: Vec<CausalTree> = Vec::with_capacity(order.len());
    for id in order {
        out.push(trees.remove(&id).expect("tree just inserted"));
    }
    out
}

impl CausalTree {
    /// The event holding span `span`, if retained.
    pub fn event(&self, span: u64) -> Option<&CausalEvent> {
        self.by_span.get(&span).map(|&i| &self.events[i])
    }

    /// Direct children of span `span` (0 = the roots).
    pub fn children_of(&self, span: u64) -> impl Iterator<Item = &CausalEvent> {
        self.children
            .get(&span)
            .into_iter()
            .flatten()
            .map(|&i| &self.events[i])
    }

    /// Compute the paper-metric summary for this trace.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            trace_id: self.trace_id,
            ..TraceSummary::default()
        };
        for e in &self.events {
            match &e.kind {
                CausalKind::Origin { label } => {
                    if s.label.is_empty() {
                        s.label = label.clone();
                        s.origin_t = e.t;
                    }
                }
                CausalKind::Send { .. } => {
                    s.sends += 1;
                    let fanout = self
                        .children_of(e.span)
                        .filter(|c| matches!(c.kind, CausalKind::Recv { .. }))
                        .count() as u64;
                    s.max_fanout = s.max_fanout.max(fanout);
                    if fanout == 0 {
                        s.dead_branches += 1;
                    }
                }
                CausalKind::Recv { .. } => s.recvs += 1,
                CausalKind::Deliver { hops, .. } => {
                    s.deliveries.push(self.breakdown(e, *hops));
                }
                CausalKind::Unreachable { .. } => s.unreachable += 1,
                CausalKind::TimerArm { .. } => {}
            }
        }
        s
    }

    /// Walk from a delivery up to the root, attributing every time gap.
    fn breakdown(&self, deliver: &CausalEvent, hops: u8) -> PathBreakdown {
        let mut b = PathBreakdown {
            node: deliver.node,
            hops,
            ..PathBreakdown::default()
        };
        let mut cur = deliver;
        while cur.parent != 0 {
            let Some(parent) = self.event(cur.parent) else {
                break; // truncated chain: attribute what we saw
            };
            let gap = cur.t.saturating_sub(parent.t);
            match &cur.kind {
                CausalKind::Recv { .. } => b.transit += gap,
                CausalKind::Send { frame, .. } if frame == "data" => b.discovery += gap,
                _ => b.processing += gap,
            }
            b.total += gap;
            cur = parent;
        }
        b
    }
}

// ----------------------------------------------------------------------
// Artifact export / import
// ----------------------------------------------------------------------

/// Marker distinguishing causal-trace artifacts from other JSON files.
pub const ARTIFACT_TYPE: &str = "causal_trace";

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn event_to_span_value(e: &CausalEvent) -> Value {
    let mut fields = vec![
        ("trace".to_string(), num(e.trace_id)),
        ("span".to_string(), num(e.span)),
        ("parent".to_string(), num(e.parent)),
        ("t".to_string(), num(e.t)),
        ("node".to_string(), num(e.node as u64)),
        ("kind".to_string(), Value::Str(e.kind.name().into())),
    ];
    match &e.kind {
        CausalKind::Origin { label } => {
            fields.push(("label".into(), Value::Str(label.clone())));
        }
        CausalKind::Send { frame, to, bytes } => {
            fields.push(("frame".into(), Value::Str(frame.clone())));
            if let Some(to) = to {
                fields.push(("to".into(), num(*to as u64)));
            }
            fields.push(("bytes".into(), num(*bytes as u64)));
        }
        CausalKind::Recv { frame, from } => {
            fields.push(("frame".into(), Value::Str(frame.clone())));
            fields.push(("from".into(), num(*from as u64)));
        }
        CausalKind::Deliver { kind, hops } => {
            fields.push(("msg".into(), Value::Str(kind.clone())));
            fields.push(("hops".into(), num(*hops as u64)));
        }
        CausalKind::Unreachable { dst } => {
            fields.push(("dst".into(), num(*dst as u64)));
        }
        CausalKind::TimerArm { at } => {
            fields.push(("at".into(), num(*at)));
        }
    }
    Value::Obj(fields)
}

/// One Chrome trace-event object. Every event carries the full
/// `ph`/`ts`/`pid`/`tid`/`name` quintet (`pid` = trace, `tid` = node) so
/// structural validation is uniform.
fn trace_event(
    ph: &str,
    ts: u64,
    pid: u64,
    tid: u64,
    name: String,
    extra: Vec<(String, Value)>,
) -> Value {
    let mut fields = vec![
        ("ph".to_string(), Value::Str(ph.into())),
        ("ts".to_string(), num(ts)),
        ("pid".to_string(), num(pid)),
        ("tid".to_string(), num(tid)),
        ("name".to_string(), Value::Str(name)),
    ];
    fields.extend(extra);
    Value::Obj(fields)
}

/// Build the JSON artifact for an event stream: a JSON object with a
/// Perfetto/`chrome://tracing`-loadable `traceEvents` array (both viewers
/// ignore unknown top-level keys) plus the lossless `spans` array that
/// [`events_from_artifact`] reads back.
///
/// Orphaned events (parent evicted before export) are excluded — the
/// count is recorded under `"orphaned"` so truncation stays visible.
pub fn artifact(events: &[CausalEvent]) -> Value {
    let trees = build_trees(events);
    let kept: usize = trees.iter().map(|t| t.events.len()).sum();
    let mut spans = Vec::with_capacity(kept);
    let mut trace_events = Vec::new();
    for tree in &trees {
        // Perfetto shows one "process" per trace; name it from the origin.
        let label = tree
            .events
            .iter()
            .find_map(|e| match &e.kind {
                CausalKind::Origin { label } => Some(label.as_str()),
                _ => None,
            })
            .unwrap_or("trace");
        trace_events.push(trace_event(
            "M",
            0,
            tree.trace_id,
            0,
            "process_name".into(),
            vec![(
                "args".into(),
                Value::Obj(vec![(
                    "name".into(),
                    Value::Str(format!("{label} #{}", tree.trace_id)),
                )]),
            )],
        ));
        for e in &tree.events {
            spans.push(event_to_span_value(e));
            match &e.kind {
                // Each reception becomes a complete ("X") slice on the
                // sender's track spanning the frame's time on the air.
                CausalKind::Recv { frame, from } => {
                    let send_t = tree.event(e.parent).map(|p| p.t).unwrap_or(e.t);
                    trace_events.push(trace_event(
                        "X",
                        send_t,
                        e.trace_id,
                        *from as u64,
                        format!("{frame}→n{}", e.node),
                        vec![("dur".into(), num(e.t.saturating_sub(send_t)))],
                    ));
                }
                CausalKind::Origin { label } => {
                    trace_events.push(trace_event(
                        "i",
                        e.t,
                        e.trace_id,
                        e.node as u64,
                        format!("origin:{label}"),
                        vec![("s".into(), Value::Str("t".into()))],
                    ));
                }
                CausalKind::Deliver { kind, hops } => {
                    trace_events.push(trace_event(
                        "i",
                        e.t,
                        e.trace_id,
                        e.node as u64,
                        format!("deliver:{kind} ({hops} hops)"),
                        vec![("s".into(), Value::Str("t".into()))],
                    ));
                }
                CausalKind::Unreachable { dst } => {
                    trace_events.push(trace_event(
                        "i",
                        e.t,
                        e.trace_id,
                        e.node as u64,
                        format!("unreachable:n{dst}"),
                        vec![("s".into(), Value::Str("t".into()))],
                    ));
                }
                CausalKind::Send { .. } | CausalKind::TimerArm { .. } => {}
            }
        }
    }
    Value::Obj(vec![
        ("type".into(), Value::Str(ARTIFACT_TYPE.into())),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        ("orphaned".into(), num((events.len() - kept) as u64)),
        ("traceEvents".into(), Value::Arr(trace_events)),
        ("spans".into(), Value::Arr(spans)),
    ])
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

/// Read the lossless `spans` array of an artifact back into events.
pub fn events_from_artifact(doc: &Value) -> Result<Vec<CausalEvent>, String> {
    if field_str(doc, "type")? != ARTIFACT_TYPE {
        return Err("not a causal_trace artifact".into());
    }
    let spans = doc
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("missing 'spans' array")?;
    let mut out = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let err = |e: String| format!("span {i}: {e}");
        let kind = match field_str(s, "kind").map_err(err)? {
            "origin" => CausalKind::Origin {
                label: field_str(s, "label").map_err(err)?.to_string(),
            },
            "send" => CausalKind::Send {
                frame: field_str(s, "frame").map_err(err)?.to_string(),
                to: s.get("to").and_then(Value::as_f64).map(|n| n as u32),
                bytes: field_u64(s, "bytes").map_err(err)? as u32,
            },
            "recv" => CausalKind::Recv {
                frame: field_str(s, "frame").map_err(err)?.to_string(),
                from: field_u64(s, "from").map_err(err)? as u32,
            },
            "deliver" => CausalKind::Deliver {
                kind: field_str(s, "msg").map_err(err)?.to_string(),
                hops: field_u64(s, "hops").map_err(err)? as u8,
            },
            "unreachable" => CausalKind::Unreachable {
                dst: field_u64(s, "dst").map_err(err)? as u32,
            },
            "timer" => CausalKind::TimerArm {
                at: field_u64(s, "at").map_err(err)?,
            },
            other => return Err(format!("span {i}: unknown kind '{other}'")),
        };
        out.push(CausalEvent {
            trace_id: field_u64(s, "trace").map_err(err)?,
            span: field_u64(s, "span").map_err(err)?,
            parent: field_u64(s, "parent").map_err(err)?,
            t: field_u64(s, "t").map_err(err)?,
            node: field_u64(s, "node").map_err(err)? as u32,
            kind,
        });
    }
    Ok(out)
}

/// Structurally validate an artifact:
///
/// * it is a `causal_trace` object;
/// * every `traceEvents` entry carries `ph`/`ts`/`pid`/`tid`/`name`;
/// * every span's parent resolves within its own trace;
/// * timestamps are monotone along parent links (a child never precedes
///   its cause);
/// * span ids are unique.
pub fn validate_artifact(doc: &Value) -> Result<(), String> {
    if field_str(doc, "type")? != ARTIFACT_TYPE {
        return Err("not a causal_trace artifact".into());
    }
    let tevs = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    for (i, ev) in tevs.iter().enumerate() {
        let err = |e: String| format!("traceEvents[{i}]: {e}");
        let ph = field_str(ev, "ph").map_err(err)?;
        if !matches!(ph, "X" | "i" | "M") {
            return Err(format!("traceEvents[{i}]: unexpected ph '{ph}'"));
        }
        field_u64(ev, "ts").map_err(err)?;
        field_u64(ev, "pid").map_err(err)?;
        field_u64(ev, "tid").map_err(err)?;
        field_str(ev, "name").map_err(err)?;
    }
    let events = events_from_artifact(doc)?;
    // (trace, span) → t, for parent resolution and monotonicity.
    let mut seen: HashMap<(u64, u64), u64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.trace_id == 0 || e.span == 0 {
            return Err(format!("span {i}: zero trace/span id"));
        }
        if seen.insert((e.trace_id, e.span), e.t).is_some() {
            return Err(format!("span {i}: duplicate span id {}", e.span));
        }
        if e.parent != 0 {
            let Some(&pt) = seen.get(&(e.trace_id, e.parent)) else {
                return Err(format!(
                    "span {i}: parent {} unresolved in trace {}",
                    e.parent, e.trace_id
                ));
            };
            if e.t < pt {
                return Err(format!("span {i}: t {} precedes its parent's t {pt}", e.t));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, span: u64, parent: u64, t: u64, node: u32, kind: CausalKind) -> CausalEvent {
        CausalEvent {
            trace_id: trace,
            span,
            parent,
            t,
            node,
            kind,
        }
    }

    fn send(frame: &str) -> CausalKind {
        CausalKind::Send {
            frame: frame.into(),
            to: None,
            bytes: 40,
        }
    }

    fn recv(frame: &str, from: u32) -> CausalKind {
        CausalKind::Recv {
            frame: frame.into(),
            from,
        }
    }

    /// A query that waits 2000 ticks for route discovery, then travels
    /// two radio hops of 150 ticks each:
    ///
    /// origin(n0, t=0) ─ send data(t=2000) ─ recv(n1, t=2150)
    ///                  ─ send data(n1, t=2150) ─ recv(n2, t=2300)
    ///                  ─ deliver(n2, t=2300)
    fn two_hop_query() -> Vec<CausalEvent> {
        vec![
            ev(
                1,
                1,
                0,
                0,
                0,
                CausalKind::Origin {
                    label: "query".into(),
                },
            ),
            ev(1, 2, 1, 2000, 0, send("data")),
            ev(1, 3, 2, 2150, 1, recv("data", 0)),
            ev(1, 4, 3, 2150, 1, send("data")),
            ev(1, 5, 4, 2300, 2, recv("data", 1)),
            ev(
                1,
                6,
                5,
                2300,
                2,
                CausalKind::Deliver {
                    kind: "query".into(),
                    hops: 2,
                },
            ),
        ]
    }

    #[test]
    fn breakdown_attributes_discovery_transit_processing() {
        let trees = build_trees(&two_hop_query());
        assert_eq!(trees.len(), 1);
        let s = trees[0].summary();
        assert_eq!(s.label, "query");
        assert_eq!(s.sends, 2);
        assert_eq!(s.recvs, 2);
        assert_eq!(s.deliveries.len(), 1);
        let d = s.deliveries[0];
        assert_eq!(d.node, 2);
        assert_eq!(d.hops, 2);
        assert_eq!(d.discovery, 2000, "buffered waiting for the route");
        assert_eq!(d.transit, 300, "two 150-tick hops on the air");
        assert_eq!(d.processing, 0);
        assert_eq!(d.total, 2300);
        assert_eq!(d.total, d.discovery + d.transit + d.processing);
    }

    #[test]
    fn fanout_and_dead_branches() {
        // One broadcast heard by two nodes, plus one that nobody heard.
        let events = vec![
            ev(
                3,
                1,
                0,
                0,
                0,
                CausalKind::Origin {
                    label: "reconfig".into(),
                },
            ),
            ev(3, 2, 1, 10, 0, send("flood")),
            ev(3, 3, 2, 20, 1, recv("flood", 0)),
            ev(3, 4, 2, 25, 2, recv("flood", 0)),
            ev(3, 5, 3, 30, 1, send("flood")),
        ];
        let s = build_trees(&events)[0].summary();
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.dead_branches, 1, "the second send reached nobody");
    }

    #[test]
    fn orphans_and_their_descendants_are_skipped() {
        let mut events = two_hop_query();
        events.remove(1); // evict the first data send: spans 3..6 orphaned
        let trees = build_trees(&events);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].events.len(), 1, "only the origin survives");
    }

    #[test]
    fn artifact_roundtrips_and_validates() {
        let events = two_hop_query();
        let doc = artifact(&events);
        validate_artifact(&doc).expect("fresh artifact must validate");
        // Round-trip through text too, as obs_check will see it.
        let reparsed = Value::parse(&doc.render()).expect("renders as valid JSON");
        validate_artifact(&reparsed).expect("parsed artifact must validate");
        assert_eq!(events_from_artifact(&reparsed).unwrap(), events);
    }

    #[test]
    fn validation_rejects_broken_artifacts() {
        // artifact() filters orphans by construction, so corruption has
        // to be injected into the document itself — exactly what a buggy
        // writer or a hand-edited file would look like.
        let corrupt = |key: &str, val: Value| {
            let Value::Obj(mut fields) = artifact(&two_hop_query()) else {
                unreachable!()
            };
            for (k, v) in &mut fields {
                if k == "spans" {
                    let Value::Arr(spans) = v else { unreachable!() };
                    // Span index 2 is the first recv (t=2150).
                    let Value::Obj(sf) = &mut spans[2] else {
                        unreachable!()
                    };
                    for (sk, sv) in sf.iter_mut() {
                        if sk == key {
                            *sv = val.clone();
                        }
                    }
                }
            }
            Value::Obj(fields)
        };
        // Dangling parent.
        assert!(validate_artifact(&corrupt("parent", Value::Num(99.0)))
            .unwrap_err()
            .contains("unresolved"));
        // Time travel: child before its parent's t=2000.
        assert!(validate_artifact(&corrupt("t", Value::Num(5.0)))
            .unwrap_err()
            .contains("precedes"));
        // Not an artifact at all.
        assert!(validate_artifact(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn artifact_trace_events_carry_the_quintet() {
        let doc = artifact(&two_hop_query());
        let tevs = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert!(!tevs.is_empty());
        for ev in tevs {
            for key in ["ph", "ts", "pid", "tid", "name"] {
                assert!(ev.get(key).is_some(), "missing {key} in {ev:?}");
            }
        }
        // Two receptions → two "X" slices with durations.
        let slices: Vec<_> = tevs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].get("dur").and_then(Value::as_f64), Some(150.0));
    }
}
