//! A tiny global string interner for decoded telemetry.
//!
//! The registry, slabs, spans and flight recorder all key their entries
//! by `&'static str` — the right choice on the recording side, where
//! every name is a literal and resolution happens once per run. A
//! telemetry *decoder* is the one place names arrive as runtime bytes:
//! the swarm parent reconstructs a child's `ObsReport` from a wire frame
//! and needs `'static` names to feed the same registration APIs.
//! [`intern`] leaks each distinct name exactly once and returns the same
//! `'static` slice for every subsequent request, so a parent decoding
//! thousands of frames allocates proportionally to the *metric schema*
//! (a few dozen names), not to the frame count.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();

/// The `'static` copy of `s`, allocated on first sight and shared
/// forever after. Total leakage is bounded by the set of distinct names
/// ever interned — for telemetry decoding, the metric schema.
pub fn intern(s: &str) -> &'static str {
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = set.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&found) = set.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("rt.dgram_rx");
        let b = intern(&String::from("rt.dgram_rx"));
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr(), "same allocation both times");
        let c = intern("rt.dgram_tx");
        assert_ne!(a.as_ptr(), c.as_ptr());
    }
}
