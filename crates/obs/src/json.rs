//! Minimal JSON support for observability artifacts and bench results.
//!
//! Hand-rolled so the workspace stays free of external dependencies. The
//! subset covered is exactly what the workspace needs to emit and merge
//! its own output — objects, arrays, strings, finite numbers, bools, null —
//! but the parser accepts any standard JSON document, so hand-edited
//! results files still merge cleanly and foreign JSONL lines still parse.
//! Used by [`crate::ObsReport`] for JSONL export/dumps and re-exported by
//! the `bench` crate for `BENCH_RESULTS.json`.

/// A JSON document node. Object keys keep insertion order so merged files
/// diff minimally run-over-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and a reason.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (UTF-8 passes through intact).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("bad UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| format!("bad escape at byte {}", self.pos))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_results_shaped_document() {
        let doc = Value::Obj(vec![
            (
                "records".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("suite".into(), Value::Str("micro".into())),
                    ("name".into(), Value::Str("event_queue/pop\n".into())),
                    ("mean_ms".into(), Value::Num(1.25)),
                    ("iters".into(), Value::Num(20.0)),
                    ("ok".into(), Value::Bool(true)),
                    ("note".into(), Value::Null),
                ])]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_foreign_json() {
        let v = Value::parse(r#"{"a": [1, -2.5, 1e3], "b": "xA😀y"}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("xA\u{1F600}y"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::Num(26865026.0).render(), "26865026\n");
        assert_eq!(Value::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
    }
}
