//! The flight recorder: a severity-tagged ring buffer of run occurrences.
//!
//! A generalization of the simulator's protocol trace: each record carries
//! a severity, a static tag naming the subsystem occurrence (`"join"`,
//! `"link_break"`, `"invariant"`, …) and a free-form message. The ring
//! keeps the last `capacity` records and counts what it evicted, so a
//! truncated recording is never mistaken for a complete one. When a run
//! fails its invariants the ring is dumped as JSONL — one parseable JSON
//! object per line — giving every red test a post-mortem artifact.

use std::collections::VecDeque;

use crate::json::Value;

/// How alarming a flight record is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume detail (per-delivery, per-timer).
    Debug,
    /// Normal lifecycle milestones (joins, connections).
    Info,
    /// Degradation the protocols are expected to absorb (link breaks,
    /// crashes, depletion).
    Warn,
    /// A broken contract: invariant violations, panics.
    Error,
}

impl Severity {
    /// Stable lowercase name (used in JSONL dumps).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// The severity a [`name`](Self::name) maps back to (decode side).
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One recorded occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecord {
    /// Simulated seconds at the occurrence.
    pub t_secs: f64,
    /// Severity class.
    pub severity: Severity,
    /// Static subsystem tag (`"join"`, `"link_break"`, …).
    pub tag: &'static str,
    /// Free-form detail.
    pub msg: String,
}

impl FlightRecord {
    /// The record as one JSON object (one JSONL line of a dump).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("type".into(), Value::Str("record".into())),
            ("t".into(), Value::Num(self.t_secs)),
            ("severity".into(), Value::Str(self.severity.name().into())),
            ("tag".into(), Value::Str(self.tag.into())),
            ("msg".into(), Value::Str(self.msg.clone())),
        ])
    }
}

/// A bounded, eviction-counting ring of [`FlightRecord`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightRecorder {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    offered: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records (0 disables it).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            offered: 0,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebuild a recorder from its serialized shape (decode half of the
    /// telemetry codec). `records` must already respect `capacity` —
    /// extra records are *not* evicted here, they were accounted on the
    /// recording side where `offered`/`dropped` were maintained.
    pub fn from_parts(
        capacity: usize,
        offered: u64,
        dropped: u64,
        records: Vec<FlightRecord>,
    ) -> FlightRecorder {
        FlightRecorder {
            ring: records.into(),
            capacity,
            offered,
            dropped,
        }
    }

    /// Record an occurrence (evicts the oldest when full; no-op when
    /// disabled). Callers should format `msg` only when
    /// [`enabled`](Self::enabled) to keep the disabled path free.
    pub fn record(&mut self, t_secs: f64, severity: Severity, tag: &'static str, msg: String) {
        if self.capacity == 0 {
            return;
        }
        self.offered += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightRecord {
            t_secs,
            severity,
            tag,
            msg,
        });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records offered (retained + evicted).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Records evicted to make room (0 means the recording is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fold another run's recorder into this one: records concatenate in
    /// fold order (replication order keeps it deterministic), counters add.
    pub fn merge(&mut self, other: &FlightRecorder) {
        self.capacity = self.capacity.max(other.capacity);
        self.offered += other.offered;
        self.dropped += other.dropped;
        for r in &other.ring {
            if self.capacity > 0 && self.ring.len() == self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(r.clone());
        }
    }

    /// The retained records as JSONL, one object per line, preceded by a
    /// `{"type": "recorder", ...}` header carrying the eviction count.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Value::Obj(vec![
            ("type".into(), Value::Str("recorder".into())),
            ("retained".into(), Value::Num(self.len() as f64)),
            ("offered".into(), Value::Num(self.offered as f64)),
            ("dropped".into(), Value::Num(self.dropped as f64)),
        ]);
        push_line(&mut out, &header);
        for r in &self.ring {
            push_line(&mut out, &r.to_json());
        }
        out
    }
}

/// Render `v` onto `out` as a single JSONL line (compact, no inner
/// newlines — `Value::render` pretty-prints, so flatten it).
pub(crate) fn push_line(out: &mut String, v: &Value) {
    let rendered = v.render();
    let mut last_space = false;
    for c in rendered.chars() {
        let c = if c == '\n' { ' ' } else { c };
        if c == ' ' && last_space {
            continue;
        }
        last_space = c == ' ';
        out.push(c);
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stays_empty() {
        let mut fr = FlightRecorder::new(0);
        fr.record(1.0, Severity::Info, "join", "n1".into());
        assert!(!fr.enabled());
        assert!(fr.is_empty());
        assert_eq!(fr.offered(), 0);
    }

    #[test]
    fn ring_counts_evictions() {
        let mut fr = FlightRecorder::new(2);
        for k in 0..5 {
            fr.record(k as f64, Severity::Info, "join", format!("n{k}"));
        }
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.offered(), 5);
        assert_eq!(fr.dropped(), 3);
        let kept: Vec<&str> = fr.records().map(|r| r.msg.as_str()).collect();
        assert_eq!(kept, vec!["n3", "n4"], "newest survive");
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut fr = FlightRecorder::new(8);
        fr.record(1.5, Severity::Warn, "link_break", "n3 -> n7".into());
        fr.record(
            2.0,
            Severity::Error,
            "invariant",
            "a \"quoted\" detail".into(),
        );
        let text = fr.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 records");
        for line in &lines {
            let v = Value::parse(line).expect("every line is standalone JSON");
            assert!(v.get("type").is_some());
        }
        let header = Value::parse(lines[0]).unwrap();
        assert_eq!(header.get("dropped").and_then(Value::as_f64), Some(0.0));
        let rec = Value::parse(lines[2]).unwrap();
        assert_eq!(rec.get("severity").and_then(Value::as_str), Some("error"));
        assert_eq!(
            rec.get("msg").and_then(Value::as_str),
            Some("a \"quoted\" detail")
        );
    }

    #[test]
    fn merge_concatenates_in_fold_order() {
        let mut a = FlightRecorder::new(8);
        a.record(1.0, Severity::Info, "join", "a".into());
        let mut b = FlightRecorder::new(8);
        b.record(2.0, Severity::Info, "join", "b".into());
        a.merge(&b);
        let msgs: Vec<&str> = a.records().map(|r| r.msg.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
        assert_eq!(a.offered(), 2);
    }
}
