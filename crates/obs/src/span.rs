//! Structured spans: scoped wall-clock timers over hot-path regions.
//!
//! A span is a named region of host code — scheduler pop, broadcast
//! planning, overlay maintenance — whose wall-clock cost accumulates into
//! a per-phase profile. The pattern is manual rather than guard-based so
//! the instrumented code can keep mutating the owner of the profile:
//!
//! ```
//! use manet_obs::SpanProfile;
//! let mut spans = SpanProfile::new();
//! let pop = spans.register("des.pop");
//! let t0 = std::time::Instant::now();
//! // ... the timed region ...
//! spans.add(pop, t0.elapsed());
//! ```
//!
//! Wall-clock numbers are inherently nondeterministic; they live next to
//! the deterministic metrics but are excluded from any cross-run
//! comparison (see [`crate::ObsReport`]).

use std::time::Duration;

use crate::json::Value;

/// Handle to a registered span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

/// Aggregated wall-clock profile over a fixed set of named spans.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanProfile {
    names: Vec<&'static str>,
    nanos: Vec<u64>,
    entries: Vec<u64>,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Register (or look up) a span by name.
    pub fn register(&mut self, name: &'static str) -> SpanId {
        match self.names.iter().position(|&n| n == name) {
            Some(i) => SpanId(i),
            None => {
                self.names.push(name);
                self.nanos.push(0);
                self.entries.push(0);
                SpanId(self.names.len() - 1)
            }
        }
    }

    /// Account one traversal of the span.
    #[inline]
    pub fn add(&mut self, id: SpanId, elapsed: Duration) {
        self.nanos[id.0] += elapsed.as_nanos() as u64;
        self.entries[id.0] += 1;
    }

    /// Account `weight` traversals from one sampled timing.
    ///
    /// Stride-sampled instrumentation times one traversal out of every
    /// `weight` and extrapolates: the profile stays an unbiased estimate
    /// of total wall-clock while the hot path pays for a timestamp pair
    /// only once per stride.
    #[inline]
    pub fn add_weighted(&mut self, id: SpanId, elapsed: Duration, weight: u64) {
        self.nanos[id.0] += (elapsed.as_nanos() as u64).saturating_mul(weight);
        self.entries[id.0] += weight;
    }

    /// Account a pre-aggregated `(nanos, entries)` total in one call —
    /// the decode half of the telemetry codec, where a serialized row
    /// arrives already summed. Saturating: a corrupted frame can repeat
    /// a span name with near-`u64::MAX` totals, and decode must not
    /// panic.
    pub fn add_total(&mut self, id: SpanId, nanos: u64, entries: u64) {
        self.nanos[id.0] = self.nanos[id.0].saturating_add(nanos);
        self.entries[id.0] = self.entries[id.0].saturating_add(entries);
    }

    /// Total wall-clock nanoseconds spent in a span.
    pub fn nanos(&self, id: SpanId) -> u64 {
        self.nanos[id.0]
    }

    /// Times the span was entered.
    pub fn entries(&self, id: SpanId) -> u64 {
        self.entries[id.0]
    }

    /// `(name, total, entries)` rows in registration order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, Duration, u64)> + '_ {
        self.names
            .iter()
            .zip(&self.nanos)
            .zip(&self.entries)
            .map(|((&n, &ns), &e)| (n, Duration::from_nanos(ns), e))
    }

    /// Fold another run's profile into this one, by name.
    pub fn merge(&mut self, other: &SpanProfile) {
        for (i, &name) in other.names.iter().enumerate() {
            let id = self.register(name);
            self.nanos[id.0] += other.nanos[i];
            self.entries[id.0] += other.entries[i];
        }
    }

    /// The profile as a JSON object: span name -> `{ms, entries}`.
    pub fn to_json(&self) -> Value {
        Value::Obj(
            self.rows()
                .map(|(n, total, entries)| {
                    (
                        n.to_string(),
                        Value::Obj(vec![
                            ("ms".into(), Value::Num(total.as_secs_f64() * 1e3)),
                            ("entries".into(), Value::Num(entries as f64)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// A fixed-width text table of the profile (for stderr summaries).
    pub fn render(&self) -> String {
        let mut s = format!("{:<28} {:>12} {:>12}\n", "span", "total_ms", "entries");
        for (n, total, entries) in self.rows() {
            s.push_str(&format!(
                "{n:<28} {:>12.3} {entries:>12}\n",
                total.as_secs_f64() * 1e3
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_merge() {
        let mut a = SpanProfile::new();
        let pop = a.register("des.pop");
        assert_eq!(pop, a.register("des.pop"), "idempotent registration");
        a.add(pop, Duration::from_micros(5));
        a.add(pop, Duration::from_micros(7));
        assert_eq!(a.nanos(pop), 12_000);
        assert_eq!(a.entries(pop), 2);

        let mut b = SpanProfile::new();
        let plan = b.register("radio.plan");
        b.add(plan, Duration::from_micros(1));
        a.merge(&b);
        assert_eq!(a.rows().count(), 2);
        let t = a.render();
        assert!(t.contains("des.pop"), "{t}");
        assert!(t.contains("radio.plan"), "{t}");
    }

    #[test]
    fn json_lists_ms_and_entries() {
        let mut p = SpanProfile::new();
        let s = p.register("x");
        p.add(s, Duration::from_millis(2));
        let v = p.to_json();
        let x = v.get("x").unwrap();
        assert_eq!(x.get("entries").and_then(Value::as_f64), Some(1.0));
        assert!(x.get("ms").and_then(Value::as_f64).unwrap() >= 2.0);
    }
}
