//! The metrics registry: named counters, gauges and log-bucketed
//! histograms, with periodic sampling into per-run time series.
//!
//! Registration happens once per run (names resolve to dense integer
//! handles), so the hot path touches nothing but a `Vec` slot. All state is
//! plain data: merging two registries — replications of one scenario — is
//! name-based and deterministic, independent of which worker produced
//! which run.

use crate::json::Value;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Number of power-of-two buckets: bucket 0 holds value 0, bucket `k`
/// (k >= 1) holds values in `[2^(k-1), 2^k)`, so bucket 64 holds the top
/// half of the `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket boundaries are powers of two: 0, 1, 2–3, 4–7, 8–15, … Constant
/// time, constant space, no configuration — the right trade for simulator
/// quantities spanning many orders of magnitude (queue depths, fan-outs,
/// hop counts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; HIST_BUCKETS]>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; HIST_BUCKETS]),
            count: 0,
            sum: 0,
        }
    }
}

/// The bucket index a value falls into.
///
/// Branch-free: a single `lzcnt`/`clz` and a subtract, no comparisons.
/// `record()` sits on the simulator's hot path (every frame, every queue
/// sample), so the bucketing must not cost a mispredictable branch.
#[inline]
pub const fn bucket_of(v: u64) -> usize {
    // 0 -> 0; otherwise 1 + floor(log2(v)): 1->1, 2..4->2, 4..8->3, ...
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
pub fn bucket_floor(i: usize) -> u64 {
    if i <= 1 {
        i as u64
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Occupancy of bucket `i` (see [`bucket_of`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile (0 < q <= 1) as the lower bound of the bucket
    /// holding the ceil(q·count)-th smallest observation — a conservative
    /// estimate, exact for values 0 and 1 and within a factor of two
    /// above. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`quantile`](Self::quantile)).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`quantile`](Self::quantile)).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Rebuild a histogram from its serialized shape: `(floor, count)`
    /// pairs (see [`nonzero`](Self::nonzero)) plus the saturating sum.
    /// The count is implied — it is the sum of the pair counts. This is
    /// the decode half of the telemetry codec: the bucket layout *is*
    /// the wire format, so `from_parts(h.nonzero(), h.sum()) == h`.
    /// Counts saturate — a corrupted frame may carry pair counts that
    /// sum past `u64::MAX`, and the decode contract is no-panic.
    pub fn from_parts(pairs: &[(u64, u64)], sum: u64) -> Histogram {
        let mut h = Histogram::default();
        for &(floor, c) in pairs {
            let b = bucket_of(floor);
            h.buckets[b] = h.buckets[b].saturating_add(c);
            h.count = h.count.saturating_add(c);
        }
        h.sum = sum;
        h
    }

    /// Non-empty buckets as `(floor, count)` pairs, ascending.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }
}

/// One sampled point of every registered counter and gauge.
#[derive(Clone, Debug, PartialEq)]
struct Sample {
    /// Simulated seconds at the sample.
    t_secs: f64,
    /// Counter values, indexed like `counters`.
    counters: Vec<u64>,
    /// Gauge values, indexed like `gauges`.
    gauges: Vec<f64>,
}

/// Named counters, gauges and histograms for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<f64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
    samples: Vec<Sample>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        match self.counter_names.iter().position(|&n| n == name) {
            Some(i) => CounterId(i),
            None => {
                self.counter_names.push(name);
                self.counters.push(0);
                CounterId(self.counter_names.len() - 1)
            }
        }
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        match self.gauge_names.iter().position(|&n| n == name) {
            Some(i) => GaugeId(i),
            None => {
                self.gauge_names.push(name);
                self.gauges.push(0.0);
                GaugeId(self.gauge_names.len() - 1)
            }
        }
    }

    /// Register (or look up) a histogram by name.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        match self.hist_names.iter().position(|&n| n == name) {
            Some(i) => HistId(i),
            None => {
                self.hist_names.push(name);
                self.hists.push(Histogram::default());
                HistId(self.hist_names.len() - 1)
            }
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Set a counter to an absolute running total (for totals maintained
    /// elsewhere — protocol stats, queue internals — and mirrored into the
    /// registry at sample time).
    #[inline]
    pub fn set(&mut self, id: CounterId, total: u64) {
        self.counters[id.0] = total;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Look up a counter's current value by name (reporting-side).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counter_names
            .iter()
            .position(|&n| n == name)
            .map(|i| self.counters[i])
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = v;
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].observe(v);
    }

    /// The histogram behind a handle.
    pub fn hist_value(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Overwrite a histogram with an externally maintained one (for
    /// histograms accumulated in a hot-path slab — see [`crate::slab`] —
    /// and folded into the registry at sample points; overwrite semantics
    /// keep repeated folds idempotent).
    pub fn set_hist(&mut self, id: HistId, h: &Histogram) {
        self.hists[id.0] = h.clone();
    }

    /// Append one time-series point: the current value of every counter
    /// and gauge, stamped `t_secs` of simulated time.
    pub fn sample(&mut self, t_secs: f64) {
        self.samples.push(Sample {
            t_secs,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        });
    }

    /// Number of time-series points taken.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// The time-series points as `(t_secs, counters, gauges)` rows, in
    /// sample order; value slices are indexed like the registration
    /// order. Encode half of the telemetry codec.
    pub fn samples(&self) -> impl Iterator<Item = (f64, &[u64], &[f64])> + '_ {
        self.samples
            .iter()
            .map(|s| (s.t_secs, s.counters.as_slice(), s.gauges.as_slice()))
    }

    /// Append one pre-built time-series point, bypassing the live
    /// counter/gauge values. Decode half of the telemetry codec: a
    /// deserialized registry replays its sample rows through here. Value
    /// vectors must be indexed like the registration order of the
    /// counters/gauges they snapshot.
    pub fn push_sample(&mut self, t_secs: f64, counters: Vec<u64>, gauges: Vec<f64>) {
        self.samples.push(Sample {
            t_secs,
            counters,
            gauges,
        });
    }

    /// Registered counter names with their final values, in registration
    /// order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_names
            .iter()
            .copied()
            .zip(self.counters.iter().copied())
    }

    /// Registered gauge names with their final values.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauge_names
            .iter()
            .copied()
            .zip(self.gauges.iter().copied())
    }

    /// Registered histogram names with their contents.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hist_names.iter().copied().zip(self.hists.iter())
    }

    /// Fold another run's registry into this one, by name.
    ///
    /// Counters and histogram buckets sum; gauges keep the maximum (they
    /// are high-water marks across replications). Time series sum
    /// pointwise by sample index, missing points counting as zero — with
    /// the fold always applied in replication order the merged series is
    /// identical whatever thread count produced the runs.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            let id = self.counter(name);
            self.counters[id.0] += v;
        }
        for (name, v) in other.gauges() {
            let id = self.gauge(name);
            self.gauges[id.0] = self.gauges[id.0].max(v);
        }
        for (name, h) in other.hists() {
            let id = self.hist(name);
            self.hists[id.0].merge(h);
        }
        // Series alignment assumes both runs registered the same metrics in
        // the same order (true for replications of one scenario); merged
        // sample times keep the first run's stamps.
        for (i, s) in other.samples.iter().enumerate() {
            if i == self.samples.len() {
                self.samples.push(Sample {
                    t_secs: s.t_secs,
                    counters: vec![0; s.counters.len()],
                    gauges: vec![0.0; s.gauges.len()],
                });
            }
            let mine = &mut self.samples[i];
            for (a, b) in mine.counters.iter_mut().zip(s.counters.iter()) {
                *a += b;
            }
            for (a, b) in mine.gauges.iter_mut().zip(s.gauges.iter()) {
                *a = a.max(*b);
            }
        }
    }

    /// The registry as a JSON object: `counters`, `gauges`, `hists`
    /// (non-empty buckets as `[floor, count]` pairs) and `series`.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters()
                .map(|(n, v)| (n.to_string(), Value::Num(v as f64)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges()
                .map(|(n, v)| (n.to_string(), Value::Num(v)))
                .collect(),
        );
        let hists = Value::Obj(
            self.hists()
                .map(|(n, h)| {
                    let buckets = h
                        .nonzero()
                        .into_iter()
                        .map(|(floor, c)| {
                            Value::Arr(vec![Value::Num(floor as f64), Value::Num(c as f64)])
                        })
                        .collect();
                    (
                        n.to_string(),
                        Value::Obj(vec![
                            ("count".into(), Value::Num(h.count() as f64)),
                            ("sum".into(), Value::Num(h.sum() as f64)),
                            ("buckets".into(), Value::Arr(buckets)),
                        ]),
                    )
                })
                .collect(),
        );
        let series = Value::Arr(
            self.samples
                .iter()
                .map(|s| {
                    let mut fields = vec![("t".to_string(), Value::Num(s.t_secs))];
                    fields.extend(
                        self.counter_names
                            .iter()
                            .zip(&s.counters)
                            .map(|(&n, &v)| (n.to_string(), Value::Num(v as f64))),
                    );
                    fields.extend(
                        self.gauge_names
                            .iter()
                            .zip(&s.gauges)
                            .map(|(&n, &v)| (n.to_string(), Value::Num(v))),
                    );
                    Value::Obj(fields)
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("hists".into(), hists),
            ("series".into(), series),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obvious branchy specification of log2 bucketing, kept only as
    /// a test oracle for the `leading_zeros` hot path.
    fn bucket_of_reference(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let mut k = 1;
        while k < 64 && v >= (1u64 << k) {
            k += 1;
        }
        k
    }

    #[test]
    fn branch_free_bucketing_matches_the_branchy_oracle() {
        // Exhaustive around every power-of-two boundary: 2^k - 1, 2^k,
        // 2^k + 1 for all 64 boundaries, plus the extremes. Any change to
        // the lzcnt expression that shifts a single assignment fails here.
        for k in 0..64u32 {
            let p = 1u64 << k;
            for v in [p.wrapping_sub(1), p, p.saturating_add(1)] {
                assert_eq!(bucket_of(v), bucket_of_reference(v), "value {v}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        // Pinned assignments — the serialized bucket layout is part of the
        // obs report format, so these indices must never drift.
        let pinned: [(u64, usize); 12] = [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (100, 7),
            (128, 8),
            (1000, 10),
            (1024, 11),
            (65_535, 16),
            (1 << 32, 33),
            (u64::MAX, 64),
        ];
        for (v, want) in pinned {
            assert_eq!(bucket_of(v), want, "pinned bucket of {v}");
        }
        // const-evaluable: usable in array sizes and static tables.
        const AT_1024: usize = bucket_of(1024);
        assert_eq!(AT_1024, 11);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket k >= 1 is [2^(k-1), 2^k).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let floor = bucket_floor(i);
            assert_eq!(bucket_of(floor), i, "floor of bucket {i} maps back");
            if i >= 1 {
                assert_eq!(bucket_of(floor - 1), i - 1, "below floor of {i}");
            }
        }
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.observe(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2, "2 and 3 share a bucket");
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(10), 1, "1023 in [512, 1024)");
        assert_eq!(h.bucket(11), 1, "1024 in [1024, 2048)");
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2057);
    }

    #[test]
    fn quantiles_pin_known_inputs() {
        // Observations 1..=100: buckets hold 1,2,4,8,16,32,37 values with
        // floors 1,2,4,8,16,32,64; cumulative 1,3,7,15,31,63,100.
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.p50(), 32, "rank 50 lands in bucket [32,64)");
        assert_eq!(h.p95(), 64, "rank 95 lands in bucket [64,128)");
        assert_eq!(h.p99(), 64);
        assert_eq!(h.quantile(1.0), 64);
        assert_eq!(h.quantile(0.01), 1, "rank 1 is the smallest value");
        assert_eq!(h.quantile(0.31), 16, "rank 31 closes bucket [16,32)");
        assert_eq!(h.quantile(0.32), 32, "rank 32 opens bucket [32,64)");

        // Degenerate shapes.
        assert_eq!(Histogram::default().p50(), 0, "empty histogram");
        let mut zeros = Histogram::default();
        for _ in 0..10 {
            zeros.observe(0);
        }
        assert_eq!((zeros.p50(), zeros.p99()), (0, 0));
        let mut one = Histogram::default();
        one.observe(1_000_000);
        // 1_000_000 lies in [2^19, 2^20).
        assert_eq!(one.p50(), 1 << 19);
        assert_eq!(one.p99(), 1 << 19);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("des.events_popped");
        let again = r.counter("des.events_popped");
        assert_eq!(c, again, "same name resolves to the same handle");
        r.inc(c, 5);
        r.inc(c, 2);
        assert_eq!(r.counter_value(c), 7);
        r.set(c, 100);
        assert_eq!(r.counter_by_name("des.events_popped"), Some(100));
        assert_eq!(r.counter_by_name("missing"), None);
        let g = r.gauge("des.queue_depth");
        r.set_gauge(g, 42.0);
        assert_eq!(r.gauges().next(), Some(("des.queue_depth", 42.0)));
    }

    #[test]
    fn merge_sums_counters_and_buckets_maxes_gauges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for r in [&mut a, &mut b] {
            let c = r.counter("x");
            r.inc(c, 10);
            let g = r.gauge("depth");
            let h = r.hist("fanout");
            r.observe(h, 4);
            r.set_gauge(g, 1.0);
        }
        let g = b.gauge("depth");
        b.set_gauge(g, 9.0);
        a.merge(&b);
        assert_eq!(a.counter_by_name("x"), Some(20));
        assert_eq!(a.gauges().next(), Some(("depth", 9.0)));
        let h = a.hist("fanout");
        assert_eq!(a.hist_value(h).bucket(bucket_of(4)), 2);
    }

    #[test]
    fn series_merge_is_pointwise_and_handles_ragged_lengths() {
        let mut a = Registry::new();
        let ca = a.counter("n");
        a.inc(ca, 1);
        a.sample(10.0);
        let mut b = Registry::new();
        let cb = b.counter("n");
        b.inc(cb, 2);
        b.sample(10.0);
        b.inc(cb, 3);
        b.sample(20.0);
        a.merge(&b);
        assert_eq!(a.n_samples(), 2, "longer series extends the merged one");
        assert_eq!(a.samples[0].counters, vec![3]);
        assert_eq!(a.samples[1].counters, vec![5], "missing point counts as 0");
    }

    #[test]
    fn json_shape_lists_every_metric() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        r.inc(c, 3);
        let h = r.hist("a.hist");
        r.observe(h, 5);
        r.sample(1.0);
        let v = r.to_json();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        let hist = v.get("hists").and_then(|h| h.get("a.hist")).unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("series").and_then(Value::as_arr).map(<[_]>::len),
            Some(1)
        );
        // And the whole thing survives a render/parse round trip.
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }
}
