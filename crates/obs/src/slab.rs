//! Hot-path metric slabs: plain per-subsystem counter and histogram
//! storage, folded into the [`Registry`] at sample points.
//!
//! The registry is the reporting surface — it owns names, time series and
//! merge semantics — which makes it the wrong thing to touch on the event
//! hot path: a bump through the registry drags the sample vectors and name
//! tables into cache for no reason. A slab is the hot half split off: a
//! bare `Vec<u64>` (or `Vec<Histogram>`) whose slots are resolved to dense
//! indices once at registration, so the per-event cost is a single
//! unsynchronized slot bump with no registry indirection. Each subsystem
//! or stack layer owns its own slab (per-`SubsystemId` sharding), and
//! [`Slab::fold_into`]/[`HistSlab::fold_into`] copy the totals into the
//! registry at sample points — overwrite semantics, so repeated folds are
//! idempotent and the fold can run at every series sample and once more at
//! the horizon.

use crate::registry::{Histogram, Registry};

/// Handle to a counter slot in a [`Slab`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotId(usize);

/// A named set of plain `u64` counter slots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Slab {
    names: Vec<&'static str>,
    slots: Vec<u64>,
}

impl Slab {
    /// An empty slab.
    pub fn new() -> Self {
        Slab::default()
    }

    /// Register (or look up) a counter slot by name. The name is the
    /// registry counter the slot folds into.
    pub fn slot(&mut self, name: &'static str) -> SlotId {
        match self.names.iter().position(|&n| n == name) {
            Some(i) => SlotId(i),
            None => {
                self.names.push(name);
                self.slots.push(0);
                SlotId(self.names.len() - 1)
            }
        }
    }

    /// Add `n` to a slot. This is the hot path: one indexed add.
    #[inline]
    pub fn bump(&mut self, id: SlotId, n: u64) {
        self.slots[id.0] += n;
    }

    /// Current value of a slot.
    pub fn value(&self, id: SlotId) -> u64 {
        self.slots[id.0]
    }

    /// Copy every slot's running total into the registry (overwrite
    /// semantics via [`Registry::set`], so folding twice is harmless).
    pub fn fold_into(&self, reg: &mut Registry) {
        for (&name, &v) in self.names.iter().zip(&self.slots) {
            let id = reg.counter(name);
            reg.set(id, v);
        }
    }
}

/// Handle to a histogram slot in a [`HistSlab`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSlotId(usize);

/// A named set of log-bucketed histograms kept outside the registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSlab {
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

impl HistSlab {
    /// An empty slab.
    pub fn new() -> Self {
        HistSlab::default()
    }

    /// Register (or look up) a histogram slot by name.
    pub fn slot(&mut self, name: &'static str) -> HistSlotId {
        match self.names.iter().position(|&n| n == name) {
            Some(i) => HistSlotId(i),
            None => {
                self.names.push(name);
                self.hists.push(Histogram::default());
                HistSlotId(self.names.len() - 1)
            }
        }
    }

    /// Record one observation: branch-free bucketing on a slab-local
    /// histogram, no registry involved.
    #[inline]
    pub fn observe(&mut self, id: HistSlotId, v: u64) {
        self.hists[id.0].observe(v);
    }

    /// The histogram behind a handle.
    pub fn hist(&self, id: HistSlotId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Copy every histogram into the registry (overwrite semantics via
    /// [`Registry::set_hist`], so folding twice is harmless).
    pub fn fold_into(&self, reg: &mut Registry) {
        for (&name, h) in self.names.iter().zip(&self.hists) {
            let id = reg.hist(name);
            reg.set_hist(id, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_bumps_and_folds_idempotently() {
        let mut slab = Slab::new();
        let tx = slab.slot("radio.tx_planned");
        assert_eq!(tx, slab.slot("radio.tx_planned"), "idempotent slots");
        slab.bump(tx, 3);
        slab.bump(tx, 4);
        assert_eq!(slab.value(tx), 7);

        let mut reg = Registry::new();
        slab.fold_into(&mut reg);
        slab.fold_into(&mut reg);
        assert_eq!(
            reg.counter_by_name("radio.tx_planned"),
            Some(7),
            "double fold must not double count"
        );
        slab.bump(tx, 1);
        slab.fold_into(&mut reg);
        assert_eq!(reg.counter_by_name("radio.tx_planned"), Some(8));
    }

    #[test]
    fn hist_slab_observes_and_folds_idempotently() {
        let mut slab = HistSlab::new();
        let fanout = slab.slot("radio.broadcast_fanout");
        for v in [2u64, 5, 9] {
            slab.observe(fanout, v);
        }
        assert_eq!(slab.hist(fanout).count(), 3);
        assert_eq!(slab.hist(fanout).sum(), 16);

        let mut reg = Registry::new();
        slab.fold_into(&mut reg);
        slab.fold_into(&mut reg);
        let id = reg.hist("radio.broadcast_fanout");
        assert_eq!(reg.hist_value(id).count(), 3, "fold overwrites, not sums");
        slab.observe(fanout, 1);
        slab.fold_into(&mut reg);
        assert_eq!(reg.hist_value(id).count(), 4);
    }
}
