//! CI smoke checker for observability dumps.
//!
//! Usage: `obs_check <dir>`. Reads every `*.jsonl` file under `<dir>`
//! (non-recursive), asserts each line parses as standalone JSON with a
//! `type` field, and that the core counters the instrumented run is
//! expected to export all appear somewhere in the directory. Exits
//! non-zero with a message on any violation, so `ci.sh` can gate on it.

use std::collections::BTreeSet;
use std::process::ExitCode;

use manet_obs::json::Value;

const CORE_COUNTERS: [&str; 5] = [
    "des.events_popped",
    "des.calendar.retunes",
    "radio.tx_planned",
    "aodv.rreq_dup_dropped",
    "sim.queries_issued",
];

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => {
            eprintln!("usage: obs_check <dir-with-jsonl-dumps>");
            return ExitCode::FAILURE;
        }
    };
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("obs_check: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut files = 0usize;
    let mut lines = 0usize;
    let mut counters_seen: BTreeSet<String> = BTreeSet::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        files += 1;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_check: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        for (ln, line) in text.lines().enumerate() {
            lines += 1;
            let v = match Value::parse(line) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!(
                        "obs_check: {}:{}: line is not valid JSON: {e}",
                        path.display(),
                        ln + 1
                    );
                    return ExitCode::FAILURE;
                }
            };
            let ty = match v.get("type").and_then(Value::as_str) {
                Some(t) => t,
                None => {
                    eprintln!(
                        "obs_check: {}:{}: line lacks a \"type\" field",
                        path.display(),
                        ln + 1
                    );
                    return ExitCode::FAILURE;
                }
            };
            if ty == "counter" {
                if let Some(name) = v.get("name").and_then(Value::as_str) {
                    counters_seen.insert(name.to_string());
                }
            }
        }
    }

    if files == 0 {
        eprintln!("obs_check: no .jsonl files in {dir}");
        return ExitCode::FAILURE;
    }
    let missing: Vec<&str> = CORE_COUNTERS
        .iter()
        .copied()
        .filter(|c| !counters_seen.contains(*c))
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "obs_check: core counters missing from {dir}: {missing:?} (saw {counters_seen:?})"
        );
        return ExitCode::FAILURE;
    }
    println!("obs_check: OK — {files} file(s), {lines} parseable line(s), {len} counter name(s), all core counters present", len = counters_seen.len());
    ExitCode::SUCCESS
}
