//! CI smoke checker for observability dumps.
//!
//! Usage: `obs_check <dir>`. Reads every `*.jsonl` file under `<dir>`
//! (non-recursive), asserts each line parses as standalone JSON with a
//! `type` field, and that the core counters the instrumented run is
//! expected to export all appear somewhere in the directory. Also reads
//! every `*.trace.json` causal-trace artifact and runs the full schema
//! validation ([`manet_obs::causal::validate_artifact`]: trace-event
//! quintet present, parents resolve, per-trace timestamps monotone) plus
//! a render→parse round-trip. At least one of the two file kinds must be
//! present; counter coverage is only required when JSONL dumps are. Exits
//! non-zero with a message on any violation, so `ci.sh` can gate on it.

use std::collections::BTreeSet;
use std::process::ExitCode;

use manet_obs::causal;
use manet_obs::json::Value;

/// Core counters a DES (simulated-substrate) run always exports.
const CORE_COUNTERS: [&str; 5] = [
    "des.events_popped",
    "des.calendar.retunes",
    "radio.tx_planned",
    "aodv.rreq_dup_dropped",
    "sim.queries_issued",
];

/// Core counters a real-time (swarm) run always exports instead. A dump
/// directory passes counter coverage if *either* substrate's full set is
/// present — swarm dumps carry no DES scheduler counters and vice versa.
const RT_CORE_COUNTERS: [&str; 5] = [
    "rt.dgram_rx",
    "rt.dgram_tx",
    "rt.epoll_wakeups",
    "stack.queries_issued",
    "aodv.rreq_dup_dropped",
];

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => {
            eprintln!("usage: obs_check <dir-with-jsonl-dumps>");
            return ExitCode::FAILURE;
        }
    };
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("obs_check: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut files = 0usize;
    let mut lines = 0usize;
    let mut trace_files = 0usize;
    let mut trace_events = 0usize;
    let mut counters_seen: BTreeSet<String> = BTreeSet::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".trace.json"))
        {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("obs_check: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let doc = match Value::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("obs_check: {}: not valid JSON: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = causal::validate_artifact(&doc) {
                eprintln!("obs_check: {}: invalid trace artifact: {e}", path.display());
                return ExitCode::FAILURE;
            }
            // Round-trip: the artifact must re-render to parseable JSON
            // describing the same spans.
            let back = match Value::parse(&doc.render()) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!(
                        "obs_check: {}: artifact does not re-parse after render: {e}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            match (
                causal::events_from_artifact(&doc),
                causal::events_from_artifact(&back),
            ) {
                (Ok(a), Ok(b)) if a == b => trace_events += a.len(),
                (Ok(_), Ok(_)) => {
                    eprintln!(
                        "obs_check: {}: spans differ after render→parse round-trip",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("obs_check: {}: cannot read spans back: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            trace_files += 1;
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        files += 1;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_check: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        for (ln, line) in text.lines().enumerate() {
            lines += 1;
            let v = match Value::parse(line) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!(
                        "obs_check: {}:{}: line is not valid JSON: {e}",
                        path.display(),
                        ln + 1
                    );
                    return ExitCode::FAILURE;
                }
            };
            let ty = match v.get("type").and_then(Value::as_str) {
                Some(t) => t,
                None => {
                    eprintln!(
                        "obs_check: {}:{}: line lacks a \"type\" field",
                        path.display(),
                        ln + 1
                    );
                    return ExitCode::FAILURE;
                }
            };
            if ty == "counter" {
                if let Some(name) = v.get("name").and_then(Value::as_str) {
                    counters_seen.insert(name.to_string());
                }
            }
        }
    }

    if files == 0 && trace_files == 0 {
        eprintln!("obs_check: no .jsonl or .trace.json files in {dir}");
        return ExitCode::FAILURE;
    }
    if files > 0 {
        let missing_from = |set: &[&'static str]| -> Vec<&'static str> {
            set.iter()
                .copied()
                .filter(|c| !counters_seen.contains(*c))
                .collect()
        };
        let missing_des = missing_from(&CORE_COUNTERS);
        let missing_rt = missing_from(&RT_CORE_COUNTERS);
        if !missing_des.is_empty() && !missing_rt.is_empty() {
            eprintln!(
                "obs_check: core counters missing from {dir}: DES set lacks {missing_des:?}, \
                 RT set lacks {missing_rt:?} (saw {counters_seen:?})"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "obs_check: OK — {files} jsonl file(s), {lines} parseable line(s), {len} counter name(s), \
         {trace_files} trace artifact(s) with {trace_events} span(s)",
        len = counters_seen.len()
    );
    ExitCode::SUCCESS
}
