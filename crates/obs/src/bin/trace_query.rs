//! Inspect a causal-trace artifact: per-query latency breakdowns.
//!
//! ```text
//! trace_query <artifact.trace.json> [--trace ID]
//! ```
//!
//! Without `--trace` it prints one summary row per trace (label, origin,
//! fan-out, deliveries, dead branches) followed by aggregate
//! route-discovery / transit / processing latency quantiles over every
//! delivery path, in simulated microseconds. With `--trace ID` it prints
//! the full per-path decomposition of that one trace. The breakdown is
//! exact, not sampled: the three components of each path sum to its total
//! end-to-end latency (see `manet_obs::causal`).

use std::process::ExitCode;

use manet_obs::causal::{self, TraceSummary};
use manet_obs::json::Value;
use manet_obs::Histogram;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: trace_query <artifact.trace.json> [--trace ID]");
        return ExitCode::FAILURE;
    }
    let path = &args[0];
    let want: Option<u64> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args[i + 1].parse().expect("--trace takes a trace id"));

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_query: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace_query: {path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = causal::validate_artifact(&doc) {
        eprintln!("trace_query: {path}: invalid trace artifact: {e}");
        return ExitCode::FAILURE;
    }
    let events = match causal::events_from_artifact(&doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("trace_query: {path}: cannot read spans: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trees = causal::build_trees(&events);
    let summaries: Vec<TraceSummary> = trees.iter().map(|t| t.summary()).collect();

    if let Some(id) = want {
        let Some(s) = summaries.iter().find(|s| s.trace_id == id) else {
            eprintln!("trace_query: trace {id} not found in {path}");
            return ExitCode::FAILURE;
        };
        print_one(s);
        return ExitCode::SUCCESS;
    }

    println!("trace\tlabel\torigin_us\tsends\trecvs\tdeliveries\tunreachable\tdead\tmax_fanout");
    for s in &summaries {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.trace_id,
            s.label,
            s.origin_t,
            s.sends,
            s.recvs,
            s.deliveries.len(),
            s.unreachable,
            s.dead_branches,
            s.max_fanout
        );
    }

    // Aggregate latency decomposition over every delivery path.
    let mut h_total = Histogram::default();
    let mut h_discovery = Histogram::default();
    let mut h_transit = Histogram::default();
    let mut h_processing = Histogram::default();
    let mut paths = 0u64;
    for s in &summaries {
        for p in &s.deliveries {
            h_total.observe(p.total);
            h_discovery.observe(p.discovery);
            h_transit.observe(p.transit);
            h_processing.observe(p.processing);
            paths += 1;
        }
    }
    println!(
        "\n# latency decomposition over {paths} delivery path(s), simulated µs (log2 buckets)"
    );
    println!("component\tp50\tp95\tp99");
    for (name, h) in [
        ("total", &h_total),
        ("route_discovery", &h_discovery),
        ("transit", &h_transit),
        ("processing", &h_processing),
    ] {
        println!("{name}\t{}\t{}\t{}", h.p50(), h.p95(), h.p99());
    }
    ExitCode::SUCCESS
}

fn print_one(s: &TraceSummary) {
    println!(
        "trace {} ({}): origin at {} µs, {} send(s), {} recv(s), {} unreachable, {} dead branch(es), max fan-out {}",
        s.trace_id,
        s.label,
        s.origin_t,
        s.sends,
        s.recvs,
        s.unreachable,
        s.dead_branches,
        s.max_fanout
    );
    println!("node\thops\ttotal_us\troute_discovery\ttransit\tprocessing");
    for p in &s.deliveries {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            p.node, p.hops, p.total, p.discovery, p.transit, p.processing
        );
    }
}
