//! N-process observability smoke test: spawn the real `swarm` binary
//! with `--obs` and assert the distributed-telemetry contract end to
//! end, across genuine OS process boundaries:
//!
//! * the parent's merged `stack.queries_issued` counter reconciles
//!   **exactly** with the sum of the per-child `RESULT` lines — the two
//!   sides read the same totals through independent channels (key=value
//!   stdout vs. telemetry frames), so any drift is a codec or merge bug;
//! * answers never exceed queries in the merged report;
//! * the merged Perfetto artifact passes [`validate_artifact`] and
//!   survives a render → parse → extract round-trip.
//!
//! This is the workspace's only test that exercises the full pipeline —
//! child instrumentation → telemetry frames over stdio → parent merge →
//! clock stitching → artifact — with nothing mocked.

use std::path::PathBuf;
use std::process::Command;

use manet_obs::causal::{events_from_artifact, validate_artifact};
use manet_obs::json::Value;

/// A scratch directory under the test binary's own target dir, wiped at
/// the start of each run so stale artifacts never satisfy assertions.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swarm-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The `value` field of the first JSONL counter line with this name.
fn counter_from_jsonl(jsonl: &str, name: &str) -> Option<u64> {
    jsonl
        .lines()
        .filter_map(|line| Value::parse(line).ok())
        .find(|v| {
            v.get("type").and_then(Value::as_str) == Some("counter")
                && v.get("name").and_then(Value::as_str) == Some(name)
        })
        .and_then(|v| v.get("value").and_then(Value::as_f64))
        .map(|n| n as u64)
}

#[test]
fn three_process_swarm_counters_reconcile_and_artifact_validates() {
    let dir = scratch_dir("smoke");
    let out = Command::new(env!("CARGO_BIN_EXE_swarm"))
        .args([
            "--nodes",
            "3",
            "--duration-ms",
            "3000",
            "--seed",
            "11",
            "--min-answered",
            "1",
            "--obs",
            "--obs-dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn swarm binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success() && stdout.contains("SWARM OK"),
        "swarm run failed (status {:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );

    // Per-child RESULT lines, echoed by the parent: sum their issued /
    // answered fields independently of the telemetry path.
    let mut result_lines = 0u32;
    let (mut sum_issued, mut sum_answered) = (0u64, 0u64);
    for line in stdout.lines().filter(|l| l.starts_with("RESULT ")) {
        result_lines += 1;
        for field in line.split_whitespace().skip(1) {
            let (key, val) = field.split_once('=').expect("key=value RESULT field");
            let val: u64 = val.parse().expect("numeric RESULT field");
            match key {
                "issued" => sum_issued += val,
                "answered" => sum_answered += val,
                _ => {}
            }
        }
    }
    assert_eq!(result_lines, 3, "one RESULT line per child:\n{stdout}");

    // The merged report on disk must carry exactly the same totals.
    let jsonl = std::fs::read_to_string(dir.join("swarm_report.jsonl")).expect("merged report");
    let merged_issued =
        counter_from_jsonl(&jsonl, "stack.queries_issued").expect("merged queries counter");
    assert_eq!(
        merged_issued, sum_issued,
        "merged queries_issued must equal the sum of child RESULT lines"
    );
    assert!(
        sum_answered <= merged_issued,
        "answers ({sum_answered}) exceed merged queries ({merged_issued})"
    );
    assert_eq!(
        counter_from_jsonl(&jsonl, "swarm.nodes"),
        Some(3),
        "parent stamps the swarm size into the merged report"
    );

    // The stitched artifact validates and round-trips: render → parse →
    // extract must reproduce a non-empty event set with ≥2 processes.
    let text = std::fs::read_to_string(dir.join("swarm.trace.json")).expect("merged artifact");
    let doc = Value::parse(&text).expect("artifact parses");
    validate_artifact(&doc).expect("artifact validates");
    let events = events_from_artifact(&doc).expect("artifact extracts");
    assert!(!events.is_empty(), "merged artifact carries no events");
    let reparsed = Value::parse(&doc.render()).expect("re-render parses");
    assert_eq!(
        events_from_artifact(&reparsed).expect("re-render extracts"),
        events,
        "render → parse is not the identity on the artifact"
    );
    let nodes: std::collections::HashSet<u32> = events.iter().map(|e| e.node).collect();
    assert!(
        nodes.len() >= 2,
        "merged trace covers only {nodes:?} — expected spans from ≥2 processes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
