//! A multi-process loopback swarm: N OS processes, each hosting one
//! [`p2p_stack::StackMachine`] on its own UDP socket, running a
//! (re)configuration algorithm and the query workload end-to-end over
//! real datagrams.
//!
//! Process model: the parent re-executes itself with `--child` for each
//! node. A child binds `127.0.0.1:0` (the kernel hands out a free port —
//! no coordination, no collisions), advertises the address on stdout as
//! `ADDR <addr>`, and blocks until the parent distributes the full
//! address book on stdin as one `PEERS <addr0> <addr1> …` line. Each
//! child then joins with an id-proportional delay (staggered joins, as
//! the DES's arrival process provides) and runs for the configured wall
//! duration, finishing with a `RESULT key=value…` line the parent
//! aggregates.
//!
//! File placement is deterministic: every child derives the *entire*
//! swarm's Zipf assignment from the shared `--seed` via
//! [`Catalog::assign`] and keeps its own slot, exactly how the DES
//! scenario seeds holdings — no placement traffic needed.
//!
//! Exit status: `0` iff every child exited cleanly and the swarm
//! answered at least `--min-answered` queries (after bounded
//! `--retries`). The CI smoke stage runs `--nodes 8` for a few seconds.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::{Command, Stdio};
use std::time::Duration;

use manet_aodv::AodvCfg;
use manet_des::{NodeId, Rng, SimDuration};
use manet_rt::{FaultShim, RtNode};
use manet_sim::FaultPlan;
use p2p_content::{Catalog, QueryCfg, QueryEngine};
use p2p_core::{build_algo, AlgoKind, OverlayParams};
use p2p_stack::StackMachine;

/// Per-node join stagger; also the reason short runs still converge.
const JOIN_STAGGER_MS: u64 = 150;

struct Opts {
    nodes: u32,
    algo: AlgoKind,
    duration_ms: u64,
    seed: u64,
    min_answered: u64,
    retries: u32,
    child_id: Option<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: swarm [--nodes N] [--algo basic|regular|random|hybrid] \
         [--duration-ms MS] [--seed S] [--min-answered K] [--retries R]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        nodes: 8,
        algo: AlgoKind::Regular,
        duration_ms: 5_000,
        seed: 1,
        min_answered: 1,
        retries: 2,
        child_id: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            match args.get(*i) {
                Some(v) => v.clone(),
                None => usage(),
            }
        };
        match args[i].as_str() {
            "--nodes" => opts.nodes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--algo" => {
                let name = value(&mut i);
                opts.algo = AlgoKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| usage());
            }
            "--duration-ms" => opts.duration_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-answered" => {
                opts.min_answered = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--retries" => opts.retries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--child" => opts.child_id = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 1;
    }
    if opts.nodes < 2 {
        eprintln!("--nodes must be at least 2");
        usage();
    }
    opts
}

/// Overlay timers shrunk from paper scale (tens of seconds) to smoke
/// scale (seconds); ratios preserved.
fn swarm_params() -> OverlayParams {
    OverlayParams {
        timer_initial: SimDuration::from_millis(500),
        max_timer: SimDuration::from_secs(4),
        basic_timer: SimDuration::from_millis(800),
        ping_interval: SimDuration::from_secs(2),
        pong_timeout: SimDuration::from_secs(1),
        handshake_timeout: SimDuration::from_millis(1_500),
        random_response_wait: SimDuration::from_millis(500),
        ..OverlayParams::default()
    }
}

/// Query workload shrunk the same way: think 0.5–1.5 s, 1.5 s windows.
fn swarm_query_cfg() -> QueryCfg {
    QueryCfg {
        think_min: SimDuration::from_millis(500),
        think_max: SimDuration::from_millis(1_500),
        response_wait: SimDuration::from_millis(1_500),
        ..QueryCfg::default()
    }
}

fn child_main(id: u32, opts: &Opts) -> std::io::Result<()> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    println!("ADDR {}", socket.local_addr()?);
    std::io::stdout().flush()?;

    let mut line = String::new();
    BufReader::new(std::io::stdin()).read_line(&mut line)?;
    let mut words = line.split_whitespace();
    if words.next() != Some("PEERS") {
        eprintln!("child {id}: expected PEERS line, got {line:?}");
        std::process::exit(3);
    }
    let addrs: Vec<SocketAddr> = words
        .map(|w| w.parse().expect("well-formed peer address"))
        .collect();
    assert_eq!(addrs.len(), opts.nodes as usize, "one address per node");
    let peers: Vec<(NodeId, SocketAddr)> = addrs
        .iter()
        .enumerate()
        .filter(|&(i, _)| i as u32 != id)
        .map(|(i, &a)| (NodeId(i as u32), a))
        .collect();

    // The whole swarm's holdings from the shared seed; keep our slot.
    let catalog = Catalog::default();
    let mut assign_rng = Rng::new(opts.seed).fork(0xF11E5);
    let files = catalog
        .assign(opts.nodes as usize, &mut assign_rng)
        .swap_remove(id as usize);

    let node = NodeId(id);
    let algo = build_algo(
        opts.algo,
        node,
        swarm_params(),
        0,
        Rng::new(opts.seed).fork(1_000 + id as u64),
    );
    let engine = QueryEngine::new(
        node,
        swarm_query_cfg(),
        catalog,
        files,
        Rng::new(opts.seed).fork(2_000 + id as u64),
    );
    let machine = StackMachine::new(node, AodvCfg::default(), algo, engine);
    let shim = FaultShim::new(&FaultPlan::default(), opts.seed);

    let mut rt = RtNode::new(machine, socket, peers, shim)?;
    let report = rt.run(
        Duration::from_millis(opts.duration_ms),
        Duration::from_millis(id as u64 * JOIN_STAGGER_MS),
    )?;

    println!(
        "RESULT id={id} issued={} answered={} hits={} sent={} recv={} decode_err={}",
        report.issued,
        report.answered,
        report.hits_served,
        report.frames_sent,
        report.frames_received,
        report.decode_errors,
    );
    Ok(())
}

#[derive(Default)]
struct Totals {
    issued: u64,
    answered: u64,
    hits: u64,
    sent: u64,
    recv: u64,
    decode_err: u64,
}

/// One full swarm round; `Ok` carries the aggregated child results.
fn run_swarm(opts: &Opts) -> Result<Totals, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children = Vec::new();
    for id in 0..opts.nodes {
        let child = Command::new(&exe)
            .args([
                "--child",
                &id.to_string(),
                "--nodes",
                &opts.nodes.to_string(),
                "--algo",
                opts.algo.name(),
                "--duration-ms",
                &opts.duration_ms.to_string(),
                "--seed",
                &opts.seed.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn child {id}: {e}"))?;
        children.push(child);
    }

    // Collect every child's self-assigned address, in id order.
    let mut addrs = Vec::new();
    let mut outs = Vec::new();
    for (id, child) in children.iter_mut().enumerate() {
        let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read ADDR from child {id}: {e}"))?;
        let addr = line
            .strip_prefix("ADDR ")
            .ok_or_else(|| format!("child {id} spoke {line:?}, expected ADDR"))?
            .trim()
            .to_string();
        addrs.push(addr);
        outs.push(reader);
    }

    // Distribute the address book; the swarm starts on receipt.
    let book = format!("PEERS {}\n", addrs.join(" "));
    for (id, child) in children.iter_mut().enumerate() {
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(book.as_bytes())
            .map_err(|e| format!("send PEERS to child {id}: {e}"))?;
    }

    // Harvest RESULT lines and exit statuses.
    let mut totals = Totals::default();
    for (id, (mut child, mut reader)) in children.into_iter().zip(outs).enumerate() {
        let mut result_line = None;
        for line in (&mut reader).lines() {
            let line = line.map_err(|e| format!("read from child {id}: {e}"))?;
            if line.starts_with("RESULT ") {
                result_line = Some(line);
            }
        }
        let status = child
            .wait()
            .map_err(|e| format!("wait for child {id}: {e}"))?;
        if !status.success() {
            return Err(format!("child {id} exited with {status}"));
        }
        let line = result_line.ok_or_else(|| format!("child {id} printed no RESULT"))?;
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed RESULT field {field:?}"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric RESULT field {field:?}"))?;
            match key {
                "issued" => totals.issued += value,
                "answered" => totals.answered += value,
                "hits" => totals.hits += value,
                "sent" => totals.sent += value,
                "recv" => totals.recv += value,
                "decode_err" => totals.decode_err += value,
                "id" => {}
                _ => return Err(format!("unknown RESULT field {field:?}")),
            }
        }
    }
    Ok(totals)
}

fn main() {
    let opts = parse_opts();
    if let Some(id) = opts.child_id {
        if let Err(e) = child_main(id, &opts) {
            eprintln!("child {id}: {e}");
            std::process::exit(3);
        }
        return;
    }

    let attempts = 1 + opts.retries;
    for attempt in 1..=attempts {
        match run_swarm(&opts) {
            Ok(t) => {
                println!(
                    "SWARM nodes={} algo={} duration_ms={} attempt={} \
                     issued={} answered={} hits={} frames_sent={} frames_recv={} decode_err={}",
                    opts.nodes,
                    opts.algo.name(),
                    opts.duration_ms,
                    attempt,
                    t.issued,
                    t.answered,
                    t.hits,
                    t.sent,
                    t.recv,
                    t.decode_err,
                );
                if t.decode_err > 0 {
                    eprintln!("swarm: {} undecodable datagrams", t.decode_err);
                    std::process::exit(1);
                }
                if t.answered >= opts.min_answered {
                    println!("SWARM OK");
                    return;
                }
                eprintln!(
                    "swarm attempt {attempt}/{attempts}: answered {} < required {}",
                    t.answered, opts.min_answered
                );
            }
            Err(e) => eprintln!("swarm attempt {attempt}/{attempts}: {e}"),
        }
    }
    eprintln!("SWARM FAILED after {attempts} attempts");
    std::process::exit(1);
}
