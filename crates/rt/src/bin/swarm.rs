//! A multi-process loopback swarm: N OS processes, each hosting one
//! [`p2p_stack::StackMachine`] on its own UDP socket, running a
//! (re)configuration algorithm and the query workload end-to-end over
//! real datagrams.
//!
//! Process model: the parent re-executes itself with `--child` for each
//! node. A child binds `127.0.0.1:0` (the kernel hands out a free port —
//! no coordination, no collisions), advertises the address on stdout as
//! `ADDR <addr>`, and blocks until the parent distributes the full
//! address book on stdin as one `PEERS <addr0> <addr1> …` line. Each
//! child then joins with an id-proportional delay (staggered joins, as
//! the DES's arrival process provides) and runs for the configured wall
//! duration, finishing with a `RESULT key=value…` line the parent
//! aggregates.
//!
//! File placement is deterministic: every child derives the *entire*
//! swarm's Zipf assignment from the shared `--seed` via
//! [`Catalog::assign`] and keeps its own slot, exactly how the DES
//! scenario seeds holdings — no placement traffic needed.
//!
//! With `--obs` the swarm additionally runs the distributed
//! observability pipeline end-to-end. Each child arms the machine's
//! [`p2p_stack::ObsSink`], so the event loop records the same counters,
//! spans and causal traces the DES adapters record; at a wall-clock
//! cadence it ships a small `TELEM <hex>` heartbeat frame (running
//! counters, no trace) on the same stdout the RESULT line uses, and at
//! shutdown one full frame carrying the causal trace. The parent keeps
//! the *last* frame per child (snapshots are running totals), merges the
//! reports with [`manet_obs::ObsReport::merge`] and the traces with
//! `TraceLog::merge_offset` (per-node id namespaces keep span ids
//! disjoint), stitches per-process clocks
//! ([`p2p_stack::stitch_clocks`]), and writes `swarm_report.jsonl` plus
//! a Perfetto-loadable `swarm.trace.json` into `--obs-dir`. A child that
//! panics or errors out dumps its flight recorder as `failure_*.jsonl`
//! into the same directory; the parent surfaces any such dumps in its
//! failure summary. Attempt/retry bookkeeping lands in the merged report
//! as `swarm.attempts` / `swarm.retries` counters.
//!
//! Exit status: `0` iff every child exited cleanly and the swarm
//! answered at least `--min-answered` queries (after bounded
//! `--retries`); with `--obs`, additionally iff the merged counters
//! reconcile with the RESULT lines and at least one causal tree spans
//! two OS processes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, UdpSocket};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use manet_aodv::AodvCfg;
use manet_des::{NodeId, Rng, SimDuration};
use manet_obs::report::dump_failure;
use manet_obs::{causal, ObsConfig, ObsReport};
use manet_rt::{FaultShim, RtNode};
use manet_sim::FaultPlan;
use p2p_content::{Catalog, QueryCfg, QueryEngine};
use p2p_core::{build_algo, AlgoKind, OverlayParams};
use p2p_stack::{decode_telemetry, from_hex, stitch_clocks, ObsSink, StackMachine, TraceLog};

/// Per-node join stagger; also the reason short runs still converge.
const JOIN_STAGGER_MS: u64 = 150;

/// Per-child causal-trace capacity (events). The merged log gets
/// `nodes ×` this, so nothing a child retained is evicted by the merge.
const TRACE_CAPACITY: usize = 4096;

/// Wall-clock milliseconds between `TELEM` heartbeat frames.
const TELEM_PERIOD_MS: u64 = 1_000;

struct Opts {
    nodes: u32,
    algo: AlgoKind,
    duration_ms: u64,
    seed: u64,
    min_answered: u64,
    retries: u32,
    obs: bool,
    obs_dir: PathBuf,
    child_id: Option<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: swarm [--nodes N] [--algo basic|regular|random|hybrid] \
         [--duration-ms MS] [--seed S] [--min-answered K] [--retries R] \
         [--obs] [--obs-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        nodes: 8,
        algo: AlgoKind::Regular,
        duration_ms: 5_000,
        seed: 1,
        min_answered: 1,
        retries: 2,
        obs: false,
        obs_dir: PathBuf::from("target/obs-swarm"),
        child_id: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            match args.get(*i) {
                Some(v) => v.clone(),
                None => usage(),
            }
        };
        match args[i].as_str() {
            "--nodes" => opts.nodes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--algo" => {
                let name = value(&mut i);
                opts.algo = AlgoKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| usage());
            }
            "--duration-ms" => opts.duration_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-answered" => {
                opts.min_answered = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--retries" => opts.retries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--obs" => opts.obs = true,
            "--obs-dir" => opts.obs_dir = PathBuf::from(value(&mut i)),
            "--child" => opts.child_id = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 1;
    }
    if opts.nodes < 2 {
        eprintln!("--nodes must be at least 2");
        usage();
    }
    opts
}

/// Overlay timers shrunk from paper scale (tens of seconds) to smoke
/// scale (seconds); ratios preserved.
fn swarm_params() -> OverlayParams {
    OverlayParams {
        timer_initial: SimDuration::from_millis(500),
        max_timer: SimDuration::from_secs(4),
        basic_timer: SimDuration::from_millis(800),
        ping_interval: SimDuration::from_secs(2),
        pong_timeout: SimDuration::from_secs(1),
        handshake_timeout: SimDuration::from_millis(1_500),
        random_response_wait: SimDuration::from_millis(500),
        ..OverlayParams::default()
    }
}

/// Query workload shrunk the same way: think 0.5–1.5 s, 1.5 s windows.
fn swarm_query_cfg() -> QueryCfg {
    QueryCfg {
        think_min: SimDuration::from_millis(500),
        think_max: SimDuration::from_millis(1_500),
        response_wait: SimDuration::from_millis(1_500),
        ..QueryCfg::default()
    }
}

fn child_main(id: u32, opts: &Opts) -> std::io::Result<()> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    println!("ADDR {}", socket.local_addr()?);
    std::io::stdout().flush()?;

    let mut line = String::new();
    BufReader::new(std::io::stdin()).read_line(&mut line)?;
    let mut words = line.split_whitespace();
    if words.next() != Some("PEERS") {
        eprintln!("child {id}: expected PEERS line, got {line:?}");
        std::process::exit(3);
    }
    let addrs: Vec<SocketAddr> = words
        .map(|w| w.parse().expect("well-formed peer address"))
        .collect();
    assert_eq!(addrs.len(), opts.nodes as usize, "one address per node");
    let peers: Vec<(NodeId, SocketAddr)> = addrs
        .iter()
        .enumerate()
        .filter(|&(i, _)| i as u32 != id)
        .map(|(i, &a)| (NodeId(i as u32), a))
        .collect();

    // The whole swarm's holdings from the shared seed; keep our slot.
    let catalog = Catalog::default();
    let mut assign_rng = Rng::new(opts.seed).fork(0xF11E5);
    let files = catalog
        .assign(opts.nodes as usize, &mut assign_rng)
        .swap_remove(id as usize);

    let node = NodeId(id);
    let algo = build_algo(
        opts.algo,
        node,
        swarm_params(),
        0,
        Rng::new(opts.seed).fork(1_000 + id as u64),
    );
    let engine = QueryEngine::new(
        node,
        swarm_query_cfg(),
        catalog,
        files,
        Rng::new(opts.seed).fork(2_000 + id as u64),
    );
    let mut machine = StackMachine::new(node, AodvCfg::default(), algo, engine);
    if opts.obs {
        machine.set_obs(ObsSink::armed(
            id,
            &ObsConfig::default(),
            TRACE_CAPACITY,
            opts.seed,
        ));
    }
    let shim = FaultShim::new(&FaultPlan::default(), opts.seed);

    let mut rt = RtNode::new(machine, socket, peers, shim)?;
    if opts.obs {
        rt.set_telemetry_period(Duration::from_millis(TELEM_PERIOD_MS));
    }

    // The flight recorder is armed around the event loop: a panic or an
    // I/O error inside `run` dumps the node's report (counters, last
    // flight records) as `failure_*.jsonl` for the parent to collect.
    let duration = Duration::from_millis(opts.duration_ms);
    let join_delay = Duration::from_millis(id as u64 * JOIN_STAGGER_MS);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(duration, join_delay)
    }));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => {
            dump_child_failure(&mut rt, id, &opts.obs_dir, format!("event loop: {e}"));
            return Err(e);
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            dump_child_failure(&mut rt, id, &opts.obs_dir, format!("panic: {msg}"));
            std::process::exit(3);
        }
    };

    // Final full-trace telemetry frame *before* RESULT: the parent keeps
    // the last frame per child, and this one carries the causal trace.
    if let Some(hex) = rt.telemetry_hex(true) {
        println!("TELEM {hex}");
    }
    println!(
        "RESULT id={id} issued={} answered={} hits={} sent={} recv={} decode_err={}",
        report.issued,
        report.answered,
        report.hits_served,
        report.frames_sent,
        report.frames_received,
        report.decode_errors,
    );
    Ok(())
}

/// Dump a dying child's observability report (if armed) so the parent
/// finds a `failure_node<id>*.jsonl` post-mortem in the obs directory.
fn dump_child_failure(rt: &mut RtNode, id: u32, dir: &Path, why: String) {
    eprintln!("child {id}: {why}");
    if let Some(report) = rt.obs_report() {
        let report = report.clone();
        match dump_failure(dir, &format!("node{id}"), &[why], &report) {
            Ok(path) => eprintln!("child {id}: dumped {}", path.display()),
            Err(e) => eprintln!("child {id}: failure dump failed: {e}"),
        }
    }
}

#[derive(Default)]
struct Totals {
    issued: u64,
    answered: u64,
    hits: u64,
    sent: u64,
    recv: u64,
    decode_err: u64,
}

/// What the parent distilled from the children's telemetry frames: the
/// merged report and stitched trace land on disk (see
/// [`merge_telemetry`]); the summary carries what the success criteria
/// need.
struct ObsMerged {
    /// Causal trees whose spans come from at least two OS processes.
    cross_process_traces: usize,
}

/// One full swarm round; `Ok` carries the aggregated child results and,
/// with `--obs`, the merged telemetry summary.
fn run_swarm(opts: &Opts, attempt: u32) -> Result<(Totals, Option<ObsMerged>), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children = Vec::new();
    for id in 0..opts.nodes {
        let mut cmd = Command::new(&exe);
        cmd.args([
            "--child",
            &id.to_string(),
            "--nodes",
            &opts.nodes.to_string(),
            "--algo",
            opts.algo.name(),
            "--duration-ms",
            &opts.duration_ms.to_string(),
            "--seed",
            &opts.seed.to_string(),
        ]);
        if opts.obs {
            cmd.arg("--obs");
            cmd.arg("--obs-dir");
            cmd.arg(&opts.obs_dir);
        }
        let child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn child {id}: {e}"))?;
        children.push(child);
    }

    // Collect every child's self-assigned address, in id order.
    let mut addrs = Vec::new();
    let mut outs = Vec::new();
    for (id, child) in children.iter_mut().enumerate() {
        let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read ADDR from child {id}: {e}"))?;
        let addr = line
            .strip_prefix("ADDR ")
            .ok_or_else(|| format!("child {id} spoke {line:?}, expected ADDR"))?
            .trim()
            .to_string();
        addrs.push(addr);
        outs.push(reader);
    }

    // Distribute the address book; the swarm starts on receipt.
    let book = format!("PEERS {}\n", addrs.join(" "));
    for (id, child) in children.iter_mut().enumerate() {
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(book.as_bytes())
            .map_err(|e| format!("send PEERS to child {id}: {e}"))?;
    }

    // Harvest TELEM and RESULT lines plus exit statuses. Telemetry
    // frames are running totals, so only the last one per child counts —
    // a child that died mid-run leaves its last heartbeat as a partial
    // post-mortem, which still merges.
    let mut totals = Totals::default();
    let mut last_telem: Vec<Option<String>> = vec![None; opts.nodes as usize];
    for (id, (mut child, mut reader)) in children.into_iter().zip(outs).enumerate() {
        let mut result_line = None;
        for line in (&mut reader).lines() {
            let line = line.map_err(|e| format!("read from child {id}: {e}"))?;
            if let Some(hex) = line.strip_prefix("TELEM ") {
                last_telem[id] = Some(hex.to_string());
            } else if line.starts_with("RESULT ") {
                // Surface each child's own tally in the parent summary.
                println!("{line}");
                result_line = Some(line);
            }
        }
        let status = child
            .wait()
            .map_err(|e| format!("wait for child {id}: {e}"))?;
        if !status.success() {
            return Err(format!(
                "child {id} exited with {status}{}",
                failure_dump_summary(opts)
            ));
        }
        let line = result_line.ok_or_else(|| format!("child {id} printed no RESULT"))?;
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed RESULT field {field:?}"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric RESULT field {field:?}"))?;
            match key {
                "issued" => totals.issued += value,
                "answered" => totals.answered += value,
                "hits" => totals.hits += value,
                "sent" => totals.sent += value,
                "recv" => totals.recv += value,
                "decode_err" => totals.decode_err += value,
                "id" => {}
                _ => return Err(format!("unknown RESULT field {field:?}")),
            }
        }
    }

    if !opts.obs {
        return Ok((totals, None));
    }
    let merged = merge_telemetry(opts, attempt, &last_telem, &totals)?;
    Ok((totals, Some(merged)))
}

/// Decode every child's last telemetry frame, fold reports and traces,
/// stitch clocks, verify counter reconciliation, and write the merged
/// artifacts into the obs directory.
fn merge_telemetry(
    opts: &Opts,
    attempt: u32,
    last_telem: &[Option<String>],
    totals: &Totals,
) -> Result<ObsMerged, String> {
    let mut report = ObsReport::default();
    let mut trace = TraceLog::new(TRACE_CAPACITY * opts.nodes as usize);
    for (id, hex) in last_telem.iter().enumerate() {
        let hex = hex
            .as_ref()
            .ok_or_else(|| format!("child {id} shipped no telemetry frame"))?;
        let bytes = from_hex(hex).map_err(|e| format!("child {id} telemetry hex: {e}"))?;
        let telem =
            decode_telemetry(&bytes).map_err(|e| format!("child {id} telemetry frame: {e}"))?;
        if telem.node != id as u32 {
            return Err(format!("child {id} telemetry claims node {}", telem.node));
        }
        report.merge(&telem.report);
        trace.merge_offset(&telem.trace);
    }

    // The bounded-retry bookkeeping becomes part of the merged report.
    let c_attempts = report.registry.counter("swarm.attempts");
    report.registry.set(c_attempts, attempt as u64);
    let c_retries = report.registry.counter("swarm.retries");
    report.registry.set(c_retries, (attempt - 1) as u64);
    let c_nodes = report.registry.counter("swarm.nodes");
    report.registry.set(c_nodes, opts.nodes as u64);

    // Reconciliation: the merged protocol counters must agree *exactly*
    // with the sum of the children's RESULT lines — both sides read the
    // same totals at the same shutdown sync point, so any difference
    // means frames were lost or merged wrong.
    let merged_issued = report
        .registry
        .counter_by_name("stack.queries_issued")
        .unwrap_or(0);
    if merged_issued != totals.issued {
        return Err(format!(
            "merged stack.queries_issued={merged_issued} but RESULT lines sum to {}",
            totals.issued
        ));
    }
    if totals.answered > totals.issued {
        return Err(format!(
            "answered {} exceeds issued {}",
            totals.answered, totals.issued
        ));
    }

    // Stitch per-process clocks and count trees spanning >= 2 processes.
    let stitched = stitch_clocks(trace.causal_events());
    let mut nodes_by_trace: HashMap<u64, std::collections::HashSet<u32>> = HashMap::new();
    for e in &stitched {
        nodes_by_trace.entry(e.trace_id).or_default().insert(e.node);
    }
    let cross_process_traces = nodes_by_trace.values().filter(|n| n.len() >= 2).count();

    std::fs::create_dir_all(&opts.obs_dir)
        .map_err(|e| format!("create {}: {e}", opts.obs_dir.display()))?;
    let report_path = opts.obs_dir.join("swarm_report.jsonl");
    report
        .write_jsonl(&report_path)
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    let artifact = causal::artifact(&stitched);
    let trace_path = opts.obs_dir.join("swarm.trace.json");
    std::fs::write(&trace_path, artifact.render())
        .map_err(|e| format!("write {}: {e}", trace_path.display()))?;
    causal::validate_artifact(&artifact)
        .map_err(|e| format!("merged artifact failed validation: {e}"))?;

    println!(
        "OBS nodes={} merged_runs={} issued={merged_issued} traces={} cross_process_traces={} \
         report={} trace={}",
        opts.nodes,
        report.runs,
        nodes_by_trace.len(),
        cross_process_traces,
        report_path.display(),
        trace_path.display(),
    );
    Ok(ObsMerged {
        cross_process_traces,
    })
}

/// A one-line inventory of `failure_*.jsonl` dumps left by dead
/// children, appended to the parent's error diagnostics.
fn failure_dump_summary(opts: &Opts) -> String {
    if !opts.obs {
        return String::new();
    }
    let mut dumps = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&opts.obs_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("failure_") && name.ends_with(".jsonl") {
                dumps.push(name);
            }
        }
    }
    dumps.sort();
    if dumps.is_empty() {
        format!("; no failure dumps in {}", opts.obs_dir.display())
    } else {
        format!(
            "; failure dumps in {}: {}",
            opts.obs_dir.display(),
            dumps.join(", ")
        )
    }
}

fn main() {
    let opts = parse_opts();
    if let Some(id) = opts.child_id {
        if let Err(e) = child_main(id, &opts) {
            eprintln!("child {id}: {e}");
            std::process::exit(3);
        }
        return;
    }

    let attempts = 1 + opts.retries;
    for attempt in 1..=attempts {
        match run_swarm(&opts, attempt) {
            Ok((t, obs)) => {
                println!(
                    "SWARM nodes={} algo={} duration_ms={} attempt={} \
                     issued={} answered={} hits={} frames_sent={} frames_recv={} decode_err={}",
                    opts.nodes,
                    opts.algo.name(),
                    opts.duration_ms,
                    attempt,
                    t.issued,
                    t.answered,
                    t.hits,
                    t.sent,
                    t.recv,
                    t.decode_err,
                );
                if t.decode_err > 0 {
                    eprintln!("swarm: {} undecodable datagrams", t.decode_err);
                    std::process::exit(1);
                }
                let obs_ok = match &obs {
                    None => true,
                    Some(m) => m.cross_process_traces >= 1,
                };
                if t.answered >= opts.min_answered && obs_ok {
                    println!("SWARM OK");
                    return;
                }
                if t.answered < opts.min_answered {
                    eprintln!(
                        "swarm attempt {attempt}/{attempts}: answered {} < required {}",
                        t.answered, opts.min_answered
                    );
                }
                if !obs_ok {
                    eprintln!(
                        "swarm attempt {attempt}/{attempts}: no causal tree spans two processes"
                    );
                }
            }
            Err(e) => eprintln!("swarm attempt {attempt}/{attempts}: {e}"),
        }
    }
    eprintln!("SWARM FAILED after {attempts} attempts");
    std::process::exit(1);
}
