//! The scenario's [`FaultPlan`] at the socket, instead of the modelled
//! radio.
//!
//! The DES injects faults where the medium is modelled: the world reads
//! the active impairment on every planned transmission and biases the
//! delivery draw. This substrate has a real medium (the loopback
//! interface) that never misbehaves, so the *same plan semantics* are
//! applied at the only place the substrate owns — the socket shim every
//! outgoing datagram passes through:
//!
//! * [`PacketLoss`] — iid drop with probability `base`, raised to
//!   `burst_loss` while the two-state (Gilbert-style) burst process is in
//!   its burst state; dwell times are exponential draws from a dedicated
//!   [`Rng`] stream, advanced lazily against the run clock;
//! * [`LinkFlaps`] — every datagram sent inside a flap window
//!   `[k·period, k·period + down)`, `k ≥ 1`, is dropped — the DES's
//!   whole-medium outage, which on a full-mesh swarm partitions
//!   everybody from everybody exactly as it does in simulation;
//! * [`JitterSpikes`] — datagrams sent inside a spike window are held
//!   for `extra_delay` before hitting the wire, preserving send order
//!   via a `(due, seq)` heap the event loop drains.
//!
//! Crashes are not ported: on this substrate a crash is a process you
//! kill, not a flag you set.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;

use manet_des::{Rng, SimDuration, SimTime};
use manet_sim::{FaultPlan, JitterSpikes, LinkFlaps, PacketLoss};

/// What the shim decided for one outgoing datagram.
#[derive(Debug, PartialEq)]
pub enum SendVerdict {
    /// Put it on the wire now.
    Now,
    /// Lose it (loss draw or flap window).
    Drop,
    /// Hold it until the given instant (jitter spike).
    DelayUntil(SimTime),
}

/// Two-state burst process, advanced lazily against the run clock.
struct BurstState {
    on: bool,
    next_toggle: SimTime,
    mean_quiet: f64,
    mean_burst: f64,
    burst_loss: f64,
}

/// A parked datagram: `(due, seq)` orders the release heap, `seq`
/// preserving send order within one spike.
type HeldDatagram = (SimTime, u64, SocketAddr, Vec<u8>);

/// Socket-level adapter for a scenario [`FaultPlan`].
pub struct FaultShim {
    loss: Option<PacketLoss>,
    burst: Option<BurstState>,
    flaps: Option<LinkFlaps>,
    jitter: Option<JitterSpikes>,
    rng: Rng,
    /// Held datagrams, earliest due first.
    held: BinaryHeap<Reverse<HeldDatagram>>,
    seq: u64,
    /// Datagrams dropped by the shim (loss + flaps), for reporting.
    pub dropped: u64,
    /// Datagrams delayed by the shim, for reporting.
    pub delayed: u64,
}

impl FaultShim {
    /// A shim applying `plan`'s medium impairments. Crash entries are
    /// ignored (see module docs). `seed` feeds the dedicated fault
    /// stream, mirroring the DES's per-world fault RNG.
    pub fn new(plan: &FaultPlan, seed: u64) -> FaultShim {
        let mut rng = Rng::new(seed).fork(0xFA17);
        let burst = plan.loss.as_ref().and_then(|l| l.burst).map(|b| {
            let first = rng.exponential(b.mean_quiet);
            BurstState {
                on: false,
                next_toggle: SimTime::from_secs_f64(first),
                mean_quiet: b.mean_quiet,
                mean_burst: b.mean_burst,
                burst_loss: b.burst_loss,
            }
        });
        FaultShim {
            loss: plan.loss,
            burst,
            flaps: plan.link_flaps,
            jitter: plan.jitter,
            rng,
            held: BinaryHeap::new(),
            seq: 0,
            dropped: 0,
            delayed: 0,
        }
    }

    /// True when the plan impairs nothing at the socket (the common
    /// case; lets the event loop skip the shim entirely).
    pub fn is_transparent(&self) -> bool {
        self.loss.is_none() && self.flaps.is_none() && self.jitter.is_none()
    }

    /// Decide the fate of a datagram sent at `now`. On
    /// [`SendVerdict::DelayUntil`] the caller hands the bytes to
    /// [`hold`](FaultShim::hold) and drains them when due.
    pub fn on_send(&mut self, now: SimTime) -> SendVerdict {
        if in_window(now, self.flaps.map(|f| (f.period, f.down))) {
            self.dropped += 1;
            return SendVerdict::Drop;
        }
        if let Some(loss) = &self.loss {
            let mut p = loss.base;
            if let Some(burst) = &mut self.burst {
                burst.advance(now, &mut self.rng);
                if burst.on {
                    p = p.max(burst.burst_loss);
                }
            }
            if self.rng.chance(p) {
                self.dropped += 1;
                return SendVerdict::Drop;
            }
        }
        if let Some(j) = &self.jitter {
            if in_window(now, Some((j.period, j.width))) {
                self.delayed += 1;
                return SendVerdict::DelayUntil(now + j.extra_delay);
            }
        }
        SendVerdict::Now
    }

    /// Park a delayed datagram until `due`.
    pub fn hold(&mut self, due: SimTime, to: SocketAddr, bytes: Vec<u8>) {
        self.held.push(Reverse((due, self.seq, to, bytes)));
        self.seq += 1;
    }

    /// Earliest instant a held datagram becomes due, if any — folded
    /// into the event loop's poll deadline.
    pub fn next_due(&self) -> Option<SimTime> {
        self.held.peek().map(|Reverse((due, ..))| *due)
    }

    /// Pop every held datagram due at or before `now`, in `(due, seq)`
    /// order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(SocketAddr, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(Reverse((due, ..))) = self.held.peek() {
            if *due > now {
                break;
            }
            let Reverse((_, _, to, bytes)) = self.held.pop().expect("peeked");
            out.push((to, bytes));
        }
        out
    }
}

impl BurstState {
    /// Catch the two-state process up to `now`, drawing dwell times in
    /// sequence exactly as the DES subsystem does at its toggle events.
    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        while self.next_toggle <= now {
            self.on = !self.on;
            let mean = if self.on {
                self.mean_burst
            } else {
                self.mean_quiet
            };
            let dwell = rng.exponential(mean);
            self.next_toggle += SimDuration::from_secs_f64(dwell);
        }
    }
}

/// Is `now` inside a periodic window `[k·period, k·period + width)` for
/// some `k ≥ 1`? Mirrors the DES drivers, whose first window opens one
/// full period into the run.
fn in_window(now: SimTime, cfg: Option<(SimDuration, SimDuration)>) -> bool {
    let Some((period, width)) = cfg else {
        return false;
    };
    let t = now.ticks();
    let p = period.ticks();
    t >= p && t % p < width.ticks()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> SocketAddr {
        "127.0.0.1:9".parse().unwrap()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut shim = FaultShim::new(&FaultPlan::default(), 7);
        assert!(shim.is_transparent());
        for ms in [0u64, 5, 500, 50_000] {
            assert_eq!(
                shim.on_send(SimTime::from_ticks(ms * 1_000)),
                SendVerdict::Now
            );
        }
        assert_eq!(shim.dropped, 0);
    }

    #[test]
    fn certain_loss_drops_everything() {
        let plan = FaultPlan {
            loss: Some(PacketLoss {
                base: 1.0,
                burst: None,
            }),
            ..Default::default()
        };
        let mut shim = FaultShim::new(&plan, 7);
        for s in 0..20 {
            assert_eq!(shim.on_send(SimTime::from_secs(s)), SendVerdict::Drop);
        }
        assert_eq!(shim.dropped, 20);
    }

    #[test]
    fn flap_windows_match_the_des_schedule() {
        let plan = FaultPlan {
            link_flaps: Some(LinkFlaps {
                period: SimDuration::from_secs(10),
                down: SimDuration::from_secs(2),
            }),
            ..Default::default()
        };
        let mut shim = FaultShim::new(&plan, 7);
        // Before the first period: up (the DES arms its first flap at t=period).
        assert_eq!(shim.on_send(SimTime::from_secs(1)), SendVerdict::Now);
        // Inside [10, 12): down.
        assert_eq!(shim.on_send(SimTime::from_secs(10)), SendVerdict::Drop);
        assert_eq!(shim.on_send(SimTime::from_secs(11)), SendVerdict::Drop);
        // Back up at 12, down again at [20, 22).
        assert_eq!(shim.on_send(SimTime::from_secs(12)), SendVerdict::Now);
        assert_eq!(shim.on_send(SimTime::from_secs(21)), SendVerdict::Drop);
    }

    #[test]
    fn jitter_delays_inside_spikes_and_heap_orders_releases() {
        let plan = FaultPlan {
            jitter: Some(JitterSpikes {
                period: SimDuration::from_secs(5),
                width: SimDuration::from_secs(1),
                extra_delay: SimDuration::from_millis(250),
            }),
            ..Default::default()
        };
        let mut shim = FaultShim::new(&plan, 7);
        assert_eq!(shim.on_send(SimTime::from_secs(1)), SendVerdict::Now);
        let t = SimTime::from_secs(5) + SimDuration::from_millis(100);
        let SendVerdict::DelayUntil(due) = shim.on_send(t) else {
            panic!("spike window must delay");
        };
        assert_eq!(due, t + SimDuration::from_millis(250));
        shim.hold(due, addr(), vec![1]);
        shim.hold(due, addr(), vec![2]);
        assert_eq!(shim.next_due(), Some(due));
        assert!(shim.take_due(t).is_empty(), "not due yet");
        let released = shim.take_due(due);
        assert_eq!(
            released.iter().map(|(_, b)| b[0]).collect::<Vec<_>>(),
            vec![1, 2],
            "send order preserved within a spike"
        );
        assert_eq!(shim.next_due(), None);
    }

    #[test]
    fn burst_process_raises_loss_only_while_bursting() {
        let plan = FaultPlan {
            loss: Some(PacketLoss {
                base: 0.0,
                burst: Some(manet_sim::BurstCfg {
                    mean_quiet: 1.0,
                    mean_burst: 1.0,
                    burst_loss: 1.0,
                }),
            }),
            ..Default::default()
        };
        let mut shim = FaultShim::new(&plan, 7);
        // Sample a long stretch: with base 0 and burst loss 1, a datagram
        // is dropped iff the two-state process is bursting — both states
        // must be visited over many mean dwell times.
        let (mut drops, mut passes) = (0u32, 0u32);
        for ms in (0..60_000).step_by(100) {
            match shim.on_send(SimTime::from_ticks(ms * 1_000)) {
                SendVerdict::Drop => drops += 1,
                SendVerdict::Now => passes += 1,
                v => panic!("unexpected verdict {v:?}"),
            }
        }
        assert!(drops > 0, "burst state never entered");
        assert!(passes > 0, "quiet state never re-entered");
    }
}
