//! Readiness polling with zero external dependencies.
//!
//! On Linux this is a hand-rolled `epoll` binding — three syscalls
//! declared over the libc that `std` already links, one level-triggered
//! interest registered at construction. The event loop only ever watches
//! a single UDP socket, so the full mio machinery (tokens, interest sets,
//! reregistration) collapses to "is the socket readable before my next
//! timer deadline" — which is exactly the [`Poller::wait`] contract.
//!
//! Elsewhere the same contract is met portably with a blocking
//! `peek`-with-timeout on the socket itself; the socket is flipped back
//! to non-blocking before returning so the caller's drain loop behaves
//! identically on both paths.

use std::io;
use std::net::UdpSocket;
use std::time::Duration;

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLLIN: u32 = 0x1;

    /// Kernel epoll event record. Packed on x86 ABIs, naturally aligned
    /// elsewhere — mirrors the kernel UAPI headers.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Waits for one UDP socket to become readable, bounded by a deadline.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: std::os::raw::c_int,
    #[cfg(not(target_os = "linux"))]
    _portable: (),
}

impl Poller {
    /// A poller watching `socket` for readability. The socket is put in
    /// non-blocking mode — the event loop drains it with `recv_from`
    /// until `WouldBlock` after every readiness signal.
    #[cfg(target_os = "linux")]
    pub fn new(socket: &UdpSocket) -> io::Result<Poller> {
        use std::os::fd::AsRawFd;
        socket.set_nonblocking(true)?;
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: 0,
        };
        let rc = unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, socket.as_raw_fd(), &mut ev) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        Ok(Poller { epfd })
    }

    /// Portable fallback constructor (no registration needed).
    #[cfg(not(target_os = "linux"))]
    pub fn new(socket: &UdpSocket) -> io::Result<Poller> {
        socket.set_nonblocking(true)?;
        Ok(Poller { _portable: () })
    }

    /// Block until `socket` is readable or `timeout` elapses; `None`
    /// sleeps until readable. Returns whether the socket is readable.
    #[cfg(target_os = "linux")]
    pub fn wait(&self, _socket: &UdpSocket, timeout: Option<Duration>) -> io::Result<bool> {
        let ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as std::os::raw::c_int,
        };
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        loop {
            let n = unsafe { sys::epoll_wait(self.epfd, &mut ev, 1, ms) };
            if n >= 0 {
                return Ok(n > 0);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Portable fallback: a blocking 1-byte `peek` with a read timeout,
    /// restoring non-blocking mode before returning.
    #[cfg(not(target_os = "linux"))]
    pub fn wait(&self, socket: &UdpSocket, timeout: Option<Duration>) -> io::Result<bool> {
        if timeout == Some(Duration::ZERO) {
            let mut byte = [0u8; 1];
            return match socket.peek_from(&mut byte) {
                Ok(_) => Ok(true),
                Err(e) if would_block(&e) => Ok(false),
                Err(e) => Err(e),
            };
        }
        socket.set_nonblocking(false)?;
        // A zero read timeout means "no timeout" to the OS; clamp up.
        socket.set_read_timeout(timeout.map(|t| t.max(Duration::from_millis(1))))?;
        let mut byte = [0u8; 1];
        let readable = match socket.peek_from(&mut byte) {
            Ok(_) => Ok(true),
            Err(e) if would_block(&e) => Ok(false),
            Err(e) => Err(e),
        };
        socket.set_nonblocking(true)?;
        readable
    }
}

#[cfg(not(target_os = "linux"))]
fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        (a, b)
    }

    #[test]
    fn timeout_expires_without_traffic() {
        let (a, _b) = pair();
        let poller = Poller::new(&a).expect("poller");
        let t0 = Instant::now();
        let readable = poller
            .wait(&a, Some(Duration::from_millis(30)))
            .expect("wait");
        assert!(!readable, "no datagram was sent");
        assert!(t0.elapsed() >= Duration::from_millis(25), "slept the bound");
    }

    #[test]
    fn readiness_reports_pending_datagram() {
        let (a, b) = pair();
        let poller = Poller::new(&a).expect("poller");
        b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
        let readable = poller
            .wait(&a, Some(Duration::from_millis(500)))
            .expect("wait");
        assert!(readable, "datagram is pending");
        let mut buf = [0u8; 16];
        let (n, _) = a.recv_from(&mut buf).expect("recv");
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn zero_timeout_is_a_nonblocking_probe() {
        let (a, _b) = pair();
        let poller = Poller::new(&a).expect("poller");
        let t0 = Instant::now();
        let readable = poller.wait(&a, Some(Duration::ZERO)).expect("wait");
        assert!(!readable);
        assert!(t0.elapsed() < Duration::from_millis(50), "did not sleep");
    }
}
