//! Reconciling the protocol clock with the wall clock.
//!
//! The protocol crates measure time as [`SimTime`] — integer microseconds
//! since t = 0 — with no opinion about what advances it. The DES advances
//! it by popping events; this substrate advances it by *living through*
//! it: [`Clock::now`] is the wall-clock microseconds elapsed since
//! [`Clock::start`], so one tick is one real microsecond and every
//! protocol constant (hello intervals, RREQ backoff, query think times)
//! means exactly what it means in simulation.
//!
//! The other direction — turning a protocol deadline back into "how long
//! may I sleep" — is [`Clock::timeout_until`], which feeds the event
//! loop's poll timeout. It rounds *up* to the poller's millisecond
//! granularity so a wake never lands before its deadline (the loop would
//! spin); firing a few hundred microseconds late is harmless, exactly as
//! late timer pops are in any real stack.

use std::time::{Duration, Instant};

use manet_des::SimTime;

/// A monotonic run clock mapping wall time onto the [`SimTime`] axis.
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// Start the clock: this instant becomes [`SimTime::ZERO`].
    pub fn start() -> Clock {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Wall-clock microseconds elapsed since start, as protocol time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ticks(self.epoch.elapsed().as_micros() as u64)
    }

    /// How long the event loop may sleep before `deadline`.
    ///
    /// `None` means forever (nothing pending — [`SimTime::MAX`]); a zero
    /// duration means the deadline already passed. Rounded up to whole
    /// milliseconds for the poller.
    pub fn timeout_until(&self, deadline: SimTime) -> Option<Duration> {
        if deadline == SimTime::MAX {
            return None;
        }
        let now = self.now();
        let left = deadline.saturating_since(now).ticks();
        Some(Duration::from_millis(left.div_ceil(1_000)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let clock = Clock::start();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "wall time advances protocol time");
        assert!(b.ticks() >= 2_000, "at least the slept microseconds");
    }

    #[test]
    fn timeout_rounds_up_and_handles_sentinels() {
        let clock = Clock::start();
        assert_eq!(clock.timeout_until(SimTime::MAX), None, "nothing pending");
        assert_eq!(
            clock.timeout_until(SimTime::ZERO),
            Some(Duration::ZERO),
            "past deadlines poll without sleeping"
        );
        let far = clock.now() + manet_des::SimDuration::from_secs(5);
        let t = clock.timeout_until(far).unwrap();
        assert!(t <= Duration::from_secs(5));
        assert!(t >= Duration::from_secs(4), "no gross undersleep");
    }
}
