//! # manet-rt — the real-time substrate
//!
//! The second of the workspace's two [`Substrate`](manet_des::Substrate)
//! implementations: where `manet-sim` executes the protocol stack
//! against a virtual clock and a modelled radio, this crate executes the
//! *identical* stack ([`p2p_stack::StackMachine`]) against the wall
//! clock and real UDP sockets, with zero external dependencies:
//!
//! * [`clock`] — maps elapsed wall microseconds onto the [`SimTime`]
//!   axis (one tick = one microsecond on both substrates) and turns
//!   protocol deadlines back into poll timeouts;
//! * [`epoll`] — a hand-rolled readiness poller (`epoll` FFI on Linux, a
//!   blocking peek-with-timeout elsewhere);
//! * [`faults`] — the scenario [`FaultPlan`](manet_sim::FaultPlan)
//!   re-applied at the socket: loss bursts, link flaps and jitter spikes
//!   with the DES's window semantics;
//! * [`node`] — [`RtNode`], the event loop hosting one machine per OS
//!   process; the `swarm` binary forks N of them on loopback.
//!
//! [`SimTime`]: manet_des::SimTime

pub mod clock;
pub mod epoll;
pub mod faults;
pub mod node;

pub use clock::Clock;
pub use epoll::Poller;
pub use faults::{FaultShim, SendVerdict};
pub use node::{RtNode, RtReport};
