//! One OS process hosting one [`StackMachine`] on one UDP socket.
//!
//! The event loop is the real-time analogue of the DES dispatch loop,
//! with the future-event list replaced by the kernel:
//!
//! * the node's combined protocol timer becomes the poll *deadline* —
//!   [`Substrate::arm_timer`] records the earliest wake, and
//!   [`Clock::timeout_until`] turns it into how long `epoll_wait` may
//!   sleep;
//! * the modelled radio becomes the socket — a [`SendDown`] broadcast is
//!   a `sendto` to every peer (the loopback full mesh realizes the
//!   single-hop broadcast domain of a dense MANET), a unicast is one
//!   `sendto`;
//! * frame arrival becomes readability — every drained datagram is
//!   decoded by [`p2p_stack::decode_frame`] and handed up as the same
//!   [`FrameUp`](p2p_stack::FrameUp) verb the DES phy layer produces;
//!   undecodable datagrams
//!   are counted, never fatal: a real socket receives whatever the
//!   network felt like delivering.
//!
//! The protocol machine itself is byte-for-byte the one the simulator
//! hosts; nothing in this module looks inside it.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Instant;

use manet_des::{NodeId, SimTime, Substrate};
use manet_obs::{CounterId, ObsReport, Severity, SpanId};
use p2p_stack::{
    decode_frame, encode_frame, encode_telemetry, to_hex, SendDown, StackMachine, StackOutput,
    TraceLog,
};

use crate::clock::Clock;
use crate::epoll::Poller;
use crate::faults::{FaultShim, SendVerdict};

/// Largest datagram the codec may produce; loopback MTU is far larger.
const MAX_DATAGRAM: usize = 2048;

/// One wall-clock span timing per this many loop iterations: the profile
/// stays an unbiased estimate while the hot path pays for a timestamp
/// pair only once per stride (see `SpanProfile::add_weighted`).
const SPAN_STRIDE: u64 = 64;

/// What one node observed over its run, for the swarm's RESULT line.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtReport {
    /// Datagrams put on the wire.
    pub frames_sent: u64,
    /// Datagrams received and decoded.
    pub frames_received: u64,
    /// Datagrams that failed to decode (counted, dropped).
    pub decode_errors: u64,
    /// Queries this node issued.
    pub issued: u64,
    /// Issued queries that closed with at least one answer.
    pub answered: u64,
    /// QueryHits this node served as a holder.
    pub hits_served: u64,
    /// Datagrams the fault shim dropped.
    pub shim_dropped: u64,
    /// Datagrams the fault shim delayed.
    pub shim_delayed: u64,
}

/// The deadline register of the real-time substrate: where the DES
/// schedules a `NodeTimer` event, this records the earliest requested
/// wake and the event loop sleeps no longer than that.
struct DeadlineReg {
    clock: Clock,
    next: SimTime,
}

impl Substrate for DeadlineReg {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn arm_timer(&mut self, _node: NodeId, at: SimTime) {
        self.next = self.next.min(at);
    }
}

/// The substrate's registered observability handles, resolved once at
/// construction when the hosted machine's [`p2p_stack::ObsSink`] is
/// armed. Every event-loop site then pays one `Option` branch plus a
/// slab-indexed increment — the same discipline as the DES adapters.
struct RtObsIds {
    /// `epoll_wait` returned readable.
    c_epoll_wakeups: CounterId,
    /// `epoll_wait` returned by deadline.
    c_epoll_timeouts: CounterId,
    /// Datagrams received and decoded.
    c_dgram_rx: CounterId,
    /// Datagrams put on the wire.
    c_dgram_tx: CounterId,
    /// Datagrams that failed to decode.
    c_decode_errors: CounterId,
    /// Datagrams the fault shim dropped.
    c_shim_dropped: CounterId,
    /// Datagrams the fault shim delayed.
    c_shim_delayed: CounterId,
    /// Stride-sampled wall-clock cost of one loop body past the poll.
    s_loop: SpanId,
}

/// A protocol stack bound to a socket, plus the loop that drives it.
pub struct RtNode {
    machine: StackMachine,
    socket: UdpSocket,
    poller: Poller,
    /// Peer address book (this node excluded). Broadcast sends to all.
    peers: Vec<(NodeId, SocketAddr)>,
    by_id: HashMap<NodeId, SocketAddr>,
    shim: FaultShim,
    report: RtReport,
    obs: Option<RtObsIds>,
    /// Wall-clock period between `TELEM` stdout frames (`None` disables
    /// periodic telemetry; the final frame is always available through
    /// [`RtNode::telemetry_hex`]).
    telem_period: Option<std::time::Duration>,
}

impl RtNode {
    /// Bind `machine` to `socket`. `peers` maps every *other* node to
    /// its address; `shim` carries the scenario's medium impairments
    /// (use an empty plan for a clean medium).
    pub fn new(
        machine: StackMachine,
        socket: UdpSocket,
        peers: Vec<(NodeId, SocketAddr)>,
        shim: FaultShim,
    ) -> io::Result<RtNode> {
        let poller = Poller::new(&socket)?;
        let by_id = peers.iter().copied().collect();
        let mut machine = machine;
        let obs = machine.obs_mut().on_mut().map(|o| RtObsIds {
            c_epoll_wakeups: o.counter("rt.epoll_wakeups"),
            c_epoll_timeouts: o.counter("rt.epoll_timeouts"),
            c_dgram_rx: o.counter("rt.dgram_rx"),
            c_dgram_tx: o.counter("rt.dgram_tx"),
            c_decode_errors: o.counter("rt.decode_errors"),
            c_shim_dropped: o.counter("rt.shim_dropped"),
            c_shim_delayed: o.counter("rt.shim_delayed"),
            s_loop: o.report.spans.register("rt.loop"),
        });
        Ok(RtNode {
            machine,
            socket,
            poller,
            peers,
            by_id,
            shim,
            report: RtReport::default(),
            obs,
            telem_period: None,
        })
    }

    /// The local socket address (what a child advertises to the parent).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Emit a `TELEM <hex>` line on stdout every `period` of wall time
    /// while the loop runs. Periodic frames carry the running report but
    /// an *empty* trace — they are the crash-forensics heartbeat (small
    /// enough never to back up the parent's pipe mid-run); the full
    /// trace ships once, in the final [`RtNode::telemetry_hex`] frame.
    pub fn set_telemetry_period(&mut self, period: std::time::Duration) {
        self.telem_period = Some(period);
    }

    /// Bump a registered substrate counter if the sink is armed.
    #[inline]
    fn obs_inc(&mut self, pick: impl FnOnce(&RtObsIds) -> CounterId) {
        if let Some(ids) = &self.obs {
            let id = pick(ids);
            if let Some(o) = self.machine.obs_mut().on_mut() {
                o.inc(id, 1);
            }
        }
    }

    /// Mirror the protocol totals and return the current telemetry frame
    /// hex-armored for the stdio channel, if the sink is armed. With
    /// `full_trace` the frame carries the whole causal trace (the final,
    /// at-shutdown snapshot); without it the trace section is empty (the
    /// periodic heartbeat).
    pub fn telemetry_hex(&mut self, full_trace: bool) -> Option<String> {
        self.machine.sync_obs();
        let node = self.machine.id().0;
        let obs = self.machine.obs().on()?;
        let empty = TraceLog::new(0);
        let trace = if full_trace { &obs.trace } else { &empty };
        Some(to_hex(&encode_telemetry(node, &obs.report, trace)))
    }

    /// The armed report (for failure dumps), synced first.
    pub fn obs_report(&mut self) -> Option<&ObsReport> {
        self.machine.sync_obs();
        self.machine.obs().on().map(|o| &o.report)
    }

    /// Join the overlay after `join_delay`, then run the event loop for
    /// `duration` total wall time.
    ///
    /// Staggering joins matters: two nodes that probe at the same
    /// instant each open an outgoing connection toward the other, and
    /// the crossing Offers collide with the pending opposite-direction
    /// entries and are rejected — a simultaneous-open glitch the DES
    /// never exhibits because its arrival process staggers joins. The
    /// swarm gives each node an id-proportional delay for the same
    /// effect; before joining, the node still relays frames (AODV runs
    /// from the first datagram).
    pub fn run(
        &mut self,
        duration: std::time::Duration,
        join_delay: std::time::Duration,
    ) -> io::Result<RtReport> {
        let mut sub = DeadlineReg {
            clock: Clock::start(),
            next: SimTime::MAX,
        };
        let end = SimTime::from_ticks(duration.as_micros() as u64);
        let join_at = SimTime::from_ticks(join_delay.as_micros() as u64).min(end);
        let telem_ticks = self
            .telem_period
            .filter(|_| self.obs.is_some())
            .map(|p| (p.as_micros() as u64).max(1));
        let mut next_telem = telem_ticks.map_or(SimTime::MAX, SimTime::from_ticks);
        let mut iters: u64 = 0;

        loop {
            let mut deadline = sub.next.min(end).min(next_telem);
            if !self.machine.is_joined() {
                deadline = deadline.min(join_at);
            }
            if let Some(due) = self.shim.next_due() {
                deadline = deadline.min(due);
            }
            let timeout = sub.clock.timeout_until(deadline);
            let readable = self.poller.wait(&self.socket, timeout)?;
            self.obs_inc(|ids| {
                if readable {
                    ids.c_epoll_wakeups
                } else {
                    ids.c_epoll_timeouts
                }
            });
            // Stride-sampled wall-clock span over the post-poll loop
            // body: one timestamp pair per SPAN_STRIDE wakeups.
            iters += 1;
            let timed = self.obs.is_some() && iters.is_multiple_of(SPAN_STRIDE);
            let t0 = timed.then(Instant::now);

            if readable {
                self.drain(&sub)?;
            }
            let now = sub.now();
            if !self.machine.is_joined() && now >= join_at {
                let out = self.machine.join(now);
                self.emit(now, out);
            }
            if sub.next <= now {
                sub.next = SimTime::MAX;
                let out = self.machine.tick(now);
                self.emit(now, out);
            }
            for (to, bytes) in self.shim.take_due(now) {
                self.socket.send_to(&bytes, to)?;
                self.report.frames_sent += 1;
                self.obs_inc(|ids| ids.c_dgram_tx);
            }
            self.rearm(&mut sub);
            if let Some(o) = self.machine.obs_mut().on_mut() {
                o.maybe_sample(now);
            }
            if let (Some(t0), Some(ids)) = (t0, &self.obs) {
                let s_loop = ids.s_loop;
                if let Some(o) = self.machine.obs_mut().on_mut() {
                    o.report
                        .spans
                        .add_weighted(s_loop, t0.elapsed(), SPAN_STRIDE);
                }
            }
            if now >= next_telem {
                if let Some(period) = telem_ticks {
                    while next_telem <= now {
                        next_telem = SimTime::from_ticks(next_telem.ticks() + period);
                    }
                    if let Some(hex) = self.telemetry_hex(false) {
                        println!("TELEM {hex}");
                    }
                }
            }
            if sub.now() >= end {
                break;
            }
        }

        let qs = self.machine.query_stats();
        self.report.issued = qs.issued;
        self.report.hits_served = qs.hits_served;
        self.report.shim_dropped = self.shim.dropped;
        self.report.shim_delayed = self.shim.delayed;
        self.machine.sync_obs();
        Ok(self.report)
    }

    /// Ask the machine for its combined timer and record it in the
    /// deadline register — the same `resched_timer` dance the DES does,
    /// against the other substrate.
    fn rearm(&self, sub: &mut DeadlineReg) {
        let req = self.machine.timer_request();
        let id = self.machine.id();
        sub.arm_timer(id, req.at);
    }

    /// Drain every pending datagram and hand each up as a frame.
    fn drain(&mut self, sub: &DeadlineReg) -> io::Result<()> {
        let mut buf = [0u8; MAX_DATAGRAM];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, _addr)) => match decode_frame(&buf[..len]) {
                    Ok(frame) => {
                        self.report.frames_received += 1;
                        self.obs_inc(|ids| ids.c_dgram_rx);
                        let now = sub.now();
                        let out = self.machine.on_frame(now, frame);
                        self.emit(now, out);
                    }
                    Err(e) => {
                        self.report.decode_errors += 1;
                        self.obs_inc(|ids| ids.c_decode_errors);
                        let now = sub.now();
                        if let Some(o) = self.machine.obs_mut().on_mut() {
                            o.flight(
                                now,
                                Severity::Warn,
                                "decode_error",
                                format!("{len}-byte datagram rejected: {e}"),
                            );
                        }
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Execute a machine output against the socket: encode frames, pass
    /// them through the fault shim, tally completions.
    fn emit(&mut self, now: SimTime, out: StackOutput) {
        for frame in out.frames {
            match frame {
                SendDown::Broadcast(msg) => {
                    let bytes = encode_frame(self.machine.id(), &msg);
                    for i in 0..self.peers.len() {
                        let to = self.peers[i].1;
                        self.transmit(now, to, bytes.clone());
                    }
                }
                SendDown::Unicast { to, msg } => {
                    if let Some(&addr) = self.by_id.get(&to) {
                        let bytes = encode_frame(self.machine.id(), &msg);
                        self.transmit(now, addr, bytes);
                    }
                }
            }
        }
        for done in &out.completed {
            if !done.answers.is_empty() {
                self.report.answered += 1;
            }
        }
    }

    /// One datagram through the fault shim and (maybe) onto the wire.
    ///
    /// The shim draws per *datagram*: a broadcast that fans out to N
    /// peers takes N independent draws, the socket-level analogue of the
    /// modelled radio drawing per receiver.
    fn transmit(&mut self, now: SimTime, to: SocketAddr, bytes: Vec<u8>) {
        match self.shim.on_send(now) {
            SendVerdict::Now => {
                if self.socket.send_to(&bytes, to).is_ok() {
                    self.report.frames_sent += 1;
                    self.obs_inc(|ids| ids.c_dgram_tx);
                }
            }
            SendVerdict::Drop => self.obs_inc(|ids| ids.c_shim_dropped),
            SendVerdict::DelayUntil(due) => {
                self.shim.hold(due, to, bytes);
                self.obs_inc(|ids| ids.c_shim_delayed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_aodv::AodvCfg;
    use manet_des::Rng;
    use manet_sim::FaultPlan;
    use p2p_content::{Catalog, FileId, QueryCfg, QueryEngine};
    use p2p_core::{build_algo, AlgoKind, OverlayParams};
    use std::time::Duration;

    fn machine(id: u32, files: Vec<u16>) -> StackMachine {
        let node = NodeId(id);
        let query = QueryCfg {
            think_min: manet_des::SimDuration::from_millis(200),
            think_max: manet_des::SimDuration::from_millis(500),
            response_wait: manet_des::SimDuration::from_millis(600),
            ..QueryCfg::default()
        };
        let algo = build_algo(
            AlgoKind::Regular,
            node,
            OverlayParams::default(),
            0,
            Rng::new(40 + id as u64),
        );
        let engine = QueryEngine::new(
            node,
            query,
            Catalog::default(),
            files.into_iter().map(FileId).collect(),
            Rng::new(80 + id as u64),
        );
        StackMachine::new(node, AodvCfg::default(), algo, engine)
    }

    /// Two in-process nodes on real loopback sockets: the overlay forms
    /// and at least one query is answered — the smallest possible
    /// sim-to-real demo, run as threads instead of processes.
    #[test]
    fn two_nodes_over_loopback_answer_a_query() {
        let sock_a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let sock_b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let addr_a = sock_a.local_addr().unwrap();
        let addr_b = sock_b.local_addr().unwrap();

        // Node 0 holds nothing and node 1 holds the whole catalogue, so
        // every query node 0 issues has exactly one possible answerer.
        let mut node_a = RtNode::new(
            machine(0, vec![]),
            sock_a,
            vec![(NodeId(1), addr_b)],
            FaultShim::new(&FaultPlan::default(), 1),
        )
        .expect("node a");
        let mut node_b = RtNode::new(
            machine(1, (0..20).collect()),
            sock_b,
            vec![(NodeId(0), addr_a)],
            FaultShim::new(&FaultPlan::default(), 2),
        )
        .expect("node b");

        let run = Duration::from_millis(2_500);
        let t = std::thread::spawn(move || {
            node_b.run(run, Duration::from_millis(300)).expect("b runs")
        });
        let ra = node_a.run(run, Duration::ZERO).expect("a runs");
        let rb = t.join().expect("join b");

        assert!(ra.frames_sent > 0 && rb.frames_sent > 0, "traffic flowed");
        assert_eq!(ra.decode_errors + rb.decode_errors, 0, "codec clean");
        assert!(
            ra.issued + rb.issued > 0,
            "some query issued ({ra:?} {rb:?})"
        );
        assert!(
            ra.answered + rb.answered > 0,
            "some query answered ({ra:?} {rb:?})"
        );
    }

    /// The same two-node exchange with the observability seam armed: the
    /// substrate counters must agree exactly with the `RtReport` tallies,
    /// and the final telemetry frame must round-trip through the codec.
    #[test]
    fn armed_node_counters_reconcile_with_its_report() {
        use manet_obs::ObsConfig;
        use p2p_stack::{decode_telemetry, from_hex, ObsSink};

        let sock_a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let sock_b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let addr_a = sock_a.local_addr().unwrap();
        let addr_b = sock_b.local_addr().unwrap();

        let mut m_a = machine(0, vec![]);
        m_a.set_obs(ObsSink::armed(0, &ObsConfig::default(), 1024, 7));
        let mut m_b = machine(1, (0..20).collect());
        m_b.set_obs(ObsSink::armed(1, &ObsConfig::default(), 1024, 7));

        let mut node_a = RtNode::new(
            m_a,
            sock_a,
            vec![(NodeId(1), addr_b)],
            FaultShim::new(&FaultPlan::default(), 1),
        )
        .expect("node a");
        let mut node_b = RtNode::new(
            m_b,
            sock_b,
            vec![(NodeId(0), addr_a)],
            FaultShim::new(&FaultPlan::default(), 2),
        )
        .expect("node b");

        let run = Duration::from_millis(2_000);
        let t = std::thread::spawn(move || {
            let r = node_b.run(run, Duration::from_millis(300)).expect("b runs");
            (r, node_b.telemetry_hex(true).expect("armed"))
        });
        let ra = node_a.run(run, Duration::ZERO).expect("a runs");
        let hex_a = node_a.telemetry_hex(true).expect("armed");
        let (rb, hex_b) = t.join().expect("join b");

        for (report, hex, node) in [(ra, hex_a, 0u32), (rb, hex_b, 1u32)] {
            let telem = decode_telemetry(&from_hex(&hex).expect("hex")).expect("frame");
            assert_eq!(telem.node, node);
            let reg = &telem.report.registry;
            assert_eq!(
                reg.counter_by_name("rt.dgram_rx"),
                Some(report.frames_received),
                "rx counter reconciles with the RESULT tally"
            );
            assert_eq!(reg.counter_by_name("rt.dgram_tx"), Some(report.frames_sent));
            assert_eq!(
                reg.counter_by_name("stack.queries_issued"),
                Some(report.issued),
                "protocol mirror synced at shutdown"
            );
            assert!(
                reg.counter_by_name("rt.epoll_wakeups").unwrap_or(0) > 0,
                "traffic flowed, so the poller woke at least once"
            );
            assert!(!telem.trace.is_empty(), "causal spans were recorded");
        }
    }
}
