//! The rectangular simulation area.

use crate::point::{Point, Vector};

/// An axis-aligned rectangle anchored at the origin's corner `(x0, y0)`.
///
/// The paper's scenarios use a `100 m x 100 m` area anchored at the origin.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    pub x0: f64,
    pub y0: f64,
    pub x1: f64,
    pub y1: f64,
}

impl Rect {
    /// Construct from two corners; panics if the rectangle is inverted or empty.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x1 > x0 && y1 > y0, "Rect must have positive area");
        Rect { x0, y0, x1, y1 }
    }

    /// A `width x height` rectangle anchored at the origin.
    pub fn sized(width: f64, height: f64) -> Self {
        Rect::new(0.0, 0.0, width, height)
    }

    /// Width in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Clamp `p` to the closest point inside the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Reflect a proposed displacement off the walls ("billiard" boundary),
    /// used by the random-walk and Gauss-Markov mobility models.
    ///
    /// Returns the reflected end position and the direction multipliers
    /// `(sx, sy)` in `{-1, 1}` describing how the heading flipped.
    pub fn reflect(&self, from: Point, v: Vector) -> (Point, f64, f64) {
        let mut x = from.x + v.dx;
        let mut y = from.y + v.dy;
        let mut sx = 1.0;
        let mut sy = 1.0;
        // A long step may bounce several times; iterate until inside.
        for _ in 0..64 {
            let mut bounced = false;
            if x < self.x0 {
                x = 2.0 * self.x0 - x;
                sx = -sx;
                bounced = true;
            } else if x > self.x1 {
                x = 2.0 * self.x1 - x;
                sx = -sx;
                bounced = true;
            }
            if y < self.y0 {
                y = 2.0 * self.y0 - y;
                sy = -sy;
                bounced = true;
            } else if y > self.y1 {
                y = 2.0 * self.y1 - y;
                sy = -sy;
                bounced = true;
            }
            if !bounced {
                break;
            }
        }
        // Pathological velocities (many widths long) end clamped; in practice
        // steps are far smaller than the area.
        let p = self.clamp(Point::new(x, y));
        (p, sx, sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let r = Rect::sized(100.0, 50.0);
        assert_eq!(r.width(), 100.0);
        assert_eq!(r.height(), 50.0);
        assert_eq!(r.area(), 5000.0);
        assert_eq!(r.center(), Point::new(50.0, 25.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn empty_rect_panics() {
        Rect::new(0.0, 0.0, 0.0, 10.0);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let r = Rect::sized(10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.01, 5.0)));
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let r = Rect::sized(10.0, 10.0);
        assert_eq!(r.clamp(Point::new(-5.0, 3.0)), Point::new(0.0, 3.0));
        assert_eq!(r.clamp(Point::new(12.0, 15.0)), Point::new(10.0, 10.0));
        let inside = Point::new(4.0, 4.0);
        assert_eq!(r.clamp(inside), inside);
    }

    #[test]
    fn reflect_single_bounce() {
        let r = Rect::sized(10.0, 10.0);
        let (p, sx, sy) = r.reflect(Point::new(9.0, 5.0), Vector::new(3.0, 0.0));
        assert_eq!(p, Point::new(8.0, 5.0));
        assert_eq!(sx, -1.0);
        assert_eq!(sy, 1.0);
    }

    #[test]
    fn reflect_corner_bounce() {
        let r = Rect::sized(10.0, 10.0);
        let (p, sx, sy) = r.reflect(Point::new(9.5, 9.5), Vector::new(1.0, 1.0));
        assert_eq!(p, Point::new(9.5, 9.5));
        assert_eq!(sx, -1.0);
        assert_eq!(sy, -1.0);
    }

    #[test]
    fn reflect_no_bounce_keeps_heading() {
        let r = Rect::sized(10.0, 10.0);
        let (p, sx, sy) = r.reflect(Point::new(5.0, 5.0), Vector::new(1.0, -2.0));
        assert_eq!(p, Point::new(6.0, 3.0));
        assert_eq!((sx, sy), (1.0, 1.0));
    }

    #[test]
    fn reflect_result_always_inside() {
        let r = Rect::sized(10.0, 10.0);
        let (p, _, _) = r.reflect(Point::new(5.0, 5.0), Vector::new(137.0, -93.0));
        assert!(r.contains(p));
    }
}
