//! Points and displacement vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A position in the 2-D simulation area, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement between two [`Point`]s, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vector {
    pub dx: f64,
    pub dy: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed — the radio hot path).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// True if `other` lies within `range` metres (inclusive).
    #[inline]
    pub fn within(self, other: Point, range: f64) -> bool {
        self.distance_sq(other) <= range * range
    }

    /// Linear interpolation: `self` at `t = 0`, `target` at `t = 1`.
    ///
    /// `t` outside `[0, 1]` extrapolates, which callers avoid.
    #[inline]
    pub fn lerp(self, target: Point, t: f64) -> Point {
        Point {
            x: self.x + (target.x - self.x) * t,
            y: self.y + (target.y - self.y) * t,
        }
    }
}

impl Vector {
    /// The zero displacement.
    pub const ZERO: Vector = Vector { dx: 0.0, dy: 0.0 };

    /// Construct a vector from components.
    #[inline]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vector { dx, dy }
    }

    /// A unit vector pointing at `angle` radians from the positive x-axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vector {
            dx: angle.cos(),
            dy: angle.sin(),
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }

    /// The same direction scaled to unit length; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vector> {
        let len = self.length();
        if len <= f64::EPSILON {
            None
        } else {
            Some(Vector {
                dx: self.dx / len,
                dy: self.dy / len,
            })
        }
    }

    /// Angle in radians from the positive x-axis, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.dy.atan2(self.dx)
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector {
            dx: self.x - rhs.x,
            dy: self.y - rhs.y,
        }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point {
            x: self.x + rhs.dx,
            y: self.y + rhs.dy,
        }
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        *self = *self + rhs;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector {
            dx: self.dx + rhs.dx,
            dy: self.dy + rhs.dy,
        }
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector {
            dx: self.dx * rhs,
            dy: self.dy * rhs,
        }
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector {
            dx: -self.dx,
            dy: -self.dy,
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.dx, self.dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert!(a.within(b, 10.0));
        assert!(!a.within(b, 9.999));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        let v = b - a;
        assert_eq!(v.length(), 5.0);
        assert_eq!(a + v, b);
        assert_eq!(a + v + (-v), a);
        assert_eq!(v * 2.0, Vector::new(6.0, 8.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vector::new(3.0, 4.0).normalized().unwrap();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert!(Vector::ZERO.normalized().is_none());
    }

    #[test]
    fn from_angle_round_trip() {
        for deg in [0.0_f64, 45.0, 90.0, 135.0, 180.0, -90.0] {
            let rad = deg.to_radians();
            let v = Vector::from_angle(rad);
            assert!((v.length() - 1.0).abs() < 1e-12);
            let back = v.angle();
            let diff = (back - rad).rem_euclid(std::f64::consts::TAU);
            assert!(diff < 1e-9 || (std::f64::consts::TAU - diff) < 1e-9);
        }
    }
}
