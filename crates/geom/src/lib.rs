//! # manet-geom — 2-D geometry and spatial indexing
//!
//! Positions, the rectangular simulation area, and a uniform spatial hash
//! grid used by the radio layer to find the nodes inside a transmission
//! range without scanning the whole population.

pub mod grid;
pub mod point;
pub mod rect;

pub use grid::{RegionMap, SpatialGrid};
pub use point::{Point, Vector};
pub use rect::Rect;
