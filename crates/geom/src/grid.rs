//! Uniform spatial hash grid.
//!
//! The radio layer must answer "which nodes are within `r` metres of `p`?"
//! for every transmission. With `n` nodes a naive scan is O(n); the grid
//! buckets nodes into cells of side ≈ the radio range so a query touches at
//! most 9 cells in the common case.
//!
//! Keys are opaque `u32` ids (node ids). The grid stores one position per
//! key and supports O(1) amortized updates, which mobility performs whenever
//! a node's position is re-evaluated.

use crate::point::Point;
use crate::rect::Rect;

/// A uniform grid over a rectangular area mapping `u32` keys to positions.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    /// cell index -> keys in that cell
    cells: Vec<Vec<u32>>,
    /// key -> (position, cell index); MAX sentinel for absent keys
    where_is: Vec<(Point, usize)>,
}

const ABSENT: usize = usize::MAX;

impl SpatialGrid {
    /// Create a grid over `bounds` with cells of side `cell_size` (clamped so
    /// the grid has at least one cell; typically the radio range).
    pub fn new(bounds: Rect, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        SpatialGrid {
            bounds,
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            where_is: Vec::new(),
        }
    }

    /// The area this grid covers.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Partition the covered area into `r` vertical strips whose seams lie
    /// on grid-cell column boundaries, for spatially sharded simulation.
    /// Cell-aligned seams mean a shard's nodes and the cells they hash to
    /// agree about which side of the seam they are on.
    pub fn strip_regions(&self, r: usize) -> RegionMap {
        assert!(r >= 1, "need at least one region");
        RegionMap {
            x0: self.bounds.x0,
            cell: self.cell,
            cols: self.cols,
            regions: r,
        }
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.where_is.iter().filter(|(_, c)| *c != ABSENT).count()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cell_index(&self, p: Point) -> usize {
        let p = self.bounds.clamp(p);
        let cx = (((p.x - self.bounds.x0) / self.cell) as usize).min(self.cols - 1);
        let cy = (((p.y - self.bounds.y0) / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Insert a key or move it to a new position.
    pub fn upsert(&mut self, key: u32, pos: Point) {
        let idx = key as usize;
        if idx >= self.where_is.len() {
            self.where_is.resize(idx + 1, (Point::ORIGIN, ABSENT));
        }
        let new_cell = self.cell_index(pos);
        let (_, old_cell) = self.where_is[idx];
        if old_cell != ABSENT {
            if old_cell == new_cell {
                self.where_is[idx].0 = pos;
                return;
            }
            remove_from_cell(&mut self.cells[old_cell], key);
        }
        self.cells[new_cell].push(key);
        self.where_is[idx] = (pos, new_cell);
    }

    /// Remove a key; returns `true` if it was present.
    pub fn remove(&mut self, key: u32) -> bool {
        let idx = key as usize;
        match self.where_is.get(idx) {
            Some(&(_, cell)) if cell != ABSENT => {
                remove_from_cell(&mut self.cells[cell], key);
                self.where_is[idx].1 = ABSENT;
                true
            }
            _ => false,
        }
    }

    /// Current position of `key`, if stored.
    pub fn position(&self, key: u32) -> Option<Point> {
        match self.where_is.get(key as usize) {
            Some(&(pos, cell)) if cell != ABSENT => Some(pos),
            _ => None,
        }
    }

    /// Visit every `(key, position)` within `range` metres of `center`
    /// (inclusive), excluding `exclude`, in grid-cell order (NOT key order —
    /// the `query_range*` wrappers sort for determinism).
    fn scan_range(
        &self,
        center: Point,
        range: f64,
        exclude: u32,
        mut visit: impl FnMut(u32, Point),
    ) {
        let range = range.max(0.0);
        let lo = self
            .bounds
            .clamp(Point::new(center.x - range, center.y - range));
        let hi = self
            .bounds
            .clamp(Point::new(center.x + range, center.y + range));
        let cx0 = (((lo.x - self.bounds.x0) / self.cell) as usize).min(self.cols - 1);
        let cy0 = (((lo.y - self.bounds.y0) / self.cell) as usize).min(self.rows - 1);
        let cx1 = (((hi.x - self.bounds.x0) / self.cell) as usize).min(self.cols - 1);
        let cy1 = (((hi.y - self.bounds.y0) / self.cell) as usize).min(self.rows - 1);
        let range_sq = range * range;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &key in &self.cells[cy * self.cols + cx] {
                    if key == exclude {
                        continue;
                    }
                    let (pos, _) = self.where_is[key as usize];
                    if pos.distance_sq(center) <= range_sq {
                        visit(key, pos);
                    }
                }
            }
        }
    }

    /// Collect all keys within `range` metres of `center` (inclusive),
    /// excluding `exclude` (pass `u32::MAX` to exclude nothing).
    ///
    /// Results replace the contents of the caller-owned `out` buffer, in
    /// ascending key order so that callers iterate deterministically. The
    /// buffer's capacity is reused across calls — the radio hot path calls
    /// this once per transmission without allocating.
    pub fn query_range(&self, center: Point, range: f64, exclude: u32, out: &mut Vec<u32>) {
        out.clear();
        self.scan_range(center, range, exclude, |key, _| out.push(key));
        out.sort_unstable();
    }

    /// Like [`query_range`](Self::query_range) but also yields each key's
    /// position, saving the caller one grid lookup per result (the radio
    /// medium needs positions for distance-dependent reception).
    pub fn query_range_with_pos(
        &self,
        center: Point,
        range: f64,
        exclude: u32,
        out: &mut Vec<(u32, Point)>,
    ) {
        out.clear();
        self.scan_range(center, range, exclude, |key, pos| out.push((key, pos)));
        out.sort_unstable_by_key(|&(key, _)| key);
    }

    /// Convenience wrapper around [`query_range`](Self::query_range) that
    /// allocates its own result vector.
    pub fn neighbors(&self, center: Point, range: f64, exclude: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_range(center, range, exclude, &mut out);
        out
    }

    /// Iterate over all `(key, position)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Point)> + '_ {
        self.where_is
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c != ABSENT)
            .map(|(k, (p, _))| (k as u32, *p))
    }
}

/// A cell-aligned partition of a grid's area into vertical strips.
///
/// Maps any point to a region index in `0..regions()` by first hashing it
/// to a grid column with the same clamping rule as the grid itself, then
/// assigning whole columns to regions as evenly as integer division
/// allows. Seams therefore always lie on cell boundaries, and a point's
/// region agrees with the region of the cell it hashes to — the property
/// a spatially sharded simulation needs so a node and its grid cell never
/// disagree about ownership.
///
/// With more regions than columns some regions are simply empty; the
/// mapping stays total and deterministic.
#[derive(Clone, Copy, Debug)]
pub struct RegionMap {
    x0: f64,
    cell: f64,
    cols: usize,
    regions: usize,
}

impl RegionMap {
    /// Number of regions in the partition (the `r` it was built with).
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Region owning `p`. Points outside the grid's bounds clamp to the
    /// nearest edge column, exactly as `SpatialGrid` clamps cell indices.
    pub fn region_of(&self, p: Point) -> usize {
        // `as usize` saturates: negative offsets land in column 0, huge
        // ones clamp via the min below — mirroring `cell_index`.
        let col = (((p.x - self.x0) / self.cell) as usize).min(self.cols - 1);
        (col * self.regions / self.cols).min(self.regions - 1)
    }
}

fn remove_from_cell(cell: &mut Vec<u32>, key: u32) {
    if let Some(at) = cell.iter().position(|&k| k == key) {
        cell.swap_remove(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SpatialGrid {
        SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0)
    }

    #[test]
    fn insert_and_query() {
        let mut g = grid();
        g.upsert(1, Point::new(5.0, 5.0));
        g.upsert(2, Point::new(8.0, 5.0));
        g.upsert(3, Point::new(50.0, 50.0));
        assert_eq!(
            g.neighbors(Point::new(5.0, 5.0), 10.0, u32::MAX),
            vec![1, 2]
        );
        assert_eq!(g.neighbors(Point::new(5.0, 5.0), 10.0, 1), vec![2]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn query_crosses_cell_boundaries() {
        let mut g = grid();
        g.upsert(1, Point::new(9.9, 9.9));
        g.upsert(2, Point::new(10.1, 10.1));
        let found = g.neighbors(Point::new(10.0, 10.0), 1.0, u32::MAX);
        assert_eq!(found, vec![1, 2]);
    }

    #[test]
    fn range_is_inclusive_euclidean() {
        let mut g = grid();
        g.upsert(1, Point::new(0.0, 0.0));
        g.upsert(2, Point::new(10.0, 0.0));
        g.upsert(3, Point::new(7.1, 7.1)); // slightly outside 10m diagonal
        let found = g.neighbors(Point::new(0.0, 0.0), 10.0, u32::MAX);
        assert_eq!(found, vec![1, 2]);
    }

    #[test]
    fn moving_a_key_updates_queries() {
        let mut g = grid();
        g.upsert(7, Point::new(5.0, 5.0));
        g.upsert(7, Point::new(95.0, 95.0));
        assert!(g.neighbors(Point::new(5.0, 5.0), 10.0, u32::MAX).is_empty());
        assert_eq!(g.neighbors(Point::new(95.0, 95.0), 1.0, u32::MAX), vec![7]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(7), Some(Point::new(95.0, 95.0)));
    }

    #[test]
    fn move_within_same_cell_updates_position() {
        let mut g = grid();
        g.upsert(4, Point::new(1.0, 1.0));
        g.upsert(4, Point::new(2.0, 2.0));
        assert_eq!(g.position(4), Some(Point::new(2.0, 2.0)));
        assert_eq!(g.neighbors(Point::new(2.0, 2.0), 0.5, u32::MAX), vec![4]);
    }

    #[test]
    fn remove_works() {
        let mut g = grid();
        g.upsert(1, Point::new(5.0, 5.0));
        assert!(g.remove(1));
        assert!(!g.remove(1));
        assert!(g.is_empty());
        assert_eq!(g.position(1), None);
    }

    #[test]
    fn positions_outside_bounds_are_clamped_to_edge_cells() {
        let mut g = grid();
        g.upsert(1, Point::new(150.0, -20.0));
        // Stored position is preserved even though the cell is clamped.
        assert_eq!(g.position(1), Some(Point::new(150.0, -20.0)));
    }

    #[test]
    fn iter_yields_all_live_keys_sorted() {
        let mut g = grid();
        g.upsert(3, Point::new(1.0, 1.0));
        g.upsert(1, Point::new(2.0, 2.0));
        g.upsert(2, Point::new(3.0, 3.0));
        g.remove(2);
        let keys: Vec<u32> = g.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn strip_regions_cover_the_area_monotonically() {
        // 100 m / 10 m cells = 10 columns, split 4 ways.
        let g = grid();
        let map = g.strip_regions(4);
        assert_eq!(map.regions(), 4);
        let mut seen = [false; 4];
        let mut last = 0;
        for step in 0..200 {
            let x = step as f64 * 0.5;
            let r = map.region_of(Point::new(x, 50.0));
            assert!(r < 4);
            assert!(r >= last, "regions must be monotone in x");
            last = r;
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s), "every region owns some ground");
    }

    #[test]
    fn strip_region_seams_lie_on_cell_boundaries() {
        let g = grid();
        let map = g.strip_regions(4);
        for col in 0..10 {
            // All points within one column share a region.
            let left = map.region_of(Point::new(col as f64 * 10.0 + 0.01, 0.0));
            let right = map.region_of(Point::new(col as f64 * 10.0 + 9.99, 99.0));
            assert_eq!(left, right, "column {col} split across regions");
        }
    }

    #[test]
    fn strip_regions_clamp_out_of_bounds_points() {
        let g = grid();
        let map = g.strip_regions(4);
        assert_eq!(map.region_of(Point::new(-50.0, 10.0)), 0);
        assert_eq!(map.region_of(Point::new(500.0, 10.0)), 3);
        assert_eq!(
            map.region_of(Point::new(50.0, -500.0)),
            map.region_of(Point::new(50.0, 500.0))
        );
    }

    #[test]
    fn degenerate_partitions_stay_total() {
        let g = grid();
        let one = g.strip_regions(1);
        assert_eq!(one.region_of(Point::new(99.0, 99.0)), 0);
        // More regions than columns: mapping is still total and in range.
        let many = g.strip_regions(25);
        for step in 0..100 {
            let r = many.region_of(Point::new(step as f64, 1.0));
            assert!(r < 25);
        }
    }

    #[test]
    fn brute_force_agreement() {
        use manet_des::Rng;
        let mut rng = Rng::new(77);
        let mut g = grid();
        let mut pts = Vec::new();
        for k in 0..200u32 {
            let p = Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0));
            g.upsert(k, p);
            pts.push(p);
        }
        for _ in 0..50 {
            let c = Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0));
            let r = rng.range_f64(0.0, 30.0);
            let got = g.neighbors(c, r, u32::MAX);
            let want: Vec<u32> = (0..200u32)
                .filter(|&k| pts[k as usize].within(c, r))
                .collect();
            assert_eq!(got, want);
        }
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use manet_des::Rng;
    use manet_testkit::{any_u64, prop_assert_eq, properties, vec_of};

    properties! {
        config = manet_testkit::Config::cases(64);

        /// The grid and a brute-force scan agree on every range query,
        /// through arbitrary interleavings of moves and removals.
        fn grid_matches_brute_force(
            seed in any_u64(),
            ops in vec_of((0u8..3, 0u32..40), 1..200),
        ) {
            let mut rng = Rng::new(seed);
            let bounds = Rect::sized(100.0, 100.0);
            let mut grid = SpatialGrid::new(bounds, 10.0);
            let mut reference: std::collections::BTreeMap<u32, Point> = Default::default();
            for (op, key) in ops {
                match op {
                    0 | 1 => {
                        let p = Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0));
                        grid.upsert(key, p);
                        reference.insert(key, p);
                    }
                    _ => {
                        let was = reference.remove(&key).is_some();
                        prop_assert_eq!(grid.remove(key), was);
                    }
                }
                // A random query after every mutation.
                let c = Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0));
                let r = rng.range_f64(0.0, 25.0);
                let got = grid.neighbors(c, r, u32::MAX);
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|(_, p)| p.within(c, r))
                    .map(|(k, _)| *k)
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
