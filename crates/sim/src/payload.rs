//! The unified application payload carried by the routing layer.
//!
//! [`AppMsg`] moved to the substrate-neutral `p2p-stack` crate so the
//! real-time driver can carry the identical payload type; this module
//! keeps the historical `manet_sim::AppMsg` path alive as a re-export.

pub use p2p_stack::AppMsg;
