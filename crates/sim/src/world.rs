//! The simulated world: a slim engine, per-node layer stacks, and
//! pluggable subsystems.
//!
//! One [`World`] is one replication. Since the layered refactor it is a
//! thin composition root: the crate-private `Engine` (`crate::engine`)
//! owns the clock and future-event list, every node's protocol stack
//! (mobility → phy → AODV → overlay → query engine) lives in a
//! `NodeStack` (`crate::stack`) whose layers talk through typed verbs,
//! and every cross-cutting process (mobility epochs, churn, the fault
//! plan, samplers) is a registered `Subsystem` (`crate::subsystems`)
//! with its own event namespace. `WorldCore` is the shared state those
//! parts operate on.
//!
//! Determinism: every random stream is forked from the replication seed
//! with a fixed label, all per-node containers iterate in id order, and the
//! event queue breaks timestamp ties by insertion order — so a `(scenario,
//! seed)` pair reproduces byte-identical results on any machine. The
//! layered decomposition is held to the same contract: the
//! `refactor_equivalence` test pins fingerprints captured on the
//! pre-refactor monolith.

use manet_des::{NodeId, Rng, SchedulerKind, SimDuration, SimTime};
use manet_geom::{Point, SpatialGrid};
use manet_graph::{Graph, SmallWorld};
use manet_metrics::{FileMetrics, NodeCounters};
use manet_mobility::{
    AnyMobility, GaussMarkov, GaussMarkovCfg, Mobility, RandomWalk, RandomWalkCfg, RandomWaypoint,
    RandomWaypointCfg, Rpgm, RpgmCfg, Stationary,
};
use manet_obs::{
    CounterId, FlightRecorder, GaugeId, HistSlab, HistSlotId, ObsReport, Registry, Severity, Slab,
    SlotId, SpanId, SpanProfile,
};
use manet_radio::{EnergyMeter, LinkFaults, Medium, PhyStats, TxScratch};
use p2p_content::{CompletedQuery, QueryEngine};
use p2p_core::{build_algo, Role};

use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::engine::{Engine, Event, SubCtx, Subsystem, SubsystemId};
use crate::errors::ScenarioError;
use crate::scenario::{MobilityKind, Scenario};
use crate::stack::{FrameUp, MemberState, NodeStack, OverlayLayer, PhyLayer, RoutingLayer};
use crate::subsystems;
use crate::trace::{TraceEvent, TraceLog};
use manet_aodv::Aodv;

/// RNG stream labels (see DESIGN.md's determinism note).
pub(crate) mod labels {
    pub const RADIO: u64 = 1;
    pub const QUALIFIERS: u64 = 2;
    pub const CATALOG: u64 = 3;
    pub const JOIN: u64 = 4;
    pub const CHURN: u64 = 5;
    pub const PLACEMENT: u64 = 6;
    pub const GROUPS: u64 = 7;
    pub const FAULTS: u64 = 8;
    pub const MOBILITY_BASE: u64 = 1_000;
    pub const ENGINE_BASE: u64 = 2_000_000;
    pub const ALGO_BASE: u64 = 3_000_000;
}

/// One wall-clock timing per this many traversals of an instrumented
/// region. Stride-sampled span timing is what killed the observability
/// tax: the old per-event `Instant::now()` pairs cost ~25% of the hot
/// path, the sampled pair costs 1/64 of that and
/// [`SpanProfile::add_weighted`] extrapolates the profile back to an
/// unbiased total.
pub(crate) const SPAN_STRIDE: u64 = 64;

/// Observability sink state for one world: the metrics registry with its
/// pre-resolved metric ids, the hot-path slabs, the span profile and the
/// flight recorder.
///
/// Lives inside [`ObsSink`] on [`WorldCore`]; the disabled sink is the
/// precomputed [`ObsSink::Off`] variant, so toggling costs one
/// discriminant test per instrumentation site and nothing else.
/// Everything recorded here is derived from simulation state the world
/// maintains anyway — enabling observability never draws randomness,
/// schedules events, or otherwise perturbs a run (the fingerprint tests
/// hold it to that). Series cadence is inlined into the event loop
/// (`step_observed` sequentially, `pop_window` on the sharded path).
pub(crate) struct ObsState {
    pub(crate) registry: Registry,
    pub(crate) spans: SpanProfile,
    pub(crate) recorder: FlightRecorder,
    /// Per-event-class dispatch counters: the hot half of the registry, a
    /// plain slot bump per event, folded at sample points.
    slab: Slab,
    sl_deliver: SlotId,
    sl_timer: SlotId,
    sl_join: SlotId,
    sl_sub: SlotId,
    /// Hot-path histograms (broadcast fan-out, delivery hops), likewise
    /// folded at sample points.
    pub(crate) hists: HistSlab,
    pub(crate) hs_fanout: HistSlotId,
    pub(crate) hs_hops: HistSlotId,
    /// Count replicated `Sub` dispatches? True sequentially and on shard
    /// 0; other shards skip them so the merged per-shard totals partition
    /// the run's true event count (see `ShardedWorld`).
    pub(crate) count_sub: bool,
    /// Series cadence (zero disables series sampling; the final
    /// at-horizon counter mirror still happens).
    sample_period: SimDuration,
    /// When the next series sample is due.
    next_sample: SimTime,
    /// Countdown to the next timed scheduler-pop/dispatch pair.
    pop_stride_left: u32,
    /// Countdown to the next timed broadcast-planning call.
    plan_stride_left: u32,
    c_events: CounterId,
    c_scheduled: CounterId,
    c_retunes: CounterId,
    c_tx_planned: CounterId,
    c_tx_lost: CounterId,
    c_rreq_orig: CounterId,
    c_rreq_dup: CounterId,
    c_flood_dup: CounterId,
    c_queries: CounterId,
    c_answers: CounterId,
    g_queue: GaugeId,
    s_pop: SpanId,
    s_dispatch: SpanId,
    pub(crate) s_plan: SpanId,
}

impl ObsState {
    fn new(cfg: manet_obs::ObsConfig) -> Self {
        let mut registry = Registry::default();
        let mut spans = SpanProfile::new();
        let mut slab = Slab::new();
        let mut hists = HistSlab::new();
        // Histogram names are registered up front so the registry's
        // registration order (part of the report format) does not depend
        // on when the first fold happens.
        registry.hist("radio.broadcast_fanout");
        registry.hist("sim.deliver_hops");
        let period = SimDuration::from_secs_f64(cfg.sample_period_secs.max(0.0));
        ObsState {
            c_events: registry.counter("des.events_popped"),
            c_scheduled: registry.counter("des.events_scheduled"),
            c_retunes: registry.counter("des.calendar.retunes"),
            c_tx_planned: registry.counter("radio.tx_planned"),
            c_tx_lost: registry.counter("radio.tx_lost"),
            c_rreq_orig: registry.counter("aodv.rreqs_originated"),
            c_rreq_dup: registry.counter("aodv.rreq_dup_dropped"),
            c_flood_dup: registry.counter("aodv.flood_dup_dropped"),
            c_queries: registry.counter("sim.queries_issued"),
            c_answers: registry.counter("sim.answers_received"),
            g_queue: registry.gauge("des.queue_depth"),
            s_pop: spans.register("des.pop"),
            s_dispatch: spans.register("sim.dispatch"),
            s_plan: spans.register("radio.plan_broadcast"),
            sl_deliver: slab.slot("des.dispatch.deliver"),
            sl_timer: slab.slot("des.dispatch.node_timer"),
            sl_join: slab.slot("des.dispatch.join"),
            sl_sub: slab.slot("des.dispatch.sub"),
            hs_fanout: hists.slot("radio.broadcast_fanout"),
            hs_hops: hists.slot("sim.deliver_hops"),
            count_sub: true,
            sample_period: period,
            next_sample: SimTime::ZERO + period,
            pop_stride_left: 0,
            plan_stride_left: 0,
            registry,
            spans,
            slab,
            hists,
            recorder: FlightRecorder::new(cfg.recorder_capacity),
        }
    }

    /// Should this traversal of the pop/dispatch region be wall-clock
    /// timed? True once per [`SPAN_STRIDE`] calls.
    #[inline]
    fn pop_timed(&mut self) -> bool {
        if self.pop_stride_left == 0 {
            self.pop_stride_left = SPAN_STRIDE as u32 - 1;
            true
        } else {
            self.pop_stride_left -= 1;
            false
        }
    }

    /// Should this broadcast-planning call be wall-clock timed?
    #[inline]
    pub(crate) fn plan_timed(&mut self) -> bool {
        if self.plan_stride_left == 0 {
            self.plan_stride_left = SPAN_STRIDE as u32 - 1;
            true
        } else {
            self.plan_stride_left -= 1;
            false
        }
    }

    /// Is a series sample due at `now`?
    #[inline]
    fn series_due(&self, now: SimTime) -> bool {
        !self.sample_period.is_zero() && now >= self.next_sample
    }

    fn advance_sample(&mut self, now: SimTime) {
        while self.next_sample <= now {
            self.next_sample += self.sample_period;
        }
    }
}

/// The observability sink, precomputed at `World` construction: either
/// the no-op [`Off`](ObsSink::Off) variant — every instrumentation site
/// reduces to one discriminant test, which the perf gate's disabled-sink
/// stage holds to a hard bound — or the live state.
pub(crate) enum ObsSink {
    Off,
    On(Box<ObsState>),
}

impl ObsSink {
    fn new(cfg: manet_obs::ObsConfig) -> Self {
        if cfg.enabled {
            ObsSink::On(Box::new(ObsState::new(cfg)))
        } else {
            ObsSink::Off
        }
    }

    /// The live state, if the sink is on.
    #[inline]
    pub(crate) fn on_mut(&mut self) -> Option<&mut ObsState> {
        match self {
            ObsSink::On(o) => Some(o),
            ObsSink::Off => None,
        }
    }

    /// Shared view of the live state, if the sink is on.
    #[inline]
    pub(crate) fn get(&self) -> Option<&ObsState> {
        match self {
            ObsSink::On(o) => Some(o),
            ObsSink::Off => None,
        }
    }

    /// Whether the sink is on.
    #[inline]
    pub(crate) fn is_on(&self) -> bool {
        matches!(self, ObsSink::On(_))
    }
}

/// Medium-wide fault-window flags, flipped by the fault subsystems and
/// read by [`WorldCore::active_faults`] on every planned transmission.
#[derive(Default)]
pub(crate) struct LinkState {
    /// Burst process currently in the high-loss state?
    pub(crate) burst_on: bool,
    /// Inside a whole-medium flap window?
    pub(crate) flap_on: bool,
    /// Inside a delay-spike window?
    pub(crate) jitter_on: bool,
}

/// Everything a finished replication reports.
pub struct RunResult {
    /// Per-node received-message counters.
    pub counters: NodeCounters,
    /// The overlay members (node ids).
    pub members: Vec<NodeId>,
    /// Figs 5–6 accumulators.
    pub file_metrics: FileMetrics,
    /// Small-world samples `(time_secs, metrics)`.
    pub smallworld: Vec<(f64, SmallWorld)>,
    /// Network-wide PHY totals.
    pub phy_total: PhyStats,
    /// Energy spent per node, millijoules.
    pub energy_mj: Vec<f64>,
    /// Final role census: [servent, initial, reserved, master, slave].
    pub roles: [usize; 5],
    /// Overlay connections established across the run.
    pub conns_established: u64,
    /// Overlay connections closed across the run.
    pub conns_closed: u64,
    /// Queries issued by all members.
    pub queries_issued: u64,
    /// Total answers received by requirers.
    pub answers_received: u64,
    /// Events the loop processed (throughput metric).
    pub events: u64,
    /// Deepest the future-event list got during the run (live events).
    pub peak_queue_depth: usize,
    /// Mean established connections per member at the end.
    pub avg_connections: f64,
    /// The protocol trace (empty unless `Scenario::trace_capacity > 0`).
    pub trace: TraceLog,
    /// The observability report (empty unless `Scenario::obs` is enabled).
    /// Deliberately excluded from [`fingerprint`](RunResult::fingerprint):
    /// its span timings are wall-clock and the deterministic contract is
    /// carried by the numeric outputs already folded in.
    pub obs: ObsReport,
}

impl RunResult {
    /// Order-sensitive FNV-1a digest of every numeric output of a run.
    ///
    /// Two runs count as bit-identical iff their fingerprints match: the
    /// digest folds in per-node message counters, PHY totals, per-node
    /// energy (exact f64 bits), the role census, connection/query/answer
    /// totals, small-world samples, file metrics and the event count. The
    /// scheduler-equivalence tests and the bench harness use it to detect
    /// behavioural drift without field-by-field comparison.
    pub fn fingerprint(&self) -> u64 {
        use manet_metrics::MsgKind;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, x: u64) {
            *h = (*h ^ x).wrapping_mul(PRIME);
        }
        fn mix_f(h: &mut u64, x: f64) {
            mix(h, x.to_bits());
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for kind in MsgKind::ALL {
            for v in self.counters.column(kind) {
                mix(&mut h, v);
            }
        }
        mix(&mut h, self.members.len() as u64);
        for i in 0..self.file_metrics.len() {
            let f = self.file_metrics.file(i);
            mix(&mut h, f.requests);
            mix(&mut h, f.answers);
            mix(&mut h, f.answered);
            mix(&mut h, f.oracle_count);
            mix_f(&mut h, f.min_dist_sum);
            mix_f(&mut h, f.min_p2p_sum);
            mix_f(&mut h, f.oracle_sum);
        }
        for (t, sw) in &self.smallworld {
            mix_f(&mut h, *t);
            mix(&mut h, sw.n as u64);
            mix_f(&mut h, sw.k);
            mix_f(&mut h, sw.clustering);
            mix_f(&mut h, sw.path_length);
        }
        mix(&mut h, self.phy_total.frames_sent);
        mix(&mut h, self.phy_total.frames_received);
        mix(&mut h, self.phy_total.frames_lost);
        mix(&mut h, self.phy_total.link_breaks);
        mix(&mut h, self.phy_total.bytes_sent);
        mix(&mut h, self.phy_total.bytes_received);
        for e in &self.energy_mj {
            mix_f(&mut h, *e);
        }
        for r in self.roles {
            mix(&mut h, r as u64);
        }
        mix(&mut h, self.conns_established);
        mix(&mut h, self.conns_closed);
        mix(&mut h, self.queries_issued);
        mix(&mut h, self.answers_received);
        mix(&mut h, self.events);
        mix(&mut h, self.peak_queue_depth as u64);
        mix_f(&mut h, self.avg_connections);
        h
    }
}

/// The shared simulation state every layer adapter and subsystem operates
/// on: the engine, the node stacks, the medium, metrics accumulators and
/// the optional observability sink. Kept separate from [`World`] so a
/// subsystem (borrowed from `World::subsystems`) and the core can be
/// borrowed mutably at the same time.
pub(crate) struct WorldCore {
    pub(crate) scenario: Scenario,
    pub(crate) engine: Engine,
    pub(crate) grid: SpatialGrid,
    pub(crate) medium: Medium,
    pub(crate) radio_rng: Rng,
    pub(crate) nodes: Vec<NodeStack>,
    /// SoA hot per-node state: the mobility process, its RNG stream, and
    /// the administrative radio liveness, indexed by node id. Split out
    /// of [`NodeStack`] so the position/liveness reads the radio hot path
    /// makes stay in a few dense arrays — and so the sharded world can
    /// replicate exactly this state in every shard while the (cold,
    /// owner-only) protocol stacks stay sharded.
    pub(crate) mobility: Vec<AnyMobility>,
    pub(crate) mob_rngs: Vec<Rng>,
    /// Administrative up/down per node. In the sequential world this
    /// mirrors `phy.up` exactly (churn, crashes *and* battery depletion).
    /// In a sharded world it carries only the replicated churn/crash
    /// toggles — depletion is owner-local knowledge — so every shard
    /// reads the same value whatever the partition.
    pub(crate) hot_up: Vec<bool>,
    /// Sharded-execution context; `None` on the sequential path.
    pub(crate) shard: Option<Box<crate::sharded::ShardCtx>>,
    pub(crate) members: Vec<NodeId>,
    pub(crate) holders_by_file: Vec<Vec<NodeId>>,
    pub(crate) counters: NodeCounters,
    pub(crate) file_metrics: FileMetrics,
    pub(crate) smallworld: Vec<(f64, SmallWorld)>,
    pub(crate) link_state: LinkState,
    pub(crate) answers_received: u64,
    /// Reusable transmission-planning buffers (zero-alloc hot path).
    pub(crate) scratch: TxScratch,
    pub(crate) trace: TraceLog,
    /// Replication seed (kept for observability dump labels).
    pub(crate) seed: u64,
    /// Observability sink, precomputed at construction; the `Off` variant
    /// keeps the hot path to a single discriminant test per site.
    pub(crate) obs: ObsSink,
}

impl WorldCore {
    /// The scenario horizon as an absolute time.
    pub(crate) fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.scenario.duration
    }

    /// Does this world (or this shard of it) own node `id`'s protocol
    /// stack? Always true sequentially; a shard owns exactly the nodes
    /// its region currently claims.
    pub(crate) fn owns(&self, id: NodeId) -> bool {
        match &self.shard {
            None => true,
            Some(sh) => sh.owners[id.index()] as usize == sh.index,
        }
    }

    /// The impairment in force for a transmission planned right now,
    /// composed from the independent loss/burst/flap/jitter processes.
    pub(crate) fn active_faults(&self) -> LinkFaults {
        let mut f = LinkFaults::NONE;
        if let Some(loss) = &self.scenario.faults.loss {
            f.extra_loss = loss.base;
            if self.link_state.burst_on {
                if let Some(b) = &loss.burst {
                    f.extra_loss = f.extra_loss.max(b.burst_loss);
                }
            }
        }
        if self.link_state.flap_on {
            f.extra_loss = 1.0;
        }
        if self.link_state.jitter_on {
            if let Some(j) = &self.scenario.faults.jitter {
                f.extra_delay = j.extra_delay;
            }
        }
        f
    }

    /// Mirror the world's always-on counters into the registry, fold the
    /// hot-path slabs, and (when `push_series`) append a time-series
    /// sample at `now`.
    ///
    /// On the sharded path every mirror here is owner-gated: protocol
    /// stacks live only on their owning shard (husks elsewhere carry zero
    /// stats), transmissions are planned by the sender's owner, and the
    /// event count comes from the dispatch slab's owned classes — so
    /// summing the per-shard registries reproduces the sequential totals
    /// for any shard count.
    pub(crate) fn obs_sample(&mut self, now: SimTime, push_series: bool) {
        let ObsSink::On(mut obs) = std::mem::replace(&mut self.obs, ObsSink::Off) else {
            return;
        };
        obs.slab.fold_into(&mut obs.registry);
        obs.hists.fold_into(&mut obs.registry);
        match &self.shard {
            None => {
                obs.registry.set(obs.c_events, self.engine.events);
                obs.registry
                    .set(obs.c_scheduled, self.engine.scheduled_total());
                if let Some(stats) = self.engine.calendar_stats() {
                    obs.registry.set(obs.c_retunes, stats[3]);
                }
                obs.registry
                    .set_gauge(obs.g_queue, self.engine.len() as f64);
            }
            Some(_) => {
                // A shard's engine counts replicated Sub events too; the
                // dispatch slab already decomposes pops into owned classes
                // plus (shard 0 only) the shared Sub stream, so its total
                // partitions the true event count across shards. Queue
                // depth and scheduling totals are per-shard artifacts and
                // stay 0.
                let events = obs.slab.value(obs.sl_deliver)
                    + obs.slab.value(obs.sl_timer)
                    + obs.slab.value(obs.sl_join)
                    + obs.slab.value(obs.sl_sub);
                obs.registry.set(obs.c_events, events);
            }
        }
        obs.registry
            .set(obs.c_tx_planned, self.scratch.planned_total);
        obs.registry.set(obs.c_tx_lost, self.scratch.lost_total);
        let (mut rreq_orig, mut rreq_dup, mut flood_dup) = (0u64, 0u64, 0u64);
        for node in &self.nodes {
            let st = node.routing.aodv.stats();
            rreq_orig += st.rreqs_originated;
            rreq_dup += st.rreq_dup_dropped;
            flood_dup += st.flood_dup_dropped;
        }
        obs.registry.set(obs.c_rreq_orig, rreq_orig);
        obs.registry.set(obs.c_rreq_dup, rreq_dup);
        obs.registry.set(obs.c_flood_dup, flood_dup);
        let mut queries = 0u64;
        for &id in &self.members {
            if let Some(m) = &self.nodes[id.index()].overlay.member {
                queries += m.engine.stats().issued;
            }
        }
        obs.registry.set(obs.c_queries, queries);
        obs.registry.set(obs.c_answers, self.answers_received);
        if push_series {
            obs.registry.sample(now.as_secs_f64());
        }
        self.obs = ObsSink::On(obs);
    }

    /// Take a cadence-due series sample at `now`, advancing the cadence.
    ///
    /// Called after every event on the sequential path. On the sharded
    /// path it runs only after `Sub` events: those are replicated with
    /// identical times and keys in every shard, and within a shard events
    /// execute in `(time, key)` order — so by the time a given `Sub`
    /// dispatches, a shard has processed exactly the owned events ordered
    /// before that `(time, key)` point. Every shard therefore samples at
    /// the same logical cut, and the merged series is
    /// partition-invariant.
    #[inline]
    pub(crate) fn obs_series_tick(&mut self, now: SimTime) {
        let due = match &mut self.obs {
            ObsSink::On(o) => {
                if o.series_due(now) {
                    o.advance_sample(now);
                    true
                } else {
                    false
                }
            }
            ObsSink::Off => false,
        };
        if due {
            self.obs_sample(now, true);
        }
    }

    /// The final at-horizon sample every enabled sink gets, so counter
    /// totals in the report match the run's end state even with series
    /// sampling off.
    pub(crate) fn obs_final_sample(&mut self) {
        let push = match &self.obs {
            ObsSink::On(o) => !o.sample_period.is_zero(),
            ObsSink::Off => return,
        };
        let horizon = self.horizon();
        self.obs_sample(horizon, push);
    }

    /// Append a flight-recorder entry. The message closure only runs when
    /// the sink (and its recorder) is enabled, keeping format cost off the
    /// disabled path.
    pub(crate) fn obs_record(
        &mut self,
        now: SimTime,
        severity: Severity,
        tag: &'static str,
        msg: impl FnOnce() -> String,
    ) {
        if let Some(obs) = self.obs.on_mut() {
            if obs.recorder.enabled() {
                obs.recorder.record(now.as_secs_f64(), severity, tag, msg());
            }
        }
    }

    pub(crate) fn record_completed_query(&mut self, requirer: NodeId, done: &CompletedQuery) {
        let dists: Vec<(u8, u8)> = done
            .answers
            .iter()
            .map(|a| (a.adhoc_hops, a.p2p_hops))
            .collect();
        self.answers_received += done.answers.len() as u64;
        let oracle = self.oracle_distance(requirer, done.file.0 as usize);
        self.file_metrics
            .record(done.file.0 as usize, &dists, oracle);
    }

    /// The paper's Fig 5-6 distance: "the minimum number of hops from the
    /// source to the peer holding the requested information" — a BFS over
    /// the instantaneous radio connectivity graph from the requirer to the
    /// *nearest* holder of the file. `None` when no holder is reachable.
    fn oracle_distance(&self, requirer: NodeId, file: usize) -> Option<u32> {
        let holders = &self.holders_by_file[file];
        if holders.is_empty() {
            return None;
        }
        let targets: Vec<u32> = holders
            .iter()
            .filter(|h| self.hot_up[h.index()])
            .map(|h| h.0)
            .collect();
        let graph = self.connectivity_graph();
        graph.min_distance_to_any(requirer.0, &targets)
    }

    /// The instantaneous radio connectivity graph over all (up) nodes.
    pub(crate) fn connectivity_graph(&self) -> Graph {
        let n = self.nodes.len();
        let mut g = Graph::new(n);
        let range = self.medium.cfg().range_m;
        let mut buf = Vec::new();
        for (id, pos) in self.grid.iter() {
            if !self.hot_up[id as usize] {
                continue;
            }
            self.grid.query_range(pos, range, id, &mut buf);
            for &nb in &buf {
                if nb > id && self.hot_up[nb as usize] {
                    g.add_edge(id, nb);
                }
            }
        }
        g
    }

    /// The current overlay graph over members (established references,
    /// symmetric closure).
    pub(crate) fn overlay_graph(&self) -> Graph {
        let n = self.members.len();
        let mut g = Graph::new(n);
        for (slot, &id) in self.members.iter().enumerate() {
            if let Some(m) = &self.nodes[id.index()].overlay.member {
                for nb in m.algo.neighbors() {
                    let other = nb.index();
                    if other < n && other != slot {
                        g.add_edge(slot as u32, nb.0);
                    }
                }
            }
        }
        g
    }

    /// Emit ConnUp/ConnDown/RoleChange trace events from the member's
    /// state delta since the last observation. No-op when tracing is off.
    pub(crate) fn trace_member_delta(&mut self, now: SimTime, id: NodeId) {
        if !self.trace.enabled() {
            return;
        }
        let Some(m) = self.nodes[id.index()].overlay.member.as_mut() else {
            return;
        };
        let neighbors = m.algo.neighbors();
        let role = m.algo.role();
        let old = std::mem::replace(&mut m.last_neighbors, neighbors.clone());
        let old_role = std::mem::replace(&mut m.last_role, role);
        for &nb in &neighbors {
            if !old.contains(&nb) {
                self.trace
                    .record(now, TraceEvent::ConnUp { node: id, peer: nb });
            }
        }
        for &nb in &old {
            if !neighbors.contains(&nb) {
                self.trace
                    .record(now, TraceEvent::ConnDown { node: id, peer: nb });
            }
        }
        if role != old_role {
            self.trace
                .record(now, TraceEvent::RoleChange { node: id, role });
        }
    }

    /// Structural sanity of the live world at time `now`; see
    /// [`World::check_invariants`].
    fn check_invariants(&self, now: SimTime) -> Vec<String> {
        let mut v = Vec::new();
        let n = self.nodes.len();

        // Routing-table sanity.
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for (dst, entry) in node.routing.aodv.table().iter() {
                if *dst == id {
                    v.push(format!("node {i}: routing-table entry for itself"));
                }
                if dst.index() >= n {
                    v.push(format!("node {i}: route to nonexistent node {}", dst.0));
                }
                if entry.next_hop.index() >= n {
                    v.push(format!(
                        "node {i}: route to {} via nonexistent node {}",
                        dst.0, entry.next_hop.0
                    ));
                }
                if entry.next_hop == id {
                    v.push(format!("node {i}: route to {} via itself", dst.0));
                }
                if entry.usable(now) && entry.hop_count == 0 {
                    v.push(format!("node {i}: usable zero-hop route to {}", dst.0));
                }
            }
        }

        // Overlay neighbor-set sanity for live members.
        let capacity = self.scenario.overlay.max_conn + self.scenario.overlay.max_slaves;
        let mut neighbor_sets: Vec<Option<Vec<NodeId>>> = vec![None; n];
        for &id in &self.members {
            let node = &self.nodes[id.index()];
            if !node.phy.up {
                continue;
            }
            if let Some(m) = &node.overlay.member {
                if m.joined {
                    neighbor_sets[id.index()] = Some(m.algo.neighbors());
                }
            }
        }
        let mut directed = 0usize;
        let mut asymmetric = 0usize;
        for (i, set) in neighbor_sets.iter().enumerate() {
            let Some(neighbors) = set else { continue };
            if neighbors.len() > capacity {
                v.push(format!(
                    "member {i}: {} neighbors exceed capacity {capacity}",
                    neighbors.len()
                ));
            }
            for (k, &nb) in neighbors.iter().enumerate() {
                if nb.index() == i {
                    v.push(format!("member {i}: connected to itself"));
                }
                if nb.index() >= self.members.len() {
                    v.push(format!("member {i}: neighbor {} is not a member", nb.0));
                    continue;
                }
                if neighbors[..k].contains(&nb) {
                    v.push(format!("member {i}: duplicate neighbor {}", nb.0));
                }
                // Symmetry against peers that are alive to answer for it.
                if let Some(peer_set) = &neighbor_sets[nb.index()] {
                    directed += 1;
                    if !peer_set.contains(&NodeId(i as u32)) {
                        asymmetric += 1;
                    }
                }
            }
        }
        if directed >= 8 && asymmetric * 2 > directed {
            v.push(format!(
                "overlay symmetry: {asymmetric} of {directed} references one-sided"
            ));
        }

        v
    }

    /// Consume the core and assemble the [`RunResult`].
    fn finish_result(self) -> RunResult {
        let obs = match self.obs {
            ObsSink::On(o) => ObsReport {
                registry: o.registry,
                spans: o.spans,
                recorder: o.recorder,
                runs: 1,
            },
            ObsSink::Off => ObsReport::default(),
        };
        let mut roles = [0usize; 5];
        let mut established = 0;
        let mut closed = 0;
        let mut conn_count = 0usize;
        let mut phy_total = PhyStats::default();
        let mut energy = Vec::with_capacity(self.nodes.len());
        let mut queries = 0;
        for node in &self.nodes {
            phy_total.merge(&node.phy.stats);
            energy.push(node.phy.energy.spent_mj());
            if let Some(m) = &node.overlay.member {
                let idx = match m.algo.role() {
                    Role::Servent => 0,
                    Role::Initial => 1,
                    Role::Reserved => 2,
                    Role::Master => 3,
                    Role::Slave => 4,
                };
                roles[idx] += 1;
                let st = m.algo.conn_stats();
                established += st.established;
                closed += st.closed_total();
                conn_count += m.algo.neighbors().len();
                queries += m.engine.stats().issued;
            }
        }
        let avg_connections = if self.members.is_empty() {
            0.0
        } else {
            conn_count as f64 / self.members.len() as f64
        };
        RunResult {
            counters: self.counters,
            members: self.members,
            file_metrics: self.file_metrics,
            smallworld: self.smallworld,
            phy_total,
            energy_mj: energy,
            roles,
            conns_established: established,
            conns_closed: closed,
            queries_issued: queries,
            answers_received: self.answers_received,
            events: self.engine.events,
            peak_queue_depth: self.engine.peak_queue,
            avg_connections,
            trace: self.trace,
            obs,
        }
    }
}

/// One replication of a [`Scenario`]: the shared crate-private core plus
/// the registered subsystems and the post-dispatch tap list.
pub struct World {
    pub(crate) core: WorldCore,
    pub(crate) subsystems: Vec<Box<dyn Subsystem>>,
    /// Indices of subsystems that opted into the post-dispatch tap.
    post_hooks: Vec<SubsystemId>,
}

impl World {
    /// Build a world from a scenario and a replication seed, on the default
    /// scheduler. Panics on an invalid scenario; see
    /// [`try_new`](World::try_new) for the fallible twin.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        World::with_scheduler(scenario, seed, SchedulerKind::default())
    }

    /// Fallible constructor: returns the first configuration problem as a
    /// typed [`ScenarioError`] instead of panicking.
    pub fn try_new(scenario: Scenario, seed: u64) -> Result<Self, ScenarioError> {
        World::try_with_scheduler(scenario, seed, SchedulerKind::default())
    }

    /// Build a world whose future-event list runs on `scheduler`.
    ///
    /// The choice affects wall-clock speed only: results are bit-identical
    /// across schedulers (see [`RunResult::fingerprint`]).
    pub fn with_scheduler(scenario: Scenario, seed: u64, scheduler: SchedulerKind) -> Self {
        World::try_with_scheduler(scenario, seed, scheduler).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`with_scheduler`](World::with_scheduler).
    pub fn try_with_scheduler(
        scenario: Scenario,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> Result<Self, ScenarioError> {
        World::try_build(scenario, seed, Some(scheduler))
    }

    /// The full constructor. `scheduler` picks the sequential backend;
    /// `None` builds the world on the key-ordered backend instead (one
    /// shard replica of a sharded run — see `crate::sharded`).
    pub(crate) fn try_build(
        scenario: Scenario,
        seed: u64,
        scheduler: Option<SchedulerKind>,
    ) -> Result<Self, ScenarioError> {
        scenario.check()?;
        let master = Rng::new(seed);
        let area = scenario.area();
        let mut grid = SpatialGrid::new(area, scenario.radio.range_m);
        let medium = Medium::new(scenario.radio);
        let n = scenario.n_nodes;

        // Membership: the first n_members node ids are members; placement
        // is uniform so the choice of ids carries no spatial bias.
        let n_members = scenario.n_members();
        let members: Vec<NodeId> = (0..n_members as u32).map(NodeId).collect();

        // File holdings per member slot, plus the reverse index used by the
        // oracle-distance metric (Figs 5-6).
        let mut catalog_rng = master.fork(labels::CATALOG);
        let holdings = scenario.catalog.assign(n_members, &mut catalog_rng);
        let mut holders_by_file: Vec<Vec<NodeId>> =
            vec![Vec::new(); scenario.catalog.n_files as usize];
        for (slot, set) in holdings.iter().enumerate() {
            for f in set {
                holders_by_file[f.0 as usize].push(NodeId(slot as u32));
            }
        }

        let mut qual_rng = master.fork(labels::QUALIFIERS);
        let mut placement_rng = master.fork(labels::PLACEMENT);

        let mut nodes = Vec::with_capacity(n);
        let mut mobility_soa = Vec::with_capacity(n);
        let mut mob_rngs = Vec::with_capacity(n);
        // Indexed loop: `i` names the node id and (for members) its slot in
        // `holdings`; an enumerate over holdings would stop at n_members.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let id = NodeId(i as u32);
            let mut mob_rng = master.fork(labels::MOBILITY_BASE + i as u64);
            let start = Point::new(
                placement_rng.range_f64(area.x0, area.x1),
                placement_rng.range_f64(area.y0, area.y1),
            );
            let mobility: AnyMobility = match scenario.mobility {
                MobilityKind::Waypoint {
                    max_speed,
                    max_pause,
                } => RandomWaypoint::new(
                    RandomWaypointCfg {
                        bounds: area,
                        min_speed: (max_speed * 0.1).max(1e-3),
                        max_speed,
                        max_pause,
                    },
                    start,
                    &mut mob_rng,
                )
                .into(),
                MobilityKind::Walk { max_speed } => RandomWalk::new(
                    RandomWalkCfg {
                        bounds: area,
                        min_speed: (max_speed * 0.1).max(1e-3),
                        max_speed,
                        leg_duration: 60.0,
                    },
                    start,
                    &mut mob_rng,
                )
                .into(),
                MobilityKind::GaussMarkov => {
                    GaussMarkov::new(GaussMarkovCfg::walking(area), start, &mut mob_rng).into()
                }
                MobilityKind::Groups {
                    n_groups,
                    max_speed,
                    group_radius,
                } => {
                    let group = i % n_groups.max(1);
                    let group_seed = master.fork(labels::GROUPS + group as u64).next_u64();
                    Rpgm::new(
                        RpgmCfg {
                            bounds: area,
                            min_speed: (max_speed * 0.1).max(1e-3),
                            max_speed,
                            max_pause: 100.0,
                            group_radius,
                            offset_interval: 20.0,
                        },
                        group_seed,
                        &mut mob_rng,
                    )
                    .into()
                }
                MobilityKind::Stationary => Stationary::new(start).into(),
            };
            grid.upsert(id.0, mobility.position(SimTime::ZERO));

            let member = if (i as u32) < n_members as u32 {
                let qualifier = qual_rng.range_u64(
                    scenario.qualifier_range.0 as u64,
                    scenario.qualifier_range.1 as u64,
                ) as u32;
                let algo_seed = master.fork(labels::ALGO_BASE + i as u64).next_u64();
                let algo = build_algo(
                    scenario.algo,
                    id,
                    scenario.overlay,
                    qualifier,
                    Rng::new(algo_seed),
                );
                let engine = QueryEngine::new(
                    id,
                    scenario.query,
                    scenario.catalog,
                    holdings[i].clone(),
                    master.fork(labels::ENGINE_BASE + i as u64),
                );
                Some(MemberState {
                    algo,
                    engine,
                    joined: false,
                    algo_seed,
                    qualifier,
                    last_neighbors: Vec::new(),
                    last_role: Role::Servent,
                })
            } else {
                None
            };

            mobility_soa.push(mobility);
            mob_rngs.push(mob_rng);
            nodes.push(NodeStack {
                phy: PhyLayer {
                    stats: PhyStats::default(),
                    energy: match scenario.battery_mj {
                        Some(mj) => EnergyMeter::new(mj),
                        None => EnergyMeter::unlimited(),
                    },
                    up: true,
                },
                routing: RoutingLayer {
                    aodv: Aodv::new(id, scenario.aodv),
                    timer_at: SimTime::MAX,
                },
                overlay: OverlayLayer { member },
                adversary: None,
            });
        }

        // Attach adversarial roles (validated by `check` above). Pure
        // state assignment: no RNG draws, no events, so honest scenarios
        // and honest nodes are untouched.
        for a in &scenario.adversaries {
            nodes[a.node.index()].adversary = Some(crate::stack::AdversaryState::new(a.role));
        }

        let mut subsystems = subsystems::build(&scenario, &master);
        let post_hooks: Vec<SubsystemId> = subsystems
            .iter()
            .enumerate()
            .filter(|(_, s)| s.wants_post_hook())
            .map(|(k, _)| k as SubsystemId)
            .collect();

        let mut core = WorldCore {
            counters: NodeCounters::new(n),
            file_metrics: FileMetrics::new(scenario.catalog.n_files as usize),
            smallworld: Vec::new(),
            radio_rng: master.fork(labels::RADIO),
            link_state: LinkState::default(),
            engine: match scheduler {
                Some(kind) => Engine::with_scheduler(kind),
                None => Engine::keyed(),
            },
            grid,
            medium,
            mobility: mobility_soa,
            mob_rngs,
            hot_up: vec![true; n],
            shard: None,
            nodes,
            members,
            holders_by_file,
            answers_received: 0,
            scratch: TxScratch::default(),
            trace: TraceLog::with_seed(scenario.trace_capacity, seed),
            seed,
            obs: ObsSink::new(scenario.obs),
            scenario,
        };

        // Seed initial events. Insertion order is part of the deterministic
        // contract (timestamp ties break by insertion), so the interleaving
        // mirrors the pre-refactor monolith: per node, every subsystem's
        // per-node seeds (mobility) then the staggered join; afterwards each
        // subsystem's one-time seeds in registration order (samplers, churn
        // draws, the fault plan's windows and crashes).
        let mut join_rng = master.fork(labels::JOIN);
        for i in 0..n {
            let id = NodeId(i as u32);
            for (k, sub) in subsystems.iter_mut().enumerate() {
                sub.seed_node(
                    &mut SubCtx {
                        core: &mut core,
                        owner: k as SubsystemId,
                    },
                    id,
                );
            }
            if core.nodes[i].overlay.member.is_some() {
                let at =
                    SimTime::from_ticks(join_rng.below(core.scenario.join_window.ticks().max(1)));
                core.engine.schedule(at, Event::Join(id));
            }
        }
        for (k, sub) in subsystems.iter_mut().enumerate() {
            sub.init(&mut SubCtx {
                core: &mut core,
                owner: k as SubsystemId,
            });
        }

        Ok(World {
            core,
            subsystems,
            post_hooks,
        })
    }

    /// Process the next event, if it lies within the scenario horizon.
    ///
    /// Returns the timestamp of the processed event, or `None` when the
    /// replication is over (queue drained or horizon reached). Exposed so
    /// harnesses can interleave [`check_invariants`](World::check_invariants)
    /// with execution; [`run`](World::run) is the plain loop over it.
    pub fn step(&mut self) -> Option<SimTime> {
        let horizon = self.core.horizon();
        if self.core.obs.is_on() {
            return self.step_observed(horizon);
        }
        let (now, event) = self.core.engine.pop_before(horizon)?;
        self.dispatch(now, event);
        self.run_post_hooks(now);
        Some(now)
    }

    /// The instrumented twin of [`step`](World::step): identical
    /// simulation behaviour, plus stride-sampled span timing around the
    /// scheduler pop and the event dispatch (one timestamp pair per
    /// [`SPAN_STRIDE`] events, extrapolated) and the inlined series-cadence
    /// check. The instrumentation only reads state — it never schedules
    /// events or draws randomness — so observed and unobserved runs stay
    /// bit-identical.
    fn step_observed(&mut self, horizon: SimTime) -> Option<SimTime> {
        let timed = self.core.obs.on_mut().expect("observed step").pop_timed();
        if timed {
            let t0 = Instant::now();
            let popped = self.core.engine.pop_before(horizon);
            let pop_elapsed = t0.elapsed();
            let Some((now, event)) = popped else {
                let obs = self.core.obs.on_mut().expect("observed step");
                obs.spans.add_weighted(obs.s_pop, pop_elapsed, SPAN_STRIDE);
                return None;
            };
            let t1 = Instant::now();
            self.dispatch(now, event);
            let dispatch_elapsed = t1.elapsed();
            let obs = self.core.obs.on_mut().expect("observed step");
            obs.spans.add_weighted(obs.s_pop, pop_elapsed, SPAN_STRIDE);
            obs.spans
                .add_weighted(obs.s_dispatch, dispatch_elapsed, SPAN_STRIDE);
            self.run_post_hooks(now);
            self.core.obs_series_tick(now);
            Some(now)
        } else {
            let (now, event) = self.core.engine.pop_before(horizon)?;
            self.dispatch(now, event);
            self.run_post_hooks(now);
            self.core.obs_series_tick(now);
            Some(now)
        }
    }

    /// Route one event: node-stack traffic to the layer adapters,
    /// namespaced events to their owning subsystem.
    pub(crate) fn dispatch(&mut self, now: SimTime, event: Event) {
        if let ObsSink::On(obs) = &mut self.core.obs {
            let slot = match &event {
                Event::Deliver { .. } => Some(obs.sl_deliver),
                Event::NodeTimer(_) => Some(obs.sl_timer),
                Event::Join(_) => Some(obs.sl_join),
                Event::Sub(_) => obs.count_sub.then_some(obs.sl_sub),
            };
            if let Some(slot) = slot {
                obs.slab.bump(slot, 1);
            }
        }
        match event {
            Event::Deliver { to, from, msg } => {
                crate::stack::phy::frame_arrival(&mut self.core, now, to, FrameUp { from, msg })
            }
            Event::NodeTimer(id) => crate::stack::node_timer(&mut self.core, now, id),
            Event::Join(id) => crate::stack::overlay::join(&mut self.core, now, id),
            Event::Sub(key) => self.subsystems[key.owner() as usize].handle(
                &mut SubCtx {
                    core: &mut self.core,
                    owner: key.owner(),
                },
                now,
                key.event(),
            ),
        }
    }

    pub(crate) fn run_post_hooks(&mut self, now: SimTime) {
        for &k in &self.post_hooks {
            self.subsystems[k as usize].after_event(&mut self.core, now);
        }
    }

    /// Execute the replication to `scenario.duration` and report.
    pub fn run(mut self) -> RunResult {
        while self.step().is_some() {}
        self.finish()
    }

    /// Execute the replication with invariant checking and automatic
    /// flight-recorder dumps.
    ///
    /// The event loop runs inside `catch_unwind`, so a panicking fault-plan
    /// run still writes its JSONL post-mortem into `dump_dir` before the
    /// panic resumes. After a clean run,
    /// [`check_invariants`](World::check_invariants) and the conservation laws
    /// ([`crate::invariants::check_result`]) are evaluated; any violation
    /// is recorded at `Error` severity and dumped. Returns the result and
    /// the (already dumped) violations.
    pub fn run_checked(mut self, dump_dir: &Path) -> (RunResult, Vec<String>) {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        let seed = self.core.seed;
        let outcome = catch_unwind(AssertUnwindSafe(|| while self.step().is_some() {}));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            let now = self.core.engine.now();
            if let Some(obs) = self.core.obs.on_mut() {
                obs.recorder
                    .record(now.as_secs_f64(), Severity::Error, "panic", msg.clone());
            }
            self.dump_obs(dump_dir, &format!("panic_seed{seed}"), &[msg]);
            resume_unwind(payload);
        }
        let now = self.core.engine.now();
        let mut violations = self.check_invariants(now);
        if !violations.is_empty() {
            if let Some(obs) = self.core.obs.on_mut() {
                for v in &violations {
                    obs.recorder
                        .record(now.as_secs_f64(), Severity::Error, "invariant", v.clone());
                }
            }
            self.dump_obs(dump_dir, &format!("invariants_seed{seed}"), &violations);
        }
        let scenario = self.core.scenario.clone();
        let result = self.finish();
        let end = crate::invariants::check_result(&scenario, &result);
        if !end.is_empty() && result.obs.enabled() {
            let _ = manet_obs::report::dump_failure(
                dump_dir,
                &format!("conservation_seed{seed}"),
                &end,
                &result.obs,
            );
        }
        violations.extend(end);
        (result, violations)
    }

    /// Write the current observability state as a JSONL failure dump into
    /// `dir`. Returns the path written, or `None` when the sink is
    /// disabled (or the write failed).
    pub fn dump_obs(&mut self, dir: &Path, label: &str, violations: &[String]) -> Option<PathBuf> {
        self.core.obs.get()?;
        let now = self.core.engine.now();
        self.core.obs_sample(now, true);
        let o = self.core.obs.get().expect("sink enabled");
        let report = ObsReport {
            registry: o.registry.clone(),
            spans: o.spans.clone(),
            recorder: o.recorder.clone(),
            runs: 1,
        };
        manet_obs::report::dump_failure(dir, label, violations, &report).ok()
    }

    /// Consume the world and report. Harnesses driving [`step`](World::step)
    /// themselves call this once `step` returns `None`. Subsystem finish
    /// hooks run first, then the sink's final at-horizon sample.
    pub fn finish(mut self) -> RunResult {
        for sub in &mut self.subsystems {
            sub.on_finish(&mut self.core);
        }
        self.core.obs_final_sample();
        self.core.finish_result()
    }

    /// Structural sanity of the live world at time `now`: routing tables
    /// and overlay neighbor sets. Returns one message per violation.
    ///
    /// Everything checked here holds at *every* instant of *any* scenario
    /// (faults included); see `invariants` for the end-of-run conservation
    /// laws. Overlay symmetry is deliberately a soft check: the
    /// Connect/Accept/Confirm handshake leaves edges one-sided for a
    /// message round-trip, so only a mostly-asymmetric overlay is flagged.
    pub fn check_invariants(&self, now: SimTime) -> Vec<String> {
        self.core.check_invariants(now)
    }

    /// The instantaneous radio connectivity graph over all (up) nodes.
    pub fn connectivity_graph(&self) -> Graph {
        self.core.connectivity_graph()
    }

    /// The current overlay graph over members (established references,
    /// symmetric closure).
    pub fn overlay_graph(&self) -> Graph {
        self.core.overlay_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::SimDuration;
    use manet_metrics::MsgKind;
    use p2p_core::AlgoKind;

    fn quick(algo: AlgoKind, n: usize, secs: u64, seed: u64) -> RunResult {
        World::new(Scenario::quick(n, algo, secs), seed).run()
    }

    #[test]
    #[ignore = "diagnostic probe"]
    fn calendar_probe() {
        let nodes: usize = std::env::var("PROBE_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(150);
        let secs: u64 = std::env::var("PROBE_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let kind = match std::env::var("PROBE_SCHED").as_deref() {
            Ok("heap") => SchedulerKind::Heap,
            _ => SchedulerKind::Calendar,
        };
        let mut w = World::with_scheduler(Scenario::quick(nodes, AlgoKind::Regular, secs), 7, kind);
        let t0 = std::time::Instant::now();
        let mut next_dump = 0u64;
        while let Some(now) = w.step() {
            if now.ticks() >= next_dump {
                if let Some(s) = w.core.engine.calendar_stats() {
                    eprintln!(
                        "t={:>4}s pops={} winvisits={} fallbacks={} rebuilds={} width={} buckets={} items={}",
                        now.ticks() / 1_000_000, s[0], s[1], s[2], s[3], s[4], s[5], s[6]
                    );
                }
                next_dump = now.ticks() + 30_000_000;
            }
        }
        eprintln!("wall: {:?} events={}", t0.elapsed(), w.core.engine.events);
    }

    #[test]
    fn world_runs_to_completion_for_all_algorithms() {
        for algo in AlgoKind::ALL {
            let s = Scenario::quick(20, algo, 120);
            let expect = s.n_members();
            let r = World::new(s, 1).run();
            assert!(r.events > 0, "{algo}: no events processed");
            assert_eq!(r.members.len(), expect);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick(AlgoKind::Regular, 25, 150, 7);
        let b = quick(AlgoKind::Regular, 25, 150, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.queries_issued, b.queries_issued);
        assert_eq!(
            a.counters.column(MsgKind::Connect),
            b.counters.column(MsgKind::Connect)
        );
        assert_eq!(
            a.counters.column(MsgKind::Ping),
            b.counters.column(MsgKind::Ping)
        );
        assert_eq!(a.phy_total, b.phy_total);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(AlgoKind::Regular, 25, 150, 7);
        let b = quick(AlgoKind::Regular, 25, 150, 8);
        assert_ne!(
            (a.events, a.phy_total.frames_sent),
            (b.events, b.phy_total.frames_sent)
        );
    }

    #[test]
    fn overlay_forms_connections() {
        // Dense-enough network: members should find each other.
        let r = quick(AlgoKind::Regular, 30, 300, 3);
        assert!(
            r.avg_connections > 0.5,
            "members barely connected: {}",
            r.avg_connections
        );
        assert!(r.conns_established > 0);
    }

    #[test]
    fn queries_flow_and_get_answers() {
        let r = quick(AlgoKind::Regular, 30, 600, 4);
        assert!(r.queries_issued > 0, "no queries issued");
        assert!(
            r.counters.total(MsgKind::Query) > 0,
            "no query traffic received"
        );
        assert!(r.answers_received > 0, "no answers at all");
    }

    #[test]
    fn basic_produces_more_connect_traffic_than_regular() {
        let basic = quick(AlgoKind::Basic, 30, 400, 5);
        let regular = quick(AlgoKind::Regular, 30, 400, 5);
        let b = basic.counters.total(MsgKind::Connect);
        let r = regular.counters.total(MsgKind::Connect);
        assert!(
            b > r,
            "Basic ({b}) should beat Regular ({r}) on connect volume"
        );
    }

    #[test]
    fn hybrid_forms_masters_and_slaves() {
        let r = quick(AlgoKind::Hybrid, 30, 600, 6);
        let masters = r.roles[3];
        let slaves = r.roles[4];
        assert!(masters > 0, "no masters formed: roles {:?}", r.roles);
        assert!(slaves > 0, "no slaves formed: roles {:?}", r.roles);
    }

    #[test]
    fn energy_accounting_accumulates() {
        let r = quick(AlgoKind::Basic, 20, 200, 9);
        let total: f64 = r.energy_mj.iter().sum();
        assert!(total > 0.0);
        assert!(r.phy_total.frames_sent > 0);
        assert!(r.phy_total.frames_received > 0);
    }

    #[test]
    fn churn_worlds_survive() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 300);
        s.churn = Some(crate::scenario::ChurnCfg {
            mean_uptime: 60.0,
            mean_downtime: 30.0,
        });
        let r = World::new(s, 11).run();
        assert!(r.events > 0);
    }

    #[test]
    fn smallworld_sampling_collects() {
        let mut s = Scenario::quick(40, AlgoKind::Random, 400);
        s.smallworld_sample = Some(SimDuration::from_secs(100));
        let r = World::new(s, 12).run();
        // Samples exist only when the overlay got dense enough; at minimum
        // the machinery must not crash, and usually we get some.
        assert!(r.smallworld.len() <= 4);
    }

    #[test]
    fn group_mobility_worlds_work() {
        let mut s = Scenario::quick(24, AlgoKind::Regular, 200);
        s.mobility = MobilityKind::Groups {
            n_groups: 4,
            max_speed: 1.0,
            group_radius: 8.0,
        };
        let r = World::new(s, 21).run();
        assert!(r.events > 0);
        // Teams huddle within radio range, so the overlay should form at
        // least as well as under independent waypoint motion.
        assert!(r.conns_established > 0);
    }

    #[test]
    fn fuzzy_radio_worlds_work() {
        let mut s = Scenario::quick(24, AlgoKind::Regular, 200);
        s.radio.fuzz = 0.4;
        let r = World::new(s, 22).run();
        assert!(r.events > 0);
        assert!(r.phy_total.frames_lost > 0, "fuzzy edge should lose frames");
    }

    #[test]
    fn hello_beacon_worlds_work() {
        let mut s = Scenario::quick(16, AlgoKind::Regular, 120);
        s.aodv.hello_interval = Some(SimDuration::from_secs(2));
        let r = World::new(s, 23).run();
        assert!(r.events > 0);
        assert!(
            r.phy_total.frames_sent > 16 * 40,
            "beacons should dominate the frame count"
        );
    }

    #[test]
    fn transfer_phase_worlds_move_files() {
        let mut s = Scenario::quick(30, AlgoKind::Regular, 600);
        s.query.fetch_bytes = Some(32_768);
        let r = World::new(s, 24).run();
        let transfers = r.counters.total(MsgKind::Transfer);
        assert!(transfers > 0, "no file transfers completed");
        // Bulk payloads dominate the byte count once transfers flow.
        assert!(r.phy_total.bytes_sent > transfers * 32_768 / 2);
    }

    #[test]
    fn trace_captures_protocol_milestones() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 300);
        s.trace_capacity = 10_000;
        let r = World::new(s, 25).run();
        assert!(r.trace.offered() > 0, "trace stayed empty");
        let text = r.trace.render();
        assert!(text.contains("JOIN"), "join events missing");
        assert!(text.contains("CONN+"), "no connection events:\n{text}");
        assert!(text.contains("RX "), "no delivery events");
        // Tracing must not perturb the simulation itself.
        let mut s2 = Scenario::quick(20, AlgoKind::Regular, 300);
        s2.trace_capacity = 0;
        let r2 = World::new(s2, 25).run();
        assert_eq!(r.events, r2.events, "tracing changed the run");
    }

    #[test]
    fn stationary_worlds_work() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 200);
        s.mobility = MobilityKind::Stationary;
        let r = World::new(s, 13).run();
        assert!(r.events > 0);
    }

    #[test]
    fn invalid_scenarios_surface_as_typed_errors() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 120);
        s.n_nodes = 1;
        match World::try_new(s, 1) {
            Err(ScenarioError::TooFewNodes { n_nodes: 1 }) => {}
            other => panic!("expected TooFewNodes, got {:?}", other.err()),
        }
        let mut s = Scenario::quick(20, AlgoKind::Regular, 120);
        s.faults =
            crate::faults::FaultPlan::loss_and_crash(0.1, NodeId(99), SimTime::from_secs(10), None);
        match World::try_new(s, 1) {
            Err(ScenarioError::CrashTargetOutOfRange { node: 99, .. }) => {}
            other => panic!("expected CrashTargetOutOfRange, got {:?}", other.err()),
        }
    }
}
