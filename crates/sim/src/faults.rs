//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is part of the scenario: it describes every impairment a
//! replication will suffer, so a `(scenario, seed)` pair still reproduces
//! bit-identical runs — faults included. The world translates the plan into
//! events on the shared future-event list (burst boundaries, crash times,
//! flap and jitter windows) and passes the currently-active impairment to
//! the radio as a [`manet_radio::LinkFaults`] value on every planned
//! transmission. An empty plan schedules nothing and draws nothing, so
//! fault-free runs are byte-identical to the pre-fault simulator.
//!
//! Four processes compose:
//!
//! * [`PacketLoss`] — iid extra loss, optionally modulated by a two-state
//!   (Gilbert-style) burst process with exponential dwell times;
//! * [`CrashEvent`] — a scripted node crash at a fixed time, with an
//!   optional restart (the node reboots with fresh overlay state, exactly
//!   like churn recovery);
//! * [`LinkFlaps`] — periodic whole-medium outages (every transmission in a
//!   flap window is lost), the harshest partition a shared medium can show;
//! * [`JitterSpikes`] — periodic windows of extra fixed delivery delay.

use manet_des::{NodeId, SimDuration, SimTime};

use crate::errors::ScenarioError;

/// Two-state burst modulation for [`PacketLoss`].
///
/// The process alternates between a *quiet* state (only the base loss
/// applies) and a *burst* state (loss jumps to `burst_loss`), with dwell
/// times drawn from exponentials on the world's dedicated fault RNG stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstCfg {
    /// Mean dwell time in the quiet state, seconds.
    pub mean_quiet: f64,
    /// Mean dwell time in the burst state, seconds.
    pub mean_burst: f64,
    /// Extra loss probability while bursting, in `[0, 1]`.
    pub burst_loss: f64,
}

/// Extra iid packet loss injected on top of the configured radio loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketLoss {
    /// Always-on extra loss probability, in `[0, 1]`.
    pub base: f64,
    /// Optional burst modulation; during a burst the *maximum* of `base`
    /// and `burst_loss` applies.
    pub burst: Option<BurstCfg>,
}

/// One scripted crash of a specific node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashEvent {
    /// Which node crashes (members lose their overlay presence; pure
    /// relays just stop forwarding).
    pub node: NodeId,
    /// When it crashes.
    pub at: SimTime,
    /// If set, the node reboots this long after crashing, with fresh
    /// overlay state but the same identity and files.
    pub restart_after: Option<SimDuration>,
}

/// Periodic whole-medium outage windows.
///
/// Starting at `period`, every transmission planned during the first
/// `down` of each `period` is lost. Models the network-wide fade of a
/// shared channel (interference, a passing obstacle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFlaps {
    /// Distance between flap starts.
    pub period: SimDuration,
    /// How long each flap lasts; must be shorter than `period`.
    pub down: SimDuration,
}

/// Periodic windows of extra fixed delivery delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterSpikes {
    /// Distance between spike starts.
    pub period: SimDuration,
    /// How long each spike lasts; must be shorter than `period`.
    pub width: SimDuration,
    /// Extra delay added to every transmission inside a spike window.
    pub extra_delay: SimDuration,
}

/// The complete fault schedule of a scenario. `Default` is the empty plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Extra packet loss (iid base + optional bursts).
    pub loss: Option<PacketLoss>,
    /// Scripted node crashes.
    pub crashes: Vec<CrashEvent>,
    /// Periodic whole-medium outages.
    pub link_flaps: Option<LinkFlaps>,
    /// Periodic delay spikes.
    pub jitter: Option<JitterSpikes>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loss.is_none()
            && self.crashes.is_empty()
            && self.link_flaps.is_none()
            && self.jitter.is_none()
    }

    /// The smoke-test plan: `loss_prob` extra iid loss plus one crash of
    /// `node` at `crash_at`, restarting after `restart_after` if given.
    pub fn loss_and_crash(
        loss_prob: f64,
        node: NodeId,
        crash_at: SimTime,
        restart_after: Option<SimDuration>,
    ) -> Self {
        FaultPlan {
            loss: Some(PacketLoss {
                base: loss_prob,
                burst: None,
            }),
            crashes: vec![CrashEvent {
                node,
                at: crash_at,
                restart_after,
            }],
            link_flaps: None,
            jitter: None,
        }
    }

    /// Typed validation against a world of `n_nodes` nodes: the first
    /// out-of-domain parameter as a [`ScenarioError`] (including crash
    /// targets outside the world), or `Ok(())` for a simulable plan.
    pub fn check(&self, n_nodes: usize) -> Result<(), ScenarioError> {
        if let Some(loss) = &self.loss {
            if !(0.0..=1.0).contains(&loss.base) {
                return Err(ScenarioError::LossNotProbability { prob: loss.base });
            }
            if let Some(b) = &loss.burst {
                if !(b.mean_quiet > 0.0 && b.mean_burst > 0.0) {
                    return Err(ScenarioError::BurstDwellNotPositive {
                        mean_quiet: b.mean_quiet,
                        mean_burst: b.mean_burst,
                    });
                }
                if !(0.0..=1.0).contains(&b.burst_loss) {
                    return Err(ScenarioError::BurstLossNotProbability { prob: b.burst_loss });
                }
            }
        }
        for c in &self.crashes {
            if (c.node.0 as usize) >= n_nodes {
                return Err(ScenarioError::CrashTargetOutOfRange {
                    node: c.node.0,
                    n_nodes,
                });
            }
            if let Some(r) = c.restart_after {
                if r.is_zero() {
                    return Err(ScenarioError::ZeroRestartDelay { node: c.node.0 });
                }
            }
        }
        if let Some(f) = &self.link_flaps {
            if f.period.is_zero() {
                return Err(ScenarioError::FlapPeriodZero);
            }
            if f.down >= f.period {
                return Err(ScenarioError::FlapDownNotShorter);
            }
            if f.down.is_zero() {
                return Err(ScenarioError::FlapDownZero);
            }
        }
        if let Some(j) = &self.jitter {
            if j.period.is_zero() {
                return Err(ScenarioError::JitterPeriodZero);
            }
            if j.width >= j.period {
                return Err(ScenarioError::JitterWidthNotShorter);
            }
            if j.width.is_zero() {
                return Err(ScenarioError::JitterWidthZero);
            }
        }
        Ok(())
    }

    /// Panics when any parameter is out of domain (the message is the
    /// [`ScenarioError`] display form).
    pub fn validate(&self, n_nodes: usize) {
        if let Err(e) = self.check(n_nodes) {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        p.validate(10);
    }

    #[test]
    fn loss_and_crash_builder() {
        let p = FaultPlan::loss_and_crash(
            0.2,
            NodeId(3),
            SimTime::from_secs(100),
            Some(SimDuration::from_secs(60)),
        );
        assert!(!p.is_empty());
        p.validate(10);
        assert_eq!(p.crashes.len(), 1);
        assert_eq!(p.loss.unwrap().base, 0.2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_loss_rejected() {
        FaultPlan {
            loss: Some(PacketLoss {
                base: 1.2,
                burst: None,
            }),
            ..Default::default()
        }
        .validate(10);
    }

    #[test]
    #[should_panic(expected = "world has 5")]
    fn crash_of_unknown_node_rejected() {
        FaultPlan {
            crashes: vec![CrashEvent {
                node: NodeId(7),
                at: SimTime::from_secs(1),
                restart_after: None,
            }],
            ..Default::default()
        }
        .validate(5);
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn flap_longer_than_period_rejected() {
        FaultPlan {
            link_flaps: Some(LinkFlaps {
                period: SimDuration::from_secs(10),
                down: SimDuration::from_secs(10),
            }),
            ..Default::default()
        }
        .validate(5);
    }
}
