//! # manet-sim — scenario orchestration and experiment harness
//!
//! Ties the substrate crates into runnable worlds and reproduces the
//! paper's evaluation (see DESIGN.md for the experiment index).

pub(crate) mod engine;
pub mod errors;
pub mod experiments;
pub mod faults;
pub mod invariants;
pub mod payload;
pub mod runner;
pub mod scenario;
pub mod scn;
pub mod sharded;
pub(crate) mod stack;
pub(crate) mod subsystems;
pub mod trace;
pub mod world;

pub use errors::ScenarioError;
pub use experiments::{run_matrix, run_matrix_traced, ExperimentCfg};
pub use faults::{BurstCfg, CrashEvent, FaultPlan, JitterSpikes, LinkFlaps, PacketLoss};
pub use invariants::{check_result, check_result_dumping};
pub use manet_des::TraceCtx;
pub use manet_obs::{ObsConfig, ObsReport};
pub use p2p_core::AdversaryRole;
pub use payload::AppMsg;
pub use runner::{aggregate, expect_of, measure_corpus, run_replications, Aggregate};
pub use scenario::{Adversary, ChurnCfg, MobilityKind, Scenario};
pub use scn::{parse_scn, render_expect, render_scn, Expect, ScnError, ScnErrorKind, ScnFile};
pub use sharded::ShardedWorld;
pub use trace::{TraceEvent, TraceLog};
pub use world::{RunResult, World};
