//! The simulation engine: virtual clock, future-event list, and typed
//! event routing.
//!
//! [`Engine`] is deliberately slim — it owns the [`EventQueue`], the
//! processed-event counter and the peak-depth gauge, and nothing else.
//! Everything that *reacts* to events lives either in the per-node layer
//! stack (`crate::stack`) or in a registered [`Subsystem`]
//! (`crate::subsystems`).
//!
//! Event routing is typed: node-stack traffic (frame deliveries, combined
//! node timers, overlay joins) is dispatched straight to the layer
//! adapters, while every cross-cutting process (mobility, churn, faults,
//! samplers) schedules [`SubEvent`]s in its own namespace — the
//! [`SubsystemId`] it was registered under. Adding a new subsystem
//! therefore never touches the [`Event`] enum.

use manet_aodv::Msg;
use manet_des::{EventQueue, NodeId, SchedulerKind, SimTime};

use crate::payload::AppMsg;
use crate::world::WorldCore;

/// Index of a registered subsystem; doubles as its event namespace.
pub(crate) type SubsystemId = u16;

/// Everything scheduled in the future-event list.
pub(crate) enum Event {
    /// A frame finishes arriving at `to` (routed to the phy layer).
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Msg<AppMsg>,
    },
    /// Combined protocol timer for one node (routing + overlay + query).
    NodeTimer(NodeId),
    /// A member joins the overlay.
    Join(NodeId),
    /// A subsystem-namespaced event, routed to `subsystems[id]`.
    Sub(SubsystemId, SubEvent),
}

/// An event inside one subsystem's private namespace.
///
/// The meaning of each shape is the owning subsystem's business: mobility
/// uses `Node` for position re-evaluation, churn uses `Node`/`NodeAlt` for
/// its down/up alternation, the burst/flap/jitter processes use `Tick` for
/// their window boundaries.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SubEvent {
    /// A node-less process boundary (window toggles, samplers).
    Tick,
    /// A per-node event (primary meaning).
    Node(NodeId),
    /// A per-node event (secondary meaning, e.g. the up-phase of churn).
    NodeAlt(NodeId),
}

/// The clock and future-event list of one replication.
pub(crate) struct Engine {
    queue: EventQueue<Event>,
    /// Events the loop has processed.
    pub(crate) events: u64,
    /// Deepest the future-event list has been (live events).
    pub(crate) peak_queue: usize,
}

impl Engine {
    pub(crate) fn with_scheduler(kind: SchedulerKind) -> Self {
        Engine {
            queue: EventQueue::with_scheduler(kind),
            events: 0,
            peak_queue: 0,
        }
    }

    /// Schedule `ev` at absolute time `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.schedule(at, ev);
    }

    /// Pop the next event at or before `horizon`, updating the peak-depth
    /// gauge (before the pop, so the popped event still counts as live)
    /// and the processed-event counter.
    pub(crate) fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        self.peak_queue = self.peak_queue.max(self.queue.len());
        let popped = self.queue.pop_before(horizon)?;
        self.events += 1;
        Some(popped)
    }

    /// The current virtual time (time of the last popped event).
    pub(crate) fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Live events in the future-event list.
    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }

    /// Read access to the underlying queue (scheduler statistics).
    pub(crate) fn queue(&self) -> &EventQueue<Event> {
        &self.queue
    }
}

/// A pluggable cross-cutting process registered on the engine.
///
/// Subsystems own their private state (RNG streams, schedules, cadences)
/// and react to events in their own [`SubEvent`] namespace; they reach the
/// shared simulation state through [`SubCtx`]. Lifecycle:
///
/// 1. [`seed_node`](Subsystem::seed_node) — once per node during world
///    construction, in node-id order (interleaved across subsystems so
///    initial-event insertion order is part of the deterministic contract);
/// 2. [`init`](Subsystem::init) — once after all nodes exist, in
///    registration order;
/// 3. [`handle`](Subsystem::handle) — for every popped event the subsystem
///    scheduled;
/// 4. [`after_event`](Subsystem::after_event) — after every dispatched
///    event, only when [`wants_post_hook`](Subsystem::wants_post_hook) —
///    a passive tap that must not schedule events or draw randomness;
/// 5. [`on_finish`](Subsystem::on_finish) — once when the world is
///    finished, before the result is assembled.
pub(crate) trait Subsystem {
    /// Per-node seeding during world construction.
    fn seed_node(&mut self, ctx: &mut SubCtx<'_>, id: NodeId) {
        let _ = (ctx, id);
    }

    /// One-time seeding after all nodes exist.
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        let _ = ctx;
    }

    /// Handle an event this subsystem scheduled.
    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let _ = (ctx, now, ev);
    }

    /// Opt into the per-event post-dispatch tap. Checked once at world
    /// construction, so passive observers cost nothing when absent.
    fn wants_post_hook(&self) -> bool {
        false
    }

    /// Passive post-dispatch tap (see [`Subsystem::wants_post_hook`]).
    /// Must only read simulation state —
    /// never schedule events or draw randomness — so instrumented and bare
    /// runs stay bit-identical.
    fn after_event(&mut self, core: &mut WorldCore, now: SimTime) {
        let _ = (core, now);
    }

    /// End-of-run hook, called before the result is assembled.
    fn on_finish(&mut self, core: &mut WorldCore) {
        let _ = core;
    }
}

/// What a [`Subsystem`] sees of the world: the shared core plus its own
/// registration id, so everything it schedules lands back in its own
/// namespace.
pub(crate) struct SubCtx<'a> {
    pub(crate) core: &'a mut WorldCore,
    pub(crate) owner: SubsystemId,
}

impl SubCtx<'_> {
    /// Schedule `ev` in the owning subsystem's namespace at time `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, ev: SubEvent) {
        self.core.engine.schedule(at, Event::Sub(self.owner, ev));
    }
}
