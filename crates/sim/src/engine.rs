//! The simulation engine: virtual clock, future-event list, and typed
//! event routing.
//!
//! [`Engine`] is deliberately slim — it owns the future-event list, the
//! processed-event counter and the peak-depth gauge, and nothing else.
//! Everything that *reacts* to events lives either in the per-node layer
//! stack (`crate::stack`) or in a registered [`Subsystem`]
//! (`crate::subsystems`).
//!
//! Event routing is typed: node-stack traffic (frame deliveries, combined
//! node timers, overlay joins) is dispatched straight to the layer
//! adapters, while every cross-cutting process (mobility, churn, faults,
//! samplers) schedules [`SubEvent`]s in its own namespace — the
//! [`SubsystemId`] it was registered under. Adding a new subsystem
//! therefore never touches the [`Event`] enum.
//!
//! Two queue backends sit behind the same `schedule`/`pop_before`
//! surface: the sequential [`EventQueue`] (insertion-order tie-breaks,
//! the default, bit-identical to every pinned fingerprint) and the
//! [`KeyedQueue`] used by the sharded world, which breaks ties with an
//! intrinsic [`EventKey`] derived from the event itself so any partition
//! of the same world pops simultaneous events identically.

use manet_aodv::Msg;
use manet_des::{EventKey, EventQueue, KeyedQueue, NodeId, SchedulerKind, SimTime, Substrate};

use crate::payload::AppMsg;
use crate::world::WorldCore;

/// Index of a registered subsystem; doubles as its event namespace.
pub(crate) type SubsystemId = u16;

/// A subsystem event compacted into one word: owner id (16 bits), event
/// shape (8 bits) and node id (32 bits). Keeps the `Event::Sub` arm at
/// payload-free size — the future-event list is dominated by these plus
/// node timers, so the hot path copies no more than it must.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SubKey(u64);

const SUB_TICK: u64 = 0;
const SUB_NODE: u64 = 1;
const SUB_NODE_ALT: u64 = 2;

impl SubKey {
    pub(crate) fn pack(owner: SubsystemId, ev: SubEvent) -> Self {
        let (kind, node) = match ev {
            SubEvent::Tick => (SUB_TICK, 0u64),
            SubEvent::Node(n) => (SUB_NODE, n.0 as u64),
            SubEvent::NodeAlt(n) => (SUB_NODE_ALT, n.0 as u64),
        };
        SubKey(((owner as u64) << 40) | (kind << 32) | node)
    }

    pub(crate) fn owner(self) -> SubsystemId {
        (self.0 >> 40) as SubsystemId
    }

    pub(crate) fn event(self) -> SubEvent {
        match (self.0 >> 32) & 0xff {
            SUB_TICK => SubEvent::Tick,
            SUB_NODE => SubEvent::Node(NodeId(self.0 as u32)),
            _ => SubEvent::NodeAlt(NodeId(self.0 as u32)),
        }
    }

    /// The shape-and-node half (low 40 bits), for intrinsic keying.
    fn discriminant(self) -> u64 {
        self.0 & 0xff_ffff_ffff
    }
}

/// Everything scheduled in the future-event list.
pub(crate) enum Event {
    /// A frame finishes arriving at `to` (routed to the phy layer).
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Msg<AppMsg>,
    },
    /// Combined protocol timer for one node (routing + overlay + query).
    NodeTimer(NodeId),
    /// A member joins the overlay.
    Join(NodeId),
    /// A subsystem-namespaced event, routed to `subsystems[key.owner()]`.
    Sub(SubKey),
}

/// Event-class ranks of the intrinsic [`EventKey`] order (sharded mode).
pub(crate) mod key_class {
    pub const JOIN: u8 = 0;
    pub const NODE_TIMER: u8 = 1;
    pub const DELIVER: u8 = 2;
    pub const SUB: u8 = 3;
}

/// The intrinsic key of a frame delivery: sender/receiver pair plus the
/// sender's transmission sequence number. Unique per reception, and
/// derived from what the frame *is* — never from scheduling order — so
/// every partition of a sharded world agrees on it.
pub(crate) fn deliver_key(from: NodeId, to: NodeId, tx_seq: u64) -> EventKey {
    EventKey {
        class: key_class::DELIVER,
        k1: ((from.0 as u64) << 32) | to.0 as u64,
        k2: tx_seq,
    }
}

/// The intrinsic key of every event except `Deliver` (whose key needs the
/// sender's transmission sequence, supplied at the phy layer via
/// [`Engine::schedule_keyed`]).
fn intrinsic_key(ev: &Event) -> EventKey {
    match ev {
        Event::Join(n) => EventKey {
            class: key_class::JOIN,
            k1: n.0 as u64,
            k2: 0,
        },
        Event::NodeTimer(n) => EventKey {
            class: key_class::NODE_TIMER,
            k1: n.0 as u64,
            k2: 0,
        },
        Event::Sub(key) => EventKey {
            class: key_class::SUB,
            k1: key.owner() as u64,
            k2: key.discriminant(),
        },
        Event::Deliver { .. } => {
            panic!("Deliver events need an explicit per-sender key (schedule_keyed)")
        }
    }
}

/// An event inside one subsystem's private namespace.
///
/// The meaning of each shape is the owning subsystem's business: mobility
/// uses `Node` for position re-evaluation, churn uses `Node`/`NodeAlt` for
/// its down/up alternation, the burst/flap/jitter processes use `Tick` for
/// their window boundaries.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SubEvent {
    /// A node-less process boundary (window toggles, samplers).
    Tick,
    /// A per-node event (primary meaning).
    Node(NodeId),
    /// A per-node event (secondary meaning, e.g. the up-phase of churn).
    NodeAlt(NodeId),
}

enum Backend {
    /// Insertion-order tie-breaks: the sequential world's exact semantics.
    Seq(EventQueue<Event>),
    /// Intrinsic-key tie-breaks: the sharded world's partition-invariant
    /// semantics.
    Keyed(KeyedQueue<Event>),
}

/// The clock and future-event list of one replication (or one shard).
pub(crate) struct Engine {
    backend: Backend,
    /// Events the loop has processed.
    pub(crate) events: u64,
    /// Deepest the future-event list has been (live events).
    pub(crate) peak_queue: usize,
}

impl Engine {
    pub(crate) fn with_scheduler(kind: SchedulerKind) -> Self {
        Engine {
            backend: Backend::Seq(EventQueue::with_scheduler(kind)),
            events: 0,
            peak_queue: 0,
        }
    }

    /// An engine on the key-ordered backend, for one shard of a sharded
    /// world.
    pub(crate) fn keyed() -> Self {
        Engine {
            backend: Backend::Keyed(KeyedQueue::new()),
            events: 0,
            peak_queue: 0,
        }
    }

    /// Schedule `ev` at absolute time `at`. On the keyed backend the
    /// intrinsic key is derived from the event (`Deliver` must go through
    /// [`schedule_keyed`](Engine::schedule_keyed) instead).
    pub(crate) fn schedule(&mut self, at: SimTime, ev: Event) {
        match &mut self.backend {
            Backend::Seq(q) => {
                q.schedule(at, ev);
            }
            Backend::Keyed(q) => {
                let key = intrinsic_key(&ev);
                q.schedule(at, key, ev);
            }
        }
    }

    /// Schedule with an explicit intrinsic key (keyed backend only; the
    /// phy layer uses this for frame deliveries, and shard barriers use
    /// it to absorb cross-shard messages under their original keys).
    pub(crate) fn schedule_keyed(&mut self, at: SimTime, key: EventKey, ev: Event) {
        match &mut self.backend {
            Backend::Keyed(q) => q.schedule(at, key, ev),
            Backend::Seq(_) => panic!("schedule_keyed on the sequential backend"),
        }
    }

    /// Pop the next event at or before `horizon`, updating the peak-depth
    /// gauge (before the pop, so the popped event still counts as live)
    /// and the processed-event counter.
    pub(crate) fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        let popped = match &mut self.backend {
            Backend::Seq(q) => {
                self.peak_queue = self.peak_queue.max(q.len());
                q.pop_before(horizon)?
            }
            Backend::Keyed(q) => {
                self.peak_queue = self.peak_queue.max(q.len());
                q.pop_before(horizon)?
            }
        };
        self.events += 1;
        Some(popped)
    }

    /// Timestamp of the earliest pending event, if any.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Seq(q) => q.peek_time(),
            Backend::Keyed(q) => q.next_time(),
        }
    }

    /// Remove every pending event matching `pred` (keyed backend only;
    /// used when a node migrates between shards).
    pub(crate) fn drain_matching(
        &mut self,
        pred: impl FnMut(&Event) -> bool,
    ) -> Vec<(SimTime, EventKey, Event)> {
        match &mut self.backend {
            Backend::Keyed(q) => q.drain_matching(pred),
            Backend::Seq(_) => panic!("drain_matching on the sequential backend"),
        }
    }

    /// The current virtual time (time of the last popped event).
    pub(crate) fn now(&self) -> SimTime {
        match &self.backend {
            Backend::Seq(q) => q.now(),
            Backend::Keyed(q) => q.now(),
        }
    }

    /// Live events in the future-event list.
    pub(crate) fn len(&self) -> usize {
        match &self.backend {
            Backend::Seq(q) => q.len(),
            Backend::Keyed(q) => q.len(),
        }
    }

    /// Events ever scheduled (a workload measure).
    pub(crate) fn scheduled_total(&self) -> u64 {
        match &self.backend {
            Backend::Seq(q) => q.scheduled_total(),
            Backend::Keyed(q) => q.scheduled_total(),
        }
    }

    /// Calendar-scheduler statistics, when that backend is in use.
    pub(crate) fn calendar_stats(&self) -> Option<[u64; 7]> {
        match &self.backend {
            Backend::Seq(q) => q.calendar_stats(),
            Backend::Keyed(_) => None,
        }
    }
}

/// The DES engine is one of the two [`Substrate`]s (the real-time driver
/// in `manet-rt` is the other): "now" is the virtual clock and arming a
/// node's combined timer schedules a [`Event::NodeTimer`] on the
/// future-event list — the exact call path `resched_timer` always used,
/// now named by the trait.
impl Substrate for Engine {
    fn now(&self) -> SimTime {
        Engine::now(self)
    }

    fn arm_timer(&mut self, node: NodeId, at: SimTime) {
        self.schedule(at, Event::NodeTimer(node));
    }
}

/// A pluggable cross-cutting process registered on the engine.
///
/// Subsystems own their private state (RNG streams, schedules, cadences)
/// and react to events in their own [`SubEvent`] namespace; they reach the
/// shared simulation state through [`SubCtx`]. Lifecycle:
///
/// 1. [`seed_node`](Subsystem::seed_node) — once per node during world
///    construction, in node-id order (interleaved across subsystems so
///    initial-event insertion order is part of the deterministic contract);
/// 2. [`init`](Subsystem::init) — once after all nodes exist, in
///    registration order;
/// 3. [`handle`](Subsystem::handle) — for every popped event the subsystem
///    scheduled;
/// 4. [`after_event`](Subsystem::after_event) — after every dispatched
///    event, only when [`wants_post_hook`](Subsystem::wants_post_hook) —
///    a passive tap that must not schedule events or draw randomness;
/// 5. [`on_finish`](Subsystem::on_finish) — once when the world is
///    finished, before the result is assembled.
///
/// `Send` is part of the contract: the sharded world runs each shard's
/// subsystem replicas on its own OS thread.
pub(crate) trait Subsystem: Send {
    /// Per-node seeding during world construction.
    fn seed_node(&mut self, ctx: &mut SubCtx<'_>, id: NodeId) {
        let _ = (ctx, id);
    }

    /// One-time seeding after all nodes exist.
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        let _ = ctx;
    }

    /// Handle an event this subsystem scheduled.
    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let _ = (ctx, now, ev);
    }

    /// Opt into the per-event post-dispatch tap. Checked once at world
    /// construction, so passive observers cost nothing when absent.
    fn wants_post_hook(&self) -> bool {
        false
    }

    /// Passive post-dispatch tap (see [`Subsystem::wants_post_hook`]).
    /// Must only read simulation state —
    /// never schedule events or draw randomness — so instrumented and bare
    /// runs stay bit-identical.
    fn after_event(&mut self, core: &mut WorldCore, now: SimTime) {
        let _ = (core, now);
    }

    /// End-of-run hook, called before the result is assembled.
    fn on_finish(&mut self, core: &mut WorldCore) {
        let _ = core;
    }
}

/// What a [`Subsystem`] sees of the world: the shared core plus its own
/// registration id, so everything it schedules lands back in its own
/// namespace.
pub(crate) struct SubCtx<'a> {
    pub(crate) core: &'a mut WorldCore,
    pub(crate) owner: SubsystemId,
}

impl SubCtx<'_> {
    /// Schedule `ev` in the owning subsystem's namespace at time `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, ev: SubEvent) {
        self.core
            .engine
            .schedule(at, Event::Sub(SubKey::pack(self.owner, ev)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_key_round_trips_every_shape() {
        for owner in [0u16, 1, 7, u16::MAX] {
            for ev in [
                SubEvent::Tick,
                SubEvent::Node(NodeId(0)),
                SubEvent::Node(NodeId(u32::MAX)),
                SubEvent::NodeAlt(NodeId(42)),
            ] {
                let key = SubKey::pack(owner, ev);
                assert_eq!(key.owner(), owner);
                match (ev, key.event()) {
                    (SubEvent::Tick, SubEvent::Tick) => {}
                    (SubEvent::Node(a), SubEvent::Node(b)) => assert_eq!(a, b),
                    (SubEvent::NodeAlt(a), SubEvent::NodeAlt(b)) => assert_eq!(a, b),
                    (a, b) => panic!("shape changed: {a:?} -> {b:?}"),
                }
            }
        }
    }

    #[test]
    fn sub_arm_is_one_word() {
        assert_eq!(std::mem::size_of::<SubKey>(), 8);
    }
}
