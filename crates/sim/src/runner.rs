//! Parallel replication runner.
//!
//! A single world is inherently sequential (one global event order), but
//! replications and parameter-sweep points are independent — the paper runs
//! every scenario 33 times. This module fans replications out over a
//! `std::thread::scope` worker pool with deterministic per-replication
//! seeds, so the aggregate is identical whatever the thread count
//! (including 1).

use manet_metrics::{average_series, FileMetrics, MsgKind, Summary};
use manet_obs::ObsReport;

use crate::scenario::Scenario;
use crate::scn::Expect;
use crate::sharded::ShardedWorld;
use crate::world::{RunResult, World};

/// Derive the seed of replication `rep` from an experiment seed.
///
/// SplitMix-style mixing keeps neighbouring reps statistically independent.
pub fn replication_seed(base: u64, rep: usize) -> u64 {
    let mut s = base ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    s = manet_des::rng::splitmix64(&mut s);
    s
}

/// Run a corpus scenario at pinned replication count and seed and fold
/// the aggregates a `.scn` `expect` line records: an FNV-1a fold of the
/// per-replication fingerprints plus the summed traffic counters. The
/// single source of truth for what `expect` means — the golden corpus
/// test and `sweep --corpus` both compare against this.
pub fn measure_corpus(scenario: &Scenario, reps: usize, seed: u64, threads: usize) -> Expect {
    let results = run_replications(scenario, reps, seed, threads);
    expect_of(&results, reps, seed)
}

/// Fold already-run replications into the [`Expect`] they pin.
pub fn expect_of(results: &[RunResult], reps: usize, seed: u64) -> Expect {
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for fp in results.iter().map(|r| r.fingerprint()) {
        for b in fp.to_le_bytes() {
            fingerprint ^= b as u64;
            fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Expect {
        reps,
        seed,
        fingerprint,
        queries: results.iter().map(|r| r.queries_issued).sum(),
        answers: results.iter().map(|r| r.answers_received).sum(),
        frames: results.iter().map(|r| r.phy_total.frames_sent).sum(),
    }
}

/// Run `reps` replications of `scenario` on up to `threads` workers.
///
/// Results come back ordered by replication index regardless of which
/// worker finished first, and are identical for any thread count: each
/// replication's seed depends only on its index.
///
/// With `scenario.shards > 1` the parallelism budget moves *inside* each
/// run: replications execute one after another as [`ShardedWorld`]s, and
/// `threads` becomes the shard-worker count per run. Fanning replications
/// *and* shards out at once would oversubscribe the machine.
///
/// Lock-free by construction: worker `w` statically owns replications
/// `w, w + threads, w + 2·threads, …` and returns its results through its
/// join handle — no shared mutable state, no `Mutex` on the result path.
/// Static striding costs nothing here because replications of one scenario
/// take near-identical time, so work-stealing had nothing to steal.
/// Workers are only spawned for non-empty strides (`threads` is clamped to
/// `reps`), so `reps < threads` never parks idle OS threads.
pub fn run_replications(
    scenario: &Scenario,
    reps: usize,
    base_seed: u64,
    threads: usize,
) -> Vec<RunResult> {
    assert!(reps >= 1, "need at least one replication");
    if scenario.shards > 1 {
        return (0..reps)
            .map(|rep| {
                let seed = replication_seed(base_seed, rep);
                ShardedWorld::new(scenario.clone(), seed, scenario.shards).run(threads)
            })
            .collect();
    }
    // Every spawned worker gets a non-empty stride: worker w < threads
    // owns rep w at least. The pre-clamp `threads` plays no further role,
    // so reps=1, threads=8 spawns exactly one worker, not eight.
    let threads = threads.max(1).min(reps);

    let mut per_worker: Vec<Vec<RunResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    (w..reps)
                        .step_by(threads)
                        .map(|rep| {
                            let seed = replication_seed(base_seed, rep);
                            World::new(scenario.clone(), seed).run()
                        })
                        .collect::<Vec<RunResult>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    });

    // Interleave the strides back into replication order: rep came from
    // worker `rep % threads`, at position `rep / threads` of its chunk.
    let mut iters: Vec<_> = per_worker.iter_mut().map(|v| v.drain(..)).collect();
    (0..reps)
        .map(|rep| iters[rep % threads].next().expect("stride filled"))
        .collect()
}

/// Write one causal-trace artifact per replication of a cell into `dir`,
/// named `<cell>_rep<k>.trace.json` by replication index — deterministic
/// for any thread count because `run_replications` returns results in
/// replication order. Returns the written paths.
pub fn write_trace_artifacts(
    dir: &std::path::Path,
    cell: &str,
    results: &[RunResult],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(results.len());
    for (rep, r) in results.iter().enumerate() {
        let events = r.trace.causal_events();
        let doc = manet_obs::causal::artifact(&events);
        let path = dir.join(format!("{cell}_rep{rep}.trace.json"));
        std::fs::write(&path, doc.render())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Replication-aggregated metrics for one (scenario, algorithm) cell.
pub struct Aggregate {
    /// Averaged decreasing per-node connect-message curve (Figs 7–8).
    pub connects_sorted: Vec<f64>,
    /// Averaged decreasing per-node ping curve (Figs 9–10).
    pub pings_sorted: Vec<f64>,
    /// Averaged decreasing per-node query curve (Figs 11–12).
    pub queries_sorted: Vec<f64>,
    /// Merged per-file accumulators (Figs 5–6).
    pub files: FileMetrics,
    /// Across-replication summaries of scalar outcomes.
    pub queries_issued: Summary,
    /// Answers received per run.
    pub answers: Summary,
    /// Mean connections per member at the end of each run.
    pub avg_connections: Summary,
    /// Total frames transmitted per run.
    pub frames_sent: Summary,
    /// Mean energy spent per node and run, millijoules.
    pub energy_mj: Summary,
    /// Final role census summed over runs: [servent, initial, reserved,
    /// master, slave].
    pub roles: [usize; 5],
    /// Replications aggregated.
    pub reps: usize,
    /// Merged observability reports (empty when the sink was disabled).
    /// Folded in replication order — and `run_replications` re-interleaves
    /// worker strides back into that order — so the merged report is
    /// identical for any thread count.
    pub obs: ObsReport,
}

/// Aggregate a set of replications of the same scenario.
pub fn aggregate(results: &[RunResult], n_files: usize) -> Aggregate {
    assert!(!results.is_empty());
    let collect_sorted = |kind: MsgKind| -> Vec<f64> {
        let runs: Vec<Vec<u64>> = results
            .iter()
            .map(|r| r.counters.sorted_desc(kind, &r.members))
            .collect();
        average_series(&runs)
    };
    let mut files = FileMetrics::new(n_files);
    let mut roles = [0usize; 5];
    let mut obs = ObsReport::default();
    for r in results {
        files.merge(&r.file_metrics);
        for (acc, v) in roles.iter_mut().zip(r.roles.iter()) {
            *acc += v;
        }
        if r.obs.enabled() {
            obs.merge(&r.obs);
        }
    }
    let scalar = |f: &dyn Fn(&RunResult) -> f64| -> Summary {
        Summary::from_slice(&results.iter().map(f).collect::<Vec<_>>())
    };
    Aggregate {
        connects_sorted: collect_sorted(MsgKind::Connect),
        pings_sorted: collect_sorted(MsgKind::Ping),
        queries_sorted: collect_sorted(MsgKind::Query),
        files,
        queries_issued: scalar(&|r| r.queries_issued as f64),
        answers: scalar(&|r| r.answers_received as f64),
        avg_connections: scalar(&|r| r.avg_connections),
        frames_sent: scalar(&|r| r.phy_total.frames_sent as f64),
        energy_mj: scalar(&|r| {
            if r.energy_mj.is_empty() {
                0.0
            } else {
                r.energy_mj.iter().sum::<f64>() / r.energy_mj.len() as f64
            }
        }),
        roles,
        reps: results.len(),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::AlgoKind;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let a = replication_seed(42, 0);
        let b = replication_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, replication_seed(42, 0));
        assert_ne!(replication_seed(43, 0), a);
    }

    #[test]
    fn runner_returns_ordered_deterministic_results() {
        let s = Scenario::quick(15, AlgoKind::Regular, 60);
        let one_thread = run_replications(&s, 3, 5, 1);
        let many_threads = run_replications(&s, 3, 5, 4);
        assert_eq!(one_thread.len(), 3);
        for (a, b) in one_thread.iter().zip(&many_threads) {
            assert_eq!(a.events, b.events, "thread count must not matter");
            assert_eq!(a.queries_issued, b.queries_issued);
        }
    }

    #[test]
    fn stride_fairness_at_awkward_rep_counts() {
        // reps below, at, and above the worker count: every shape must
        // return exactly `reps` results in replication order, equal to the
        // single-threaded reference elementwise. reps=1 at threads=4 is the
        // degenerate case that used to spawn three empty-stride workers.
        let s = Scenario::quick(12, AlgoKind::Regular, 45);
        let threads = 4;
        for reps in [1, threads - 1, threads + 1] {
            let reference = run_replications(&s, reps, 77, 1);
            let striped = run_replications(&s, reps, 77, threads);
            assert_eq!(striped.len(), reps, "wrong result count for reps={reps}");
            for (rep, (a, b)) in reference.iter().zip(&striped).enumerate() {
                assert_eq!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "rep {rep} out of order or diverged at reps={reps}"
                );
            }
        }
    }

    #[test]
    fn sharded_scenarios_dispatch_through_the_same_api() {
        let mut sharded = Scenario::quick(20, AlgoKind::Regular, 60);
        sharded.shards = 2;
        let results = run_replications(&sharded, 2, 3, 1);
        assert_eq!(results.len(), 2);
        // Same seeds, same partition-invariant semantics on reruns.
        let again = run_replications(&sharded, 2, 3, 2);
        for (a, b) in results.iter().zip(&again) {
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn aggregate_summarizes() {
        let s = Scenario::quick(15, AlgoKind::Basic, 120);
        let results = run_replications(&s, 2, 9, 2);
        let agg = aggregate(&results, s.catalog.n_files as usize);
        assert_eq!(agg.reps, 2);
        assert_eq!(agg.connects_sorted.len(), s.n_members());
        assert!(agg.frames_sent.mean > 0.0);
        // Sorted series must be non-increasing.
        for w in agg.connects_sorted.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
