//! The routing-layer adapter: the AODV machine between phy and overlay.
//!
//! Translates [`FrameUp`] verbs into AODV inputs and AODV
//! [`Action`](manet_aodv::Action)s into [`SendDown`] / [`DeliverUp`]
//! verbs. Execution is depth-first and immediate: each action completes
//! (including any transmissions it plans and the RNG draws they make)
//! before the next action of the same batch runs — this ordering is part
//! of the deterministic contract.

use manet_aodv::{Action as AodvAction, Msg};
use manet_des::{NodeId, SimTime};
use p2p_core::AdversaryRole;

use crate::payload::AppMsg;
use crate::stack::{overlay, phy, DeliverUp, FrameUp, OverlayDown, SendDown};
use crate::trace::TraceEvent;
use crate::world::WorldCore;

/// A frame arrived from the phy layer at node `to`: feed it to AODV and
/// execute the resulting actions, then re-arm the node's timer.
///
/// If the frame carries an active causal context, a `Recv` span is
/// recorded here and stamped back onto the frame, so every AODV effect
/// (forwarding, RREPs, deliveries) chains off this node's reception.
pub(crate) fn frame_up(core: &mut WorldCore, now: SimTime, to: NodeId, frame: FrameUp) {
    let FrameUp { from, mut msg } = frame;
    if core.trace.enabled() && msg.ctx().is_active() {
        let recv = msg.ctx().child(core.trace.alloc_span());
        core.trace.record(
            now,
            TraceEvent::Recv {
                node: to,
                ctx: recv,
                from,
                frame: msg.kind(),
            },
        );
        msg.set_ctx(recv);
    }
    let actions = core.nodes[to.index()].routing.aodv.on_frame(now, from, msg);
    exec(core, now, to, actions);
    super::resched_timer(core, now, to);
}

/// Routing timer tick at node `id`.
pub(crate) fn tick(core: &mut WorldCore, now: SimTime, id: NodeId) {
    let actions = core.nodes[id.index()].routing.aodv.tick(now);
    exec(core, now, id, actions);
}

/// Execute an [`OverlayDown`] verb from the overlay layer at node `at`:
/// feed the payload into AODV and execute the resulting actions.
pub(crate) fn overlay_down(core: &mut WorldCore, now: SimTime, at: NodeId, verb: OverlayDown) {
    let aodv = &mut core.nodes[at.index()].routing.aodv;
    let acts = match verb {
        OverlayDown::Flood { ttl, msg, ctx } => {
            aodv.flood(now, ttl.max(1), AppMsg::Overlay(msg), ctx)
        }
        OverlayDown::Send { to, msg, ctx } => aodv.send(now, to, AppMsg::Overlay(msg), ctx),
        OverlayDown::Content { to, msg, ctx } => aodv.send(now, to, AppMsg::Content(msg), ctx),
    };
    exec(core, now, at, acts);
}

/// Does this action forward a payload *on behalf of someone else* — the
/// traffic a black/grey-hole swallows? Routed data originated elsewhere,
/// or a flood relay. The node's own originations always pass, so the
/// adversary keeps attracting routes instead of looking dead.
fn forwards_foreign_payload(action: &AodvAction<AppMsg>, at: NodeId) -> bool {
    match action {
        AodvAction::Unicast {
            msg: Msg::Data(d), ..
        } => d.src != at,
        AodvAction::Broadcast(Msg::Data(d)) => d.src != at,
        AodvAction::Broadcast(Msg::Flood(fl)) => fl.origin != at,
        _ => false,
    }
}

/// Rewrite an honest action batch through node `at`'s adversarial role.
/// Deterministic and RNG-free: honest nodes never reach this (the caller
/// checks), and the rewrite itself draws nothing from the world's RNG
/// streams.
fn subvert(
    core: &mut WorldCore,
    at: NodeId,
    actions: Vec<AodvAction<AppMsg>>,
) -> Vec<AodvAction<AppMsg>> {
    let adv = core.nodes[at.index()]
        .adversary
        .as_mut()
        .expect("caller checked");
    match adv.role {
        AdversaryRole::BlackHole => actions
            .into_iter()
            .filter(|a| !forwards_foreign_payload(a, at))
            .collect(),
        AdversaryRole::GreyHole { drop_nth } => actions
            .into_iter()
            .filter(|a| {
                if forwards_foreign_payload(a, at) {
                    adv.fwd_seen += 1;
                    !adv.fwd_seen.is_multiple_of(drop_nth as u64)
                } else {
                    true
                }
            })
            .collect(),
        AdversaryRole::RreqAmplifier { factor } => {
            let mut out = Vec::with_capacity(actions.len());
            for a in actions {
                if matches!(&a, AodvAction::Broadcast(Msg::Rreq(_))) {
                    for _ in 1..factor {
                        out.push(a.clone());
                    }
                }
                out.push(a);
            }
            out
        }
        // These roles act at the overlay/content layer, not here.
        AdversaryRole::QueryFlooder { .. } | AdversaryRole::Selfish => actions,
    }
}

/// Execute a batch of AODV actions at node `at`, in order, depth-first.
pub(crate) fn exec(
    core: &mut WorldCore,
    now: SimTime,
    at: NodeId,
    actions: Vec<AodvAction<AppMsg>>,
) {
    let actions = if core.nodes[at.index()].adversary.is_some() {
        subvert(core, at, actions)
    } else {
        actions
    };
    for action in actions {
        match action {
            AodvAction::Broadcast(msg) => phy::send_down(core, now, at, SendDown::Broadcast(msg)),
            AodvAction::Unicast { to, msg } => {
                phy::send_down(core, now, at, SendDown::Unicast { to, msg })
            }
            AodvAction::Deliver {
                src,
                hops,
                payload,
                ctx,
            } => overlay::deliver_up(
                core,
                now,
                at,
                DeliverUp {
                    src,
                    hops,
                    flood: false,
                    payload,
                    ctx,
                },
            ),
            AodvAction::DeliverFlood {
                origin,
                hops,
                payload,
                ctx,
            } => overlay::deliver_up(
                core,
                now,
                at,
                DeliverUp {
                    src: origin,
                    hops,
                    flood: true,
                    payload,
                    ctx,
                },
            ),
            AodvAction::Unreachable { dst, dropped, ctx } => {
                let _ = dropped; // payload loss is visible via metrics
                let mut cause = ctx;
                if core.trace.enabled() && ctx.is_active() {
                    cause = ctx.child(core.trace.alloc_span());
                    core.trace.record(
                        now,
                        TraceEvent::Unreachable {
                            node: at,
                            ctx: cause,
                            dst,
                        },
                    );
                }
                overlay::peer_unreachable(core, now, at, dst, cause);
            }
        }
    }
}
