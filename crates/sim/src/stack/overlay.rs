//! The overlay-layer adapter: the (re)configuration algorithm and the
//! query engine on top of routing.
//!
//! Receives [`DeliverUp`] verbs from the routing layer, feeds them to the
//! member's [`Reconfigurator`](p2p_core::Reconfigurator) or
//! [`QueryEngine`](p2p_content::QueryEngine), and pushes the resulting
//! traffic back down as [`OverlayDown`] verbs. Also owns the overlay
//! half of the power lifecycle (join, power-off, power-on) shared by the
//! churn and crash subsystems.

use manet_des::{NodeId, Rng, SimTime, TraceCtx};
use manet_obs::Severity;
use p2p_content::ContentMsg;
use p2p_core::{build_algo, OvAction};

use crate::payload::AppMsg;
use crate::stack::{routing, DeliverUp, OverlayDown};
use crate::trace::TraceEvent;
use crate::world::WorldCore;

/// The member joins the overlay: start the algorithm and the query
/// engine, then execute the first discovery traffic.
pub(crate) fn join(core: &mut WorldCore, now: SimTime, id: NodeId) {
    let node = &mut core.nodes[id.index()];
    if !node.phy.up {
        return;
    }
    let Some(member) = node.overlay.member.as_mut() else {
        return;
    };
    member.joined = true;
    let actions = member.algo.start(now);
    member.engine.start(now);
    core.trace.record(now, TraceEvent::Join { node: id });
    core.obs_record(now, Severity::Info, "join", || {
        format!("{id} joined the overlay")
    });
    exec_actions(core, now, id, actions, TraceCtx::NONE);
    core.trace_member_delta(now, id);
    super::resched_timer(core, now, id);
}

/// Overlay + query timer tick at node `id` (no-op unless joined).
pub(crate) fn tick(core: &mut WorldCore, now: SimTime, id: NodeId) {
    if !core.nodes[id.index()].is_joined() {
        return;
    }
    let ov_actions = {
        let member = core.nodes[id.index()]
            .overlay
            .member
            .as_mut()
            .expect("joined");
        member.algo.tick(now)
    };
    exec_actions(core, now, id, ov_actions, TraceCtx::NONE);
    let (sends, completed) = {
        let member = core.nodes[id.index()]
            .overlay
            .member
            .as_mut()
            .expect("joined");
        let neighbors = member.algo.neighbors();
        member.engine.tick(now, &neighbors)
    };
    if let Some(done) = completed {
        core.record_completed_query(id, &done);
    }
    exec_content(core, now, id, sends, TraceCtx::NONE);
    core.trace_member_delta(now, id);
}

/// An application payload reached node `at` (a [`DeliverUp`] verb from
/// the routing layer): count it, trace it, and hand it to the member's
/// overlay algorithm or query engine.
pub(crate) fn deliver_up(core: &mut WorldCore, now: SimTime, at: NodeId, verb: DeliverUp) {
    let DeliverUp {
        src,
        hops,
        flood,
        payload,
        ctx,
    } = verb;
    if !core.nodes[at.index()].is_joined() {
        return; // pure relays have no overlay presence
    }
    core.counters.record(at, payload.kind());
    if let Some(obs) = core.obs.on_mut() {
        obs.hists.observe(obs.hs_hops, hops as u64);
    }
    // The delivery becomes the causal parent of everything the overlay
    // does in response to this payload.
    let mut cause = TraceCtx::NONE;
    if core.trace.enabled() {
        if ctx.is_active() {
            cause = ctx.child(core.trace.alloc_span());
        }
        core.trace.record(
            now,
            TraceEvent::DeliverUp {
                node: at,
                from: src,
                kind: payload.kind(),
                hops,
                ctx: cause,
            },
        );
    }
    // A selfish member consumes service traffic without serving: incoming
    // queries and fetch requests are counted and traced as delivered (the
    // frame did arrive) but never reach the engine, so no hit or transfer
    // is ever produced. Its own queries and fetches still work.
    if let AppMsg::Content(cmsg) = &payload {
        let selfish = core.nodes[at.index()]
            .adversary
            .as_ref()
            .is_some_and(|a| matches!(a.role, p2p_core::AdversaryRole::Selfish));
        if selfish
            && matches!(
                cmsg,
                ContentMsg::Query { .. } | ContentMsg::FetchRequest { .. }
            )
        {
            return;
        }
    }
    match payload {
        AppMsg::Overlay(msg) => {
            let acts = {
                let m = core.nodes[at.index()]
                    .overlay
                    .member
                    .as_mut()
                    .expect("joined");
                if flood {
                    m.algo.on_flood(now, src, hops, &msg)
                } else {
                    m.algo.on_msg(now, src, hops, &msg)
                }
            };
            exec_actions(core, now, at, acts, cause);
        }
        AppMsg::Content(msg) => {
            let sends = {
                let m = core.nodes[at.index()]
                    .overlay
                    .member
                    .as_mut()
                    .expect("joined");
                let neighbors = m.algo.neighbors();
                m.engine.on_msg(now, src, hops, &msg, &neighbors)
            };
            exec_content(core, now, at, sends, cause);
        }
    }
    core.trace_member_delta(now, at);
    super::resched_timer(core, now, at);
}

/// The routing layer gave up reaching `dst`: tell the overlay algorithm.
/// `ctx` carries the causal context of the query whose traffic failed.
pub(crate) fn peer_unreachable(
    core: &mut WorldCore,
    now: SimTime,
    at: NodeId,
    dst: NodeId,
    ctx: TraceCtx,
) {
    if !core.nodes[at.index()].is_joined() {
        return;
    }
    let acts = {
        let m = core.nodes[at.index()]
            .overlay
            .member
            .as_mut()
            .expect("joined");
        m.algo.on_unreachable(now, dst)
    };
    exec_actions(core, now, at, acts, ctx);
}

/// The node's radio switches off (churn, crash): the overlay presence
/// dies with it. Local state is discarded (a rebooted app); peers
/// discover via failed pings.
pub(crate) fn power_off(core: &mut WorldCore, now: SimTime, id: NodeId) {
    // The replicated liveness toggle happens in every shard; the stack
    // itself is owner-only state.
    core.hot_up[id.index()] = false;
    if core.owns(id) {
        let node = &mut core.nodes[id.index()];
        node.phy.up = false;
        if let Some(m) = node.overlay.member.as_mut() {
            m.joined = false;
        }
    }
    core.trace.record(
        now,
        TraceEvent::PowerChange {
            node: id,
            up: false,
        },
    );
}

/// The node's radio comes back (churn recovery, crash restart): members
/// rebuild a fresh overlay instance from their stable seed — same
/// identity and files, blank protocol state — and rejoin immediately.
pub(crate) fn power_on(core: &mut WorldCore, now: SimTime, id: NodeId) {
    core.hot_up[id.index()] = true;
    if !core.owns(id) {
        return; // rebuild + rejoin is the owning shard's business
    }
    let scenario_algo = core.scenario.algo;
    let overlay_params = core.scenario.overlay;
    let node = &mut core.nodes[id.index()];
    node.phy.up = true;
    let actions = if let Some(m) = node.overlay.member.as_mut() {
        m.algo = build_algo(
            scenario_algo,
            id,
            overlay_params,
            m.qualifier,
            Rng::new(m.algo_seed),
        );
        m.joined = true;
        let actions = m.algo.start(now);
        m.engine.start(now);
        Some(actions)
    } else {
        None
    };
    if let Some(actions) = actions {
        exec_actions(core, now, id, actions, TraceCtx::NONE);
    }
    core.trace
        .record(now, TraceEvent::PowerChange { node: id, up: true });
}

/// Mint a fresh trace root for a spontaneous origination batch: called
/// when the overlay emits traffic with no active upstream cause (a timer
/// tick or locally originated query). One trace covers the whole batch.
fn mint(
    core: &mut WorldCore,
    now: SimTime,
    at: NodeId,
    cause: TraceCtx,
    label: &'static str,
    nonempty: bool,
) -> TraceCtx {
    if cause.is_active() || !nonempty || !core.trace.enabled() {
        return cause;
    }
    let root = TraceCtx::root(core.trace.alloc_trace(), core.trace.alloc_span());
    core.trace.record(
        now,
        TraceEvent::Origin {
            node: at,
            ctx: root,
            label,
        },
    );
    root
}

/// Execute a batch of overlay actions at node `at` by pushing
/// [`OverlayDown`] verbs into the routing layer, in order. `cause` is the
/// delivery (or unreachable report) that provoked the batch; when
/// inactive and the batch is non-empty, a fresh "reconfig" trace is
/// minted for it.
pub(crate) fn exec_actions(
    core: &mut WorldCore,
    now: SimTime,
    at: NodeId,
    actions: Vec<OvAction>,
    cause: TraceCtx,
) {
    let ctx = mint(core, now, at, cause, "reconfig", !actions.is_empty());
    for action in actions {
        match action {
            OvAction::Flood { ttl, msg } => {
                routing::overlay_down(core, now, at, OverlayDown::Flood { ttl, msg, ctx })
            }
            OvAction::Send { to, msg } => {
                routing::overlay_down(core, now, at, OverlayDown::Send { to, msg, ctx })
            }
        }
    }
}

/// Execute a batch of content-layer sends at node `at`, minting a trace
/// named after the batch's leading message when there is no upstream
/// cause (a locally originated query).
pub(crate) fn exec_content(
    core: &mut WorldCore,
    now: SimTime,
    at: NodeId,
    sends: Vec<p2p_content::CSend>,
    cause: TraceCtx,
) {
    let label = match sends.first().map(|s| &s.msg) {
        Some(ContentMsg::Query { .. }) => "query",
        Some(ContentMsg::QueryHit { .. }) => "query_hit",
        Some(ContentMsg::FetchRequest { .. }) => "fetch",
        Some(ContentMsg::FileTransfer { .. }) => "transfer",
        None => "content",
    };
    let ctx = mint(core, now, at, cause, label, !sends.is_empty());
    for send in sends {
        routing::overlay_down(
            core,
            now,
            at,
            OverlayDown::Content {
                to: send.to,
                msg: send.msg,
                ctx,
            },
        );
    }
}
