//! The per-node protocol stack: three explicit layers plus mobility.
//!
//! ```text
//!   overlay   Reconfigurator + QueryEngine      (crate::stack::overlay)
//!      ↑ DeliverUp            ↓ OverlayDown
//!   routing   AODV state machine                (crate::stack::routing)
//!      ↑ FrameUp              ↓ SendDown
//!   phy       radio stats + energy meter        (crate::stack::phy)
//! ```
//!
//! Layers communicate exclusively through the typed verbs defined here;
//! no layer reaches into another's fields. The adapters are free
//! functions over `&mut WorldCore` rather than methods on a borrowed
//! [`NodeStack`]: action execution is depth-first and immediate (an AODV
//! broadcast draws from the shared radio RNG *before* the next action
//! runs), so the adapters need the whole core — nodes, medium, RNG and
//! event queue — at every hop of the cascade.

pub(crate) mod overlay;
pub(crate) mod phy;
pub(crate) mod routing;

use manet_aodv::Aodv;
use manet_des::{NodeId, SimTime, Substrate, TraceCtx};
use manet_radio::{EnergyMeter, PhyStats};
use p2p_content::QueryEngine;
use p2p_core::{AdversaryRole, BoxedAlgo, Role};

use crate::payload::AppMsg;
use crate::world::WorldCore;

// ---------------------------------------------------------------------
// Inter-layer verbs
// ---------------------------------------------------------------------
// The verbs themselves live in the substrate-neutral `p2p-stack` crate —
// they are the *only* boundary either substrate (this DES or the
// real-time driver) may cross, so both hosts import the same types.
pub(crate) use p2p_stack::{DeliverUp, FrameUp, OverlayDown, SendDown, TimerReq};

// ---------------------------------------------------------------------
// Layers
// ---------------------------------------------------------------------

/// Physical layer: radio accounting and the energy budget.
pub(crate) struct PhyLayer {
    pub(crate) stats: PhyStats,
    pub(crate) energy: EnergyMeter,
    /// Radio on/off (churn, crashes, battery depletion).
    pub(crate) up: bool,
}

/// Routing layer: the AODV state machine and the combined-timer slot.
pub(crate) struct RoutingLayer {
    pub(crate) aodv: Aodv<AppMsg>,
    /// Earliest scheduled NodeTimer (MAX = none) — avoids event storms.
    pub(crate) timer_at: SimTime,
}

/// Overlay-member state (reconfiguration algorithm + query engine).
pub(crate) struct MemberState {
    pub(crate) algo: BoxedAlgo,
    pub(crate) engine: QueryEngine,
    pub(crate) joined: bool,
    /// Seed to rebuild the algorithm after churn or a crash restart.
    pub(crate) algo_seed: u64,
    pub(crate) qualifier: u32,
    /// Trace support: last observed neighbor set and role, for deltas.
    pub(crate) last_neighbors: Vec<NodeId>,
    pub(crate) last_role: Role,
}

/// Overlay layer: present only on members.
pub(crate) struct OverlayLayer {
    pub(crate) member: Option<MemberState>,
}

/// Adversarial behaviour attached to one node (honest nodes carry none).
///
/// The role drives deterministic interception at the layer it subverts:
/// the routing adapter consults it when executing AODV actions
/// (black/grey-holes, RREQ amplification), the overlay adapter when
/// delivering content payloads (selfish peers). Query flooding is driven
/// by a dedicated subsystem and needs no per-frame state here.
pub(crate) struct AdversaryState {
    pub(crate) role: AdversaryRole,
    /// Forwarded payload frames seen so far — the grey-hole's deterministic
    /// drop counter.
    pub(crate) fwd_seen: u64,
}

impl AdversaryState {
    pub(crate) fn new(role: AdversaryRole) -> Self {
        AdversaryState { role, fwd_seen: 0 }
    }
}

/// One node's full stack, phy to overlay. The node's mobility process and
/// its RNG stream live in `WorldCore`'s SoA arrays (`mobility`,
/// `mob_rngs`): hot, replicated-in-every-shard state, unlike the
/// owner-only protocol state here.
pub(crate) struct NodeStack {
    pub(crate) phy: PhyLayer,
    pub(crate) routing: RoutingLayer,
    pub(crate) overlay: OverlayLayer,
    /// `Some` only on misbehaving nodes; `None` keeps the honest path
    /// bit-identical to a world without the adversary subsystem.
    pub(crate) adversary: Option<AdversaryState>,
}

impl NodeStack {
    /// Is this node a member that currently participates in the overlay?
    pub(crate) fn is_joined(&self) -> bool {
        self.overlay.member.as_ref().is_some_and(|m| m.joined)
    }

    /// The earliest wake any layer of this stack needs, as a typed
    /// [`TimerReq`]: the minimum over the routing, overlay and query
    /// timers (overlay/query only while joined).
    ///
    /// `trace_on` gates the extra scan attributing the wake to a waiting
    /// route discovery, keeping the untraced hot path unchanged.
    pub(crate) fn timer_request(&self, trace_on: bool) -> TimerReq {
        let aodv_wake = self.routing.aodv.next_wake();
        let mut wake = aodv_wake;
        if let Some(m) = &self.overlay.member {
            if m.joined {
                wake = wake.min(m.algo.next_wake()).min(m.engine.next_wake());
            }
        }
        let ctx = if trace_on && wake == aodv_wake {
            self.routing.aodv.next_wake_ctx()
        } else {
            TraceCtx::NONE
        };
        TimerReq { at: wake, ctx }
    }
}

// ---------------------------------------------------------------------
// Combined-timer plumbing
// ---------------------------------------------------------------------

/// The node's combined protocol timer fired: tick routing, then (for
/// joined members) the overlay and query layers, then re-arm.
pub(crate) fn node_timer(core: &mut WorldCore, now: SimTime, id: NodeId) {
    {
        let node = &mut core.nodes[id.index()];
        node.routing.timer_at = SimTime::MAX;
        if !node.phy.up {
            return;
        }
    }
    routing::tick(core, now, id);
    overlay::tick(core, now, id);
    resched_timer(core, now, id);
}

/// Re-arm the node's combined timer from the stack's [`TimerReq`], unless
/// an earlier (or equal) timer is already pending or the wake lies past
/// the horizon.
pub(crate) fn resched_timer(core: &mut WorldCore, now: SimTime, id: NodeId) {
    let trace_on = core.trace.enabled();
    let TimerReq { at: wake, ctx } = {
        let node = &core.nodes[id.index()];
        if !node.phy.up {
            return;
        }
        node.timer_request(trace_on)
    };
    let horizon = core.horizon();
    if wake >= core.nodes[id.index()].routing.timer_at || wake > horizon {
        return;
    }
    let at = wake.max(now);
    core.engine.arm_timer(id, at);
    core.nodes[id.index()].routing.timer_at = at;
    if ctx.is_active() {
        let armed = ctx.child(core.trace.alloc_span());
        core.trace.record(
            now,
            crate::trace::TraceEvent::TimerArm {
                node: id,
                ctx: armed,
                at,
            },
        );
    }
}
