//! The phy-layer adapter: frame arrival and transmission.
//!
//! Owns all radio accounting (PHY stats, energy charges) and the only
//! contact point with the [`Medium`](manet_radio::Medium): the routing
//! layer hands down [`SendDown`] verbs, arriving frames are handed up as
//! [`FrameUp`] verbs. Energy charges borrow the medium's config in place —
//! no per-frame clone on the hot path.

use std::time::Instant;

use manet_des::{NodeId, SimTime};
use manet_mobility::Mobility;
use manet_obs::Severity;

use crate::engine::Event;
use crate::payload::AppMsg;
use crate::stack::{routing, FrameUp, SendDown};
use crate::trace::TraceEvent;
use crate::world::{WorldCore, SPAN_STRIDE};

/// A frame finished arriving at `to`: charge reception, then hand the
/// frame up to the routing layer (unless the radio is off or the battery
/// just died).
pub(crate) fn frame_arrival(core: &mut WorldCore, now: SimTime, to: NodeId, frame: FrameUp) {
    let FrameUp { from, msg } = frame;
    let depleted = {
        let cfg = core.medium.cfg();
        let node = &mut core.nodes[to.index()];
        if !node.phy.up || node.phy.energy.is_depleted() {
            return;
        }
        let bytes = msg.wire_size();
        node.phy.stats.on_receive(bytes);
        node.phy.energy.charge_rx(cfg, bytes);
        if node.phy.energy.is_depleted() {
            node.phy.up = false;
            true
        } else {
            false
        }
    };
    if depleted {
        // The sequential world mirrors depletion into the hot liveness
        // array. A sharded world must not: depletion is owner-local
        // knowledge, and `hot_up` carries only the replicated churn/crash
        // toggles so every shard reads the same value (the owner's
        // `phy.up` stays the authoritative gate on frame arrival).
        if core.shard.is_none() {
            core.hot_up[to.index()] = false;
        }
        core.obs_record(now, Severity::Warn, "depleted", || {
            format!("{to} battery depleted; radio off")
        });
        return;
    }
    routing::frame_up(core, now, to, FrameUp { from, msg });
}

/// Execute a [`SendDown`] verb from the routing layer at node `from`.
pub(crate) fn send_down(core: &mut WorldCore, now: SimTime, from: NodeId, verb: SendDown) {
    match verb {
        SendDown::Broadcast(msg) => broadcast(core, now, from, msg),
        SendDown::Unicast { to, msg } => unicast(core, now, from, to, msg),
    }
}

fn broadcast(core: &mut WorldCore, now: SimTime, from: NodeId, mut msg: manet_aodv::Msg<AppMsg>) {
    let bytes = msg.wire_size();
    {
        let cfg = core.medium.cfg();
        let node = &mut core.nodes[from.index()];
        if !node.phy.up || node.phy.energy.is_depleted() {
            return;
        }
        node.phy.stats.on_send(bytes);
        node.phy.energy.charge_tx(cfg, bytes);
    }
    // Record the Send span before the per-receiver clones, so every
    // reception of this frame chains off the same transmission.
    if core.trace.enabled() && msg.ctx().is_active() {
        let send = msg.ctx().child(core.trace.alloc_span());
        core.trace.record(
            now,
            TraceEvent::Send {
                node: from,
                ctx: send,
                to: None,
                frame: msg.kind(),
                bytes,
            },
        );
        msg.set_ctx(send);
    }
    let pos = core.mobility[from.index()].position(now);
    let faults = core.active_faults();
    // Sharded worlds draw loss/jitter from the *sender's* private radio
    // stream and key each delivery by (sender, receiver, tx sequence), so
    // the outcome is identical however the world is partitioned. Remote
    // receptions are staged as cross-shard frames for the barrier.
    if let Some(mut sh) = core.shard.take() {
        core.medium.plan_broadcast(
            &core.grid,
            from,
            pos,
            bytes,
            &mut sh.radio_rngs[from.index()],
            faults,
            &mut core.scratch,
        );
        // Fanout is planned by the sender's owning shard only, so the
        // merged histogram is partition-invariant. No span timing here:
        // wall-clock spans are a sequential-path profile.
        let fanout = core.scratch.receptions.len() as u64;
        if let Some(obs) = core.obs.on_mut() {
            obs.hists.observe(obs.hs_fanout, fanout);
        }
        let seq = sh.tx_seq[from.index()];
        sh.tx_seq[from.index()] += 1;
        for i in 0..core.scratch.receptions.len() {
            let r = core.scratch.receptions[i];
            if sh.owners[r.to.index()] as usize == sh.index {
                if r.lost {
                    core.nodes[r.to.index()].phy.stats.on_loss();
                } else {
                    core.engine.schedule_keyed(
                        now + r.after,
                        crate::engine::deliver_key(from, r.to, seq),
                        Event::Deliver {
                            to: r.to,
                            from,
                            msg: msg.clone(),
                        },
                    );
                }
            } else {
                sh.outbox.push(crate::sharded::CrossFrame {
                    dst: sh.owners[r.to.index()],
                    at: now + r.after,
                    to: r.to,
                    from,
                    seq,
                    msg: (!r.lost).then(|| msg.clone()),
                });
            }
        }
        core.shard = Some(sh);
        return;
    }
    // Stride-sampled span timing: only 1 in SPAN_STRIDE plans pays for an
    // `Instant` pair; the sample is extrapolated by its stride weight.
    let timed = core.obs.on_mut().is_some_and(|obs| obs.plan_timed());
    let t0 = timed.then(Instant::now);
    core.medium.plan_broadcast(
        &core.grid,
        from,
        pos,
        bytes,
        &mut core.radio_rng,
        faults,
        &mut core.scratch,
    );
    let elapsed = t0.map(|t0| t0.elapsed());
    let fanout = core.scratch.receptions.len() as u64;
    if let Some(obs) = core.obs.on_mut() {
        obs.hists.observe(obs.hs_fanout, fanout);
        if let Some(elapsed) = elapsed {
            obs.spans.add_weighted(obs.s_plan, elapsed, SPAN_STRIDE);
        }
    }
    // Indexed loop: the scratch buffer must stay borrowable while the
    // nodes and the queue are mutated (Reception is Copy).
    for i in 0..core.scratch.receptions.len() {
        let r = core.scratch.receptions[i];
        if r.lost {
            core.nodes[r.to.index()].phy.stats.on_loss();
        } else {
            core.engine.schedule(
                now + r.after,
                Event::Deliver {
                    to: r.to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }
}

fn unicast(
    core: &mut WorldCore,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    mut msg: manet_aodv::Msg<AppMsg>,
) {
    let bytes = msg.wire_size();
    {
        let cfg = core.medium.cfg();
        let node = &mut core.nodes[from.index()];
        if !node.phy.up || node.phy.energy.is_depleted() {
            return;
        }
        node.phy.stats.on_send(bytes);
        node.phy.energy.charge_tx(cfg, bytes);
    }
    // Stamp the Send span before fate is decided: a failed unicast hands
    // the stamped frame to AODV, linking the RERR/rediscovery fallout
    // under this transmission.
    if core.trace.enabled() && msg.ctx().is_active() {
        let send = msg.ctx().child(core.trace.alloc_span());
        core.trace.record(
            now,
            TraceEvent::Send {
                node: from,
                ctx: send,
                to: Some(to),
                frame: msg.kind(),
                bytes,
            },
        );
        msg.set_ctx(send);
    }
    let pos = core.mobility[from.index()].position(now);
    // A down receiver is indistinguishable from an out-of-range one. The
    // liveness read goes through the replicated hot array (identical to
    // `phy.up` in a sequential world) so every shard plans the same.
    let receiver_up = core.hot_up[to.index()];
    if let Some(mut sh) = core.shard.take() {
        let plan = if receiver_up {
            let faults = core.active_faults();
            core.medium.plan_unicast(
                &core.grid,
                pos,
                to,
                bytes,
                &mut sh.radio_rngs[from.index()],
                faults,
            )
        } else {
            None
        };
        let seq = sh.tx_seq[from.index()];
        sh.tx_seq[from.index()] += 1;
        match plan {
            Some(r) => {
                if sh.owners[to.index()] as usize == sh.index {
                    if r.lost {
                        core.nodes[to.index()].phy.stats.on_loss();
                    } else {
                        core.engine.schedule_keyed(
                            now + r.after,
                            crate::engine::deliver_key(from, to, seq),
                            Event::Deliver { to, from, msg },
                        );
                    }
                } else {
                    sh.outbox.push(crate::sharded::CrossFrame {
                        dst: sh.owners[to.index()],
                        at: now + r.after,
                        to,
                        from,
                        seq,
                        msg: (!r.lost).then_some(msg),
                    });
                }
                core.shard = Some(sh);
            }
            None => {
                // Restore the shard context first: the AODV fallout below
                // re-enters the phy layer for RERR traffic.
                core.shard = Some(sh);
                core.nodes[from.index()].phy.stats.on_link_break();
                let acts = core.nodes[from.index()]
                    .routing
                    .aodv
                    .on_unicast_failed(now, to, msg);
                routing::exec(core, now, from, acts);
            }
        }
        return;
    }
    let plan = if receiver_up {
        let faults = core.active_faults();
        core.medium
            .plan_unicast(&core.grid, pos, to, bytes, &mut core.radio_rng, faults)
    } else {
        None
    };
    match plan {
        Some(r) if !r.lost => {
            core.engine
                .schedule(now + r.after, Event::Deliver { to, from, msg });
        }
        Some(_) => {
            core.nodes[to.index()].phy.stats.on_loss();
        }
        None => {
            core.nodes[from.index()].phy.stats.on_link_break();
            core.obs_record(now, Severity::Debug, "link_break", || {
                format!("{from} lost unicast link to {to}")
            });
            let acts = core.nodes[from.index()]
                .routing
                .aodv
                .on_unicast_failed(now, to, msg);
            routing::exec(core, now, from, acts);
        }
    }
}
