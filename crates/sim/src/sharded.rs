//! Spatially sharded conservative-parallel execution.
//!
//! A [`ShardedWorld`] partitions the simulation area into `R` vertical
//! strip regions (seams on [`SpatialGrid`](manet_geom::SpatialGrid) cell
//! boundaries, see [`manet_geom::RegionMap`]) and runs one *replica* of
//! the world per region. Every replica holds the complete global state —
//! the grid, every node's mobility process, the churn/fault subsystem RNG
//! streams — and processes every subsystem event, so globally visible
//! state (positions, fault windows, up/down toggles) evolves identically
//! in all shards without any communication. What is *owned* per shard is
//! the expensive part: the protocol stacks (AODV + overlay + query
//! engine) of the nodes inside its region, and the radio traffic they
//! emit.
//!
//! # Conservative synchronization
//!
//! Radio propagation bounds how fast effects cross a region seam: a frame
//! transmitted at `t` is delivered no earlier than `t + L`, where the
//! lookahead `L` is the minimum one-byte serialization delay plus the hop
//! latency ([`RadioCfg::lookahead`](manet_radio::RadioCfg::lookahead)).
//! Each barrier round therefore:
//!
//! 1. absorbs cross-shard frames mailed in the previous round,
//! 2. agrees on the global minimum next-event time `gmin`,
//! 3. lets every shard pop events in `[gmin, min(gmin + L - 1, horizon)]`
//!    without hearing from its neighbours — nothing they send inside the
//!    window can arrive before it closes,
//! 4. mails frames addressed to nodes another shard owns (timestamped,
//!    with the sender's per-transmission sequence number).
//!
//! # Partition-invariant determinism
//!
//! The sequential world draws radio loss/jitter from one shared RNG in
//! global pop order, which no parallel execution can reproduce. Sharded
//! runs instead define their own partition-invariant semantics, *identical
//! for every shard count and thread count*:
//!
//! * per-sender radio RNG streams (`radio_rng.fork(node)`) advanced only
//!   by that node's transmissions, shipped with the node on migration;
//! * an intrinsic [`EventKey`](manet_des::EventKey) per event, so every
//!   shard breaks timestamp ties the same way regardless of insertion
//!   order (the [`KeyedQueue`](manet_des::KeyedQueue) backend);
//! * replicated subsystem processing, so the shared streams (churn,
//!   bursts, mobility) never fork.
//!
//! The gate is `sharded(R = N) == sharded(R = 1)` on the aggregate
//! metrics; speedup is measured against the true sequential path, whose
//! bit-exact fingerprints stay untouched.
//!
//! # Migration
//!
//! Mobility moves nodes across seams. Ownership is recomputed at *epoch*
//! boundaries (every `MIGRATION_EPOCH_TICKS` of simulated time, derived
//! from the globally agreed window limit so every shard decides
//! identically): the old owner drains the node's pending events
//! (timer/join/deliveries), ships them with the live stack, its radio RNG
//! and transmission sequence, and keeps a cheap husk in the slot — safe
//! because replicas never read stacks they do not own.

use manet_aodv::{Aodv, Msg};
use manet_des::{NodeId, Rng, SimTime};
use manet_radio::EnergyMeter;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::{deliver_key, Event};
use crate::errors::ScenarioError;
use crate::payload::AppMsg;
use crate::scenario::Scenario;
use crate::stack::{NodeStack, OverlayLayer, PhyLayer, RoutingLayer};
use crate::world::{RunResult, World, WorldCore};

/// Ownership is recomputed every 5 simulated seconds. Nodes move at
/// walking pace over tens-of-metres regions, so between epochs a migrated
/// node's traffic simply crosses the seam as ordinary cross-shard frames.
pub(crate) const MIGRATION_EPOCH_TICKS: u64 = 5_000_000;

/// Per-shard execution context, installed on [`WorldCore::shard`].
pub(crate) struct ShardCtx {
    /// This shard's index in `0..R`.
    pub(crate) index: usize,
    /// Current owner shard of every node (identical across shards).
    pub(crate) owners: Vec<u8>,
    /// Per-sender radio RNG streams (loss/jitter draws), advanced only by
    /// the owner of the sending node.
    pub(crate) radio_rngs: Vec<Rng>,
    /// Per-sender transmission sequence numbers, for intrinsic
    /// [`deliver_key`]s that every shard agrees on.
    pub(crate) tx_seq: Vec<u64>,
    /// Frames addressed to nodes other shards own, mailed at the barrier.
    pub(crate) outbox: Vec<CrossFrame>,
}

/// A radio reception crossing a shard seam.
pub(crate) struct CrossFrame {
    /// Receiving shard (owner of `to` at send time; stable until the mail
    /// is absorbed, because migration only happens after absorption).
    pub(crate) dst: u8,
    /// Absolute delivery time (at least lookahead past the send).
    pub(crate) at: SimTime,
    pub(crate) to: NodeId,
    pub(crate) from: NodeId,
    /// The sender's transmission sequence, reconstructing the delivery key.
    pub(crate) seq: u64,
    /// `None` when the medium lost the frame — the owner still counts the
    /// loss against the receiver's PHY stats.
    pub(crate) msg: Option<Msg<AppMsg>>,
}

/// A node changing owners at an epoch boundary.
struct MigRec {
    node: NodeId,
    stack: NodeStack,
    radio_rng: Rng,
    tx_seq: u64,
    /// Drained node-targeted events, re-scheduled verbatim (same time and
    /// intrinsic key) on the new owner.
    pending: Vec<(SimTime, manet_des::EventKey, Event)>,
}

/// `R` region replicas of one scenario, synchronized conservatively.
///
/// Same `run_replications` surface as [`World`]: build once, [`ShardedWorld::run`]
/// consumes it and reports a merged [`RunResult`]. Aggregate metrics are
/// identical for every shard count and thread count; `events` and
/// `peak_queue_depth` are execution measures and scale with `R`
/// (replicated subsystem events are counted once per shard).
pub struct ShardedWorld {
    shards: Vec<World>,
    lookahead_ticks: u64,
    horizon_ticks: u64,
}

impl ShardedWorld {
    /// Build `shards` region replicas of `scenario` from one seed.
    /// Panicking twin of [`try_new`](ShardedWorld::try_new).
    pub fn new(scenario: Scenario, seed: u64, shards: usize) -> Self {
        Self::try_new(scenario, seed, shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build `shards` region replicas of `scenario` from one seed. The
    /// scenario is validated with its `shards` field forced to the given
    /// count, so sharding-incompatible features (small-world sampling,
    /// zero-lookahead radio models) are rejected up front. Observability
    /// and causal tracing shard cleanly: each replica keeps an owner-gated
    /// sink and the per-shard reports fold at merge time.
    pub fn try_new(scenario: Scenario, seed: u64, shards: usize) -> Result<Self, ScenarioError> {
        let mut scenario = scenario;
        scenario.shards = shards.max(1);
        scenario.check()?;
        let r = scenario.shards;
        let lookahead = scenario.radio.lookahead();
        let horizon_ticks = scenario.duration.ticks();
        let mut worlds = Vec::with_capacity(r);
        for i in 0..r {
            let mut w = World::try_build(scenario.clone(), seed, None)?;
            let owners = compute_owners(&w.core, r);
            // Joins belong to the owner; every other initial event is
            // either replicated (subsystems) or per-node timers that do
            // not exist yet.
            w.core
                .engine
                .drain_matching(|e| matches!(e, Event::Join(n) if owners[n.index()] as usize != i));
            let n = w.core.nodes.len();
            let radio_rngs = (0..n).map(|j| w.core.radio_rng.fork(j as u64)).collect();
            w.core.shard = Some(Box::new(ShardCtx {
                index: i,
                owners,
                radio_rngs,
                tx_seq: vec![0; n],
                outbox: Vec::new(),
            }));
            // Subsystem (`Sub`) events are replicated in every shard; only
            // shard 0 counts them, so the merged `des.events_popped` sums
            // to a partition-invariant total.
            if i > 0 {
                if let Some(obs) = w.core.obs.on_mut() {
                    obs.count_sub = false;
                }
            }
            worlds.push(w);
        }
        Ok(ShardedWorld {
            shards: worlds,
            lookahead_ticks: lookahead.ticks().max(1),
            horizon_ticks,
        })
    }

    /// Execute to the horizon on up to `threads` OS threads (one per
    /// shard; `threads <= 1` runs the same barrier protocol in lockstep
    /// on the calling thread) and merge the per-shard results.
    pub fn run(mut self, threads: usize) -> RunResult {
        if threads <= 1 || self.shards.len() == 1 {
            self.run_lockstep();
        } else {
            self.run_threaded();
        }
        let results: Vec<RunResult> = self
            .shards
            .into_iter()
            .map(|mut w| {
                huskify_non_owned(&mut w);
                w.finish()
            })
            .collect();
        merge_results(results)
    }

    /// The barrier protocol on one thread: absorb, migrate-if-due, agree
    /// on `gmin`, pop the window, mail the outboxes.
    fn run_lockstep(&mut self) {
        let r = self.shards.len();
        let mut inboxes: Vec<Vec<CrossFrame>> = (0..r).map(|_| Vec::new()).collect();
        let mut last_epoch = 0u64;
        let mut prev_limit = 0u64;
        loop {
            for (i, w) in self.shards.iter_mut().enumerate() {
                absorb(w, std::mem::take(&mut inboxes[i]));
            }
            let epoch = prev_limit / MIGRATION_EPOCH_TICKS;
            if epoch > last_epoch {
                last_epoch = epoch;
                migrate_lockstep(&mut self.shards);
            }
            let Some(gmin) = self
                .shards
                .iter()
                .filter_map(|w| w.core.engine.next_time())
                .min()
            else {
                break;
            };
            if gmin.ticks() > self.horizon_ticks {
                break;
            }
            let limit = (gmin.ticks() + self.lookahead_ticks - 1).min(self.horizon_ticks);
            prev_limit = limit;
            for w in self.shards.iter_mut() {
                pop_window(w, SimTime::from_ticks(limit));
                let outbox = std::mem::take(&mut w.core.shard.as_mut().expect("sharded").outbox);
                for f in outbox {
                    inboxes[f.dst as usize].push(f);
                }
            }
        }
    }

    /// The same protocol with one OS thread per shard: mailboxes behind
    /// mutexes, next-event times in atomics, two `Barrier` waits per
    /// round (plus one inside a migration round). Every thread evaluates
    /// the same `gmin`/epoch predicates on the same published data, so
    /// all of them take the same barrier sequence — no coordinator.
    fn run_threaded(&mut self) {
        let r = self.shards.len();
        let lookahead = self.lookahead_ticks;
        let horizon = self.horizon_ticks;
        let mailboxes: Vec<Mutex<Vec<CrossFrame>>> =
            (0..r).map(|_| Mutex::new(Vec::new())).collect();
        let migboxes: Vec<Mutex<Vec<MigRec>>> = (0..r).map(|_| Mutex::new(Vec::new())).collect();
        let next_times: Vec<AtomicU64> = (0..r).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(r);
        let worlds = std::mem::take(&mut self.shards);
        self.shards = std::thread::scope(|scope| {
            let handles: Vec<_> = worlds
                .into_iter()
                .enumerate()
                .map(|(i, mut w)| {
                    let mailboxes = &mailboxes;
                    let migboxes = &migboxes;
                    let next_times = &next_times;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut last_epoch = 0u64;
                        let mut prev_limit = 0u64;
                        loop {
                            barrier.wait();
                            let mail = std::mem::take(&mut *mailboxes[i].lock().expect("mailbox"));
                            absorb(&mut w, mail);
                            let epoch = prev_limit / MIGRATION_EPOCH_TICKS;
                            if epoch > last_epoch {
                                last_epoch = epoch;
                                let new_owners = compute_owners(&w.core, r);
                                let moves = extract_departures(&mut w, &new_owners);
                                w.core.shard.as_mut().expect("sharded").owners = new_owners;
                                for (dst, rec) in moves {
                                    migboxes[dst].lock().expect("migbox").push(rec);
                                }
                                barrier.wait();
                                let mut recs =
                                    std::mem::take(&mut *migboxes[i].lock().expect("migbox"));
                                recs.sort_by_key(|m| m.node.0);
                                for rec in recs {
                                    install(&mut w, rec);
                                }
                            }
                            let nt = w.core.engine.next_time().map_or(u64::MAX, |t| t.ticks());
                            next_times[i].store(nt, Ordering::SeqCst);
                            barrier.wait();
                            let gmin = next_times
                                .iter()
                                .map(|a| a.load(Ordering::SeqCst))
                                .min()
                                .expect("at least one shard");
                            if gmin == u64::MAX || gmin > horizon {
                                break;
                            }
                            let limit = (gmin + lookahead - 1).min(horizon);
                            prev_limit = limit;
                            pop_window(&mut w, SimTime::from_ticks(limit));
                            let outbox =
                                std::mem::take(&mut w.core.shard.as_mut().expect("sharded").outbox);
                            for f in outbox {
                                mailboxes[f.dst as usize].lock().expect("mailbox").push(f);
                            }
                        }
                        w
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
    }
}

/// Current region owner of every node, from the replicated grid. Every
/// shard computes the identical map because grids never diverge.
fn compute_owners(core: &WorldCore, r: usize) -> Vec<u8> {
    assert!(r <= 256, "owners are u8");
    let map = core.grid.strip_regions(r);
    (0..core.nodes.len())
        .map(|i| {
            let pos = core
                .grid
                .position(i as u32)
                .expect("every node is on the grid");
            map.region_of(pos) as u8
        })
        .collect()
}

/// Schedule mailed-in receptions (or count mailed-in losses). Sorted so
/// insertion order is identical whatever order sender shards pushed; pop
/// order would agree anyway because (time, key) pairs are unique.
fn absorb(w: &mut World, mut mail: Vec<CrossFrame>) {
    mail.sort_by_key(|f| (f.at, f.from.0, f.to.0, f.seq));
    for f in mail {
        match f.msg {
            Some(msg) => w.core.engine.schedule_keyed(
                f.at,
                deliver_key(f.from, f.to, f.seq),
                Event::Deliver {
                    to: f.to,
                    from: f.from,
                    msg,
                },
            ),
            None => w.core.nodes[f.to.index()].phy.stats.on_loss(),
        }
    }
}

/// Pop and dispatch everything at or before `limit`.
///
/// Series sampling piggybacks on `Sub` events: subsystem events are
/// replicated with identical `(time, key)` pairs in every shard and each
/// shard pops in `(time, key)` order, so "the first `Sub` at or past a
/// cadence boundary" is the *same logical cut* in every shard, whatever
/// the shard or thread count. Sampling there (instead of after every
/// event, as the sequential path does) keeps the merged per-sample series
/// partition-invariant.
fn pop_window(w: &mut World, limit: SimTime) {
    while let Some((now, ev)) = w.core.engine.pop_before(limit) {
        let is_sub = matches!(ev, Event::Sub(_));
        w.dispatch(now, ev);
        w.run_post_hooks(now);
        if is_sub {
            w.core.obs_series_tick(now);
        }
    }
}

/// Extract every owned node that `new_owners` sends elsewhere.
fn extract_departures(w: &mut World, new_owners: &[u8]) -> Vec<(usize, MigRec)> {
    let index = w.core.shard.as_ref().expect("sharded").index;
    let mut moves = Vec::new();
    for (i, &new_owner) in new_owners.iter().enumerate() {
        let old = w.core.shard.as_ref().expect("sharded").owners[i] as usize;
        if old == index && new_owner as usize != index {
            moves.push((new_owner as usize, extract(w, NodeId(i as u32))));
        }
    }
    moves
}

/// Lockstep migration: recompute owners once, move records directly.
fn migrate_lockstep(shards: &mut [World]) {
    let r = shards.len();
    let new_owners = compute_owners(&shards[0].core, r);
    let mut moves: Vec<(usize, MigRec)> = Vec::new();
    for w in shards.iter_mut() {
        moves.extend(extract_departures(w, &new_owners));
        w.core.shard.as_mut().expect("sharded").owners = new_owners.clone();
    }
    moves.sort_by_key(|(_, m)| m.node.0);
    for (dst, rec) in moves {
        install(&mut shards[dst], rec);
    }
}

/// Pull a node's live state out of its (old) owner, leaving a husk.
fn extract(w: &mut World, id: NodeId) -> MigRec {
    let pending = w.core.engine.drain_matching(|e| match e {
        Event::NodeTimer(n) | Event::Join(n) => *n == id,
        Event::Deliver { to, .. } => *to == id,
        Event::Sub(_) => false,
    });
    let husk = husk_stack(id, &w.core.scenario);
    let stack = std::mem::replace(&mut w.core.nodes[id.index()], husk);
    let sh = w.core.shard.as_mut().expect("sharded");
    MigRec {
        node: id,
        stack,
        radio_rng: std::mem::replace(&mut sh.radio_rngs[id.index()], Rng::new(0)),
        tx_seq: sh.tx_seq[id.index()],
        pending,
    }
}

/// Install a migrated node on its new owner. Drained events re-schedule
/// under their original (time, key) pairs — all strictly past the last
/// closed window, hence in this queue's future.
fn install(w: &mut World, rec: MigRec) {
    w.core.nodes[rec.node.index()] = rec.stack;
    let sh = w.core.shard.as_mut().expect("sharded");
    sh.radio_rngs[rec.node.index()] = rec.radio_rng;
    sh.tx_seq[rec.node.index()] = rec.tx_seq;
    for (at, key, ev) in rec.pending {
        w.core.engine.schedule_keyed(at, key, ev);
    }
}

/// A placeholder stack for a slot this shard does not own: radio down,
/// zero stats, unlimited (hence zero-spend) battery, no membership. Never
/// read during the run; at finish it contributes nothing to any metric.
fn husk_stack(id: NodeId, scenario: &Scenario) -> NodeStack {
    NodeStack {
        phy: PhyLayer {
            stats: Default::default(),
            energy: EnergyMeter::unlimited(),
            up: false,
        },
        routing: RoutingLayer {
            aodv: Aodv::new(id, scenario.aodv),
            timer_at: SimTime::MAX,
        },
        overlay: OverlayLayer { member: None },
        adversary: None,
    }
}

/// Reduce every non-owned slot to a husk so the per-shard
/// [`RunResult`] counts owned nodes only.
fn huskify_non_owned(w: &mut World) {
    for i in 0..w.core.nodes.len() {
        let id = NodeId(i as u32);
        if !w.core.owns(id) {
            w.core.nodes[i] = husk_stack(id, &w.core.scenario);
        }
    }
}

/// Merge per-shard partial results (owned-node metrics each) into the
/// global result. Additive metrics sum; `members`/`smallworld` come from
/// shard 0 (identical or empty everywhere); `events` sums and
/// `peak_queue_depth` maxes — both execution measures that legitimately
/// depend on the shard count. Obs reports fold owner-gated counters and
/// identically-cut series ([`ObsReport::merge_shard`]); trace logs fold
/// with id offsetting ([`TraceLog::merge_offset`]) — both in shard index
/// order, so the merged artifacts are thread-count invariant.
fn merge_results(results: Vec<RunResult>) -> RunResult {
    let mut it = results.into_iter();
    let mut acc = it.next().expect("at least one shard");
    for r in it {
        acc.obs.merge_shard(&r.obs);
        acc.trace.merge_offset(&r.trace);
        acc.counters.merge(&r.counters);
        acc.file_metrics.merge(&r.file_metrics);
        acc.phy_total.merge(&r.phy_total);
        for (a, b) in acc.energy_mj.iter_mut().zip(&r.energy_mj) {
            *a += *b;
        }
        for (a, b) in acc.roles.iter_mut().zip(&r.roles) {
            *a += *b;
        }
        acc.conns_established += r.conns_established;
        acc.conns_closed += r.conns_closed;
        acc.queries_issued += r.queries_issued;
        acc.answers_received += r.answers_received;
        acc.events += r.events;
        acc.peak_queue_depth = acc.peak_queue_depth.max(r.peak_queue_depth);
        // Each shard divided its owned members' connection count by the
        // full member census, so the partial means add up exactly.
        acc.avg_connections += r.avg_connections;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::AlgoKind;

    #[test]
    fn single_shard_runs_to_completion() {
        let s = Scenario::quick(20, AlgoKind::Regular, 60);
        let r = ShardedWorld::new(s, 7, 1).run(1);
        assert!(r.events > 0);
        assert_eq!(r.members.len(), 15);
    }

    #[test]
    fn sharding_accepts_obs_and_tracing_but_not_smallworld() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 60);
        s.obs.enabled = true;
        s.trace_capacity = 100;
        assert!(ShardedWorld::try_new(s, 1, 2).is_ok());
        let mut s = Scenario::quick(20, AlgoKind::Regular, 60);
        s.smallworld_sample = Some(manet_des::SimDuration::from_secs(10));
        assert!(matches!(
            ShardedWorld::try_new(s, 1, 2),
            Err(ScenarioError::Sharding(_))
        ));
    }

    #[test]
    fn only_shard_zero_counts_replicated_sub_events() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 60);
        s.obs.enabled = true;
        let sharded = ShardedWorld::new(s, 7, 3);
        for (i, w) in sharded.shards.iter().enumerate() {
            let obs = w.core.obs.get().expect("obs on");
            assert_eq!(obs.count_sub, i == 0, "shard {i}");
        }
    }

    #[test]
    fn owners_cover_every_node() {
        let s = Scenario::quick(40, AlgoKind::Regular, 30);
        let sharded = ShardedWorld::new(s, 3, 4);
        for w in &sharded.shards {
            let sh = w.core.shard.as_ref().expect("sharded");
            assert_eq!(sh.owners.len(), 40);
            assert!(sh.owners.iter().all(|&o| (o as usize) < 4));
        }
        // All four replicas agree on the initial partition.
        let first = sharded.shards[0]
            .core
            .shard
            .as_ref()
            .unwrap()
            .owners
            .clone();
        for w in &sharded.shards[1..] {
            assert_eq!(w.core.shard.as_ref().unwrap().owners, first);
        }
    }
}
