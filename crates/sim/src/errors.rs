//! Typed scenario-validation errors.
//!
//! [`Scenario::check`](crate::Scenario::check) and
//! [`FaultPlan::check`](crate::FaultPlan::check) return these instead of
//! panicking, so harnesses building scenarios from user input (CLI sweeps,
//! config files) can report the offending parameter. The panicking
//! `validate()` wrappers remain for test and assertion paths; their
//! messages are the `Display` forms below.

/// Why a [`Scenario`](crate::Scenario) cannot be simulated.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// Fewer than two nodes — no network to speak of.
    TooFewNodes {
        /// The configured node count.
        n_nodes: usize,
    },
    /// The area side is zero, negative, or NaN.
    NonPositiveArea {
        /// The configured side length, metres.
        side: f64,
    },
    /// The member fraction lies outside `[0, 1]`.
    MemberFractionOutOfRange {
        /// The configured fraction.
        fraction: f64,
    },
    /// `round(n_nodes * member_fraction)` is zero — nobody would join.
    NoMembers,
    /// The simulated duration is zero.
    ZeroDuration,
    /// The position-refresh period is zero (mobility would never settle).
    ZeroPositionRefresh,
    /// The qualifier range is inverted (`lo > hi`).
    QualifierRangeInverted {
        /// Lower bound.
        lo: u32,
        /// Upper bound.
        hi: u32,
    },
    /// The radio configuration is out of domain.
    Radio(String),
    /// The overlay parameters are internally inconsistent.
    Overlay(String),
    /// The routing configuration is out of domain.
    Routing(String),
    /// The file catalogue is out of domain.
    Catalog(String),
    /// A churn dwell-time mean is zero, negative, or NaN.
    NonPositiveChurnDwell {
        /// Mean uptime, seconds.
        mean_uptime: f64,
        /// Mean downtime, seconds.
        mean_downtime: f64,
    },
    /// Group mobility with zero groups.
    NoGroups,
    /// A mobility maximum speed is zero, negative, or NaN.
    NonPositiveSpeed {
        /// The configured speed, m/s.
        speed: f64,
    },
    /// The waypoint maximum pause is negative or NaN.
    NegativePause {
        /// The configured pause, seconds.
        pause: f64,
    },
    /// Group mobility with a non-positive (or NaN) group radius.
    NonPositiveGroupRadius {
        /// The configured radius, metres.
        radius: f64,
    },
    /// More mobility groups than nodes — some groups would be empty.
    GroupsExceedNodes {
        /// The configured group count.
        n_groups: usize,
        /// Nodes in the world.
        n_nodes: usize,
    },
    /// The battery budget is zero, negative, or NaN.
    NonPositiveBattery {
        /// The configured budget, millijoules.
        mj: f64,
    },
    /// An adversary names a node outside the world.
    AdversaryOutOfRange {
        /// The adversarial node.
        node: u32,
        /// Nodes in the world.
        n_nodes: usize,
    },
    /// Two adversary entries name the same node.
    DuplicateAdversary {
        /// The node named twice.
        node: u32,
    },
    /// An overlay-layer adversary (selfish, query-flooder) sits on a node
    /// that is not a p2p member.
    AdversaryNotMember {
        /// The adversarial node.
        node: u32,
        /// Member count; member node ids are `0..n_members`.
        n_members: usize,
    },
    /// A grey-hole with `drop_nth < 2` (that is a black-hole).
    GreyHoleDropTooSmall {
        /// The configured drop modulus.
        drop_nth: u32,
    },
    /// An RREQ amplifier factor outside `2..=8`.
    AmplifierFactorOutOfRange {
        /// The configured factor.
        factor: u8,
    },
    /// A query-flooder with a zero period.
    FlooderPeriodZero {
        /// The flooding node.
        node: u32,
    },
    /// The observability sample period is negative.
    NegativeObsSamplePeriod {
        /// The configured period, seconds.
        secs: f64,
    },
    /// The fault plan's base loss is not a probability.
    LossNotProbability {
        /// The configured loss.
        prob: f64,
    },
    /// A burst dwell-time mean is zero, negative, or NaN.
    BurstDwellNotPositive {
        /// Mean quiet dwell, seconds.
        mean_quiet: f64,
        /// Mean burst dwell, seconds.
        mean_burst: f64,
    },
    /// The burst loss is not a probability.
    BurstLossNotProbability {
        /// The configured loss.
        prob: f64,
    },
    /// A scripted crash names a node outside the world.
    CrashTargetOutOfRange {
        /// The crash target.
        node: u32,
        /// Nodes in the world.
        n_nodes: usize,
    },
    /// A crash restart delay is zero.
    ZeroRestartDelay {
        /// The crash target.
        node: u32,
    },
    /// The link-flap period is zero.
    FlapPeriodZero,
    /// The flap down-time is not shorter than the period.
    FlapDownNotShorter,
    /// The flap down-time is zero.
    FlapDownZero,
    /// The jitter period is zero.
    JitterPeriodZero,
    /// The jitter width is not shorter than the period.
    JitterWidthNotShorter,
    /// The jitter width is zero.
    JitterWidthZero,
    /// The scenario cannot run spatially sharded (`shards > 1`).
    Sharding(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ScenarioError::*;
        match self {
            TooFewNodes { n_nodes } => write!(f, "need at least two nodes, got {n_nodes}"),
            NonPositiveArea { side } => write!(f, "area side must be positive, got {side}"),
            MemberFractionOutOfRange { fraction } => {
                write!(f, "member fraction must lie in [0, 1], got {fraction}")
            }
            NoMembers => write!(f, "at least one member required"),
            ZeroDuration => write!(f, "simulated duration must be positive"),
            ZeroPositionRefresh => write!(f, "position refresh must be positive"),
            QualifierRangeInverted { lo, hi } => {
                write!(f, "qualifier range is inverted: {lo} > {hi}")
            }
            Radio(msg) => write!(f, "radio: {msg}"),
            Overlay(msg) => write!(f, "overlay: {msg}"),
            Routing(msg) => write!(f, "routing: {msg}"),
            Catalog(msg) => write!(f, "catalog: {msg}"),
            NonPositiveChurnDwell {
                mean_uptime,
                mean_downtime,
            } => write!(
                f,
                "churn dwell means must be positive, got up {mean_uptime} / down {mean_downtime}"
            ),
            NoGroups => write!(f, "need at least one group"),
            NonPositiveSpeed { speed } => {
                write!(f, "mobility max speed must be positive, got {speed}")
            }
            NegativePause { pause } => {
                write!(f, "waypoint max pause must be non-negative, got {pause}")
            }
            NonPositiveGroupRadius { radius } => {
                write!(f, "group radius must be positive, got {radius}")
            }
            GroupsExceedNodes { n_groups, n_nodes } => write!(
                f,
                "{n_groups} groups over {n_nodes} nodes leaves empty groups"
            ),
            NonPositiveBattery { mj } => {
                write!(f, "battery budget must be positive, got {mj} mJ")
            }
            AdversaryOutOfRange { node, n_nodes } => {
                write!(f, "adversary names node {node} but the world has {n_nodes}")
            }
            DuplicateAdversary { node } => {
                write!(f, "node {node} has more than one adversarial role")
            }
            AdversaryNotMember { node, n_members } => write!(
                f,
                "adversary on node {node} needs p2p membership (members are 0..{n_members})"
            ),
            GreyHoleDropTooSmall { drop_nth } => write!(
                f,
                "grey-hole drop_nth must be at least 2, got {drop_nth} (use black-hole)"
            ),
            AmplifierFactorOutOfRange { factor } => {
                write!(f, "rreq-amplifier factor must lie in 2..=8, got {factor}")
            }
            FlooderPeriodZero { node } => {
                write!(f, "query-flooder period must be positive (node {node})")
            }
            NegativeObsSamplePeriod { secs } => {
                write!(f, "negative obs sample period: {secs}")
            }
            LossNotProbability { prob } => {
                write!(f, "fault base loss must be a probability, got {prob}")
            }
            BurstDwellNotPositive {
                mean_quiet,
                mean_burst,
            } => write!(
                f,
                "burst dwell means must be positive, got quiet {mean_quiet} / burst {mean_burst}"
            ),
            BurstLossNotProbability { prob } => {
                write!(f, "burst loss must be a probability, got {prob}")
            }
            CrashTargetOutOfRange { node, n_nodes } => {
                write!(f, "crash names node {node} but the world has {n_nodes}")
            }
            ZeroRestartDelay { node } => {
                write!(f, "restart_after must be positive (crash of node {node})")
            }
            FlapPeriodZero => write!(f, "flap period must be positive"),
            FlapDownNotShorter => write!(f, "flap down-time must be shorter than the period"),
            FlapDownZero => write!(f, "flap down-time must be positive"),
            JitterPeriodZero => write!(f, "jitter period must be positive"),
            JitterWidthNotShorter => write!(f, "jitter width must be shorter than the period"),
            JitterWidthZero => write!(f, "jitter width must be positive"),
            Sharding(msg) => write!(f, "sharding: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
