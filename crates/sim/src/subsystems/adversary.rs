//! The query-flooder adversary: a subsystem injecting synthetic queries.
//!
//! Black/grey-holes, RREQ amplifiers and selfish peers act *inside* the
//! per-node stack (they rewrite traffic the honest protocol produced);
//! query flooding instead needs its own clock — a flooding member emits
//! bursts on a fixed period regardless of what its query engine is doing.
//! That makes it a [`Subsystem`] like churn or the fault drivers, with
//! the crucial difference that it draws **no randomness**: periods are
//! fixed and targets round-robin the catalogue, so registering the
//! subsystem perturbs nothing beyond the traffic it injects (and worlds
//! without flooders never register it at all).

use manet_des::{NodeId, SimDuration, SimTime, TraceCtx};
use p2p_content::{ContentMsg, FileId, QueryId};

use crate::engine::{SubCtx, SubEvent, Subsystem};
use crate::stack::OverlayDown;

/// Flooder query sequence numbers start here, far above anything a real
/// [`QueryEngine`](p2p_content::QueryEngine) issues (engines count up
/// from zero), so synthetic query ids never collide with honest ones.
const FLOOD_SEQ_BASE: u32 = 0x8000_0000;

/// Drives every `query-flooder` adversary of the scenario.
pub(crate) struct QueryFlooderDriver {
    /// `(node, period, queries injected so far)` per flooder.
    flooders: Vec<(NodeId, SimDuration, u32)>,
}

impl QueryFlooderDriver {
    pub(crate) fn new(flooders: Vec<(NodeId, SimDuration)>) -> Self {
        QueryFlooderDriver {
            flooders: flooders.into_iter().map(|(n, p)| (n, p, 0)).collect(),
        }
    }
}

impl Subsystem for QueryFlooderDriver {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        for &(node, period, _) in &self.flooders {
            ctx.schedule(SimTime::ZERO + period, SubEvent::Node(node));
        }
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Node(id) = ev else { return };
        let slot = self
            .flooders
            .iter_mut()
            .find(|(n, _, _)| *n == id)
            .expect("flooder event for unregistered node");
        let period = slot.1;
        ctx.schedule(now + period, SubEvent::Node(id));
        // In a sharded world the burst counter is derived from the clock
        // (floods fire at exact period multiples) instead of the emission
        // count: replicated shards skip emissions for nodes they don't
        // own, and a migrating flooder must not reset its sequence — time
        // is the one counter every shard agrees on.
        if ctx.core.shard.is_some() {
            if ctx.core.owns(id) {
                // k-th firing (at k * period) uses sequence k - 1, matching
                // the sequential counter when no emission was ever skipped.
                slot.2 = (now.ticks() / period.ticks().max(1)).saturating_sub(1) as u32;
            } else {
                return;
            }
        }
        let core = &mut *ctx.core;
        let node = &core.nodes[id.index()];
        if !node.phy.up || !node.is_joined() {
            return; // powered-off or not-yet-joined flooders stay quiet
        }
        let neighbors = node
            .overlay
            .member
            .as_ref()
            .expect("joined member")
            .algo
            .neighbors();
        if neighbors.is_empty() {
            return;
        }
        let seq = FLOOD_SEQ_BASE + slot.2;
        slot.2 += 1;
        let n_files = core.scenario.catalog.n_files.max(1);
        let msg = ContentMsg::Query {
            id: QueryId { origin: id, seq },
            file: FileId((slot.2 % n_files as u32) as u16),
            ttl: core.scenario.query.ttl,
            p2p_hops: 0,
        };
        for to in neighbors {
            crate::stack::routing::overlay_down(
                core,
                now,
                id,
                OverlayDown::Content {
                    to,
                    msg: msg.clone(),
                    ctx: TraceCtx::NONE,
                },
            );
        }
        crate::stack::resched_timer(core, now, id);
    }
}
