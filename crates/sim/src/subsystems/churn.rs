//! Node churn as a subsystem: members alternate up/down with
//! exponentially distributed dwell times on a dedicated RNG stream.

use manet_des::{Rng, SimDuration, SimTime};
use manet_obs::Severity;

use crate::engine::{SubCtx, SubEvent, Subsystem};
use crate::scenario::ChurnCfg;
use crate::stack;

/// The churn process. `Node(id)` events switch a member off,
/// `NodeAlt(id)` events bring it back.
pub(crate) struct ChurnDriver {
    cfg: ChurnCfg,
    rng: Rng,
}

impl ChurnDriver {
    pub(crate) fn new(cfg: ChurnCfg, rng: Rng) -> Self {
        ChurnDriver { cfg, rng }
    }
}

impl Subsystem for ChurnDriver {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        // One initial up-dwell per member, in member order.
        for i in 0..ctx.core.members.len() {
            let id = ctx.core.members[i];
            let up = self.rng.exponential(self.cfg.mean_uptime);
            ctx.schedule(SimTime::from_secs_f64(up), SubEvent::Node(id));
        }
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        match ev {
            SubEvent::Node(id) => {
                // The overlay presence dies with the radio; peers discover
                // via failed pings.
                stack::overlay::power_off(ctx.core, now, id);
                ctx.core.obs_record(now, Severity::Warn, "churn", || {
                    format!("{id} churned down")
                });
                let down = self.rng.exponential(self.cfg.mean_downtime);
                ctx.schedule(
                    now + SimDuration::from_secs_f64(down),
                    SubEvent::NodeAlt(id),
                );
            }
            SubEvent::NodeAlt(id) => {
                stack::overlay::power_on(ctx.core, now, id);
                ctx.core
                    .obs_record(now, Severity::Info, "churn", || format!("{id} churned up"));
                let up = self.rng.exponential(self.cfg.mean_uptime);
                ctx.schedule(now + SimDuration::from_secs_f64(up), SubEvent::Node(id));
                if ctx.core.owns(id) {
                    stack::resched_timer(ctx.core, now, id);
                }
            }
            SubEvent::Tick => {}
        }
    }
}
