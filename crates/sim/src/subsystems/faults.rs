//! The fault plan as subsystems: loss bursts, scripted crashes, link
//! flaps and delay spikes — each an independent process with its own
//! event namespace. The composed impairment for a transmission is read
//! from the shared [`LinkState`](crate::world::LinkState) flags by
//! [`WorldCore::active_faults`](crate::world::WorldCore::active_faults).

use manet_des::{Rng, SimDuration, SimTime};
use manet_obs::Severity;

use crate::engine::{SubCtx, SubEvent, Subsystem};
use crate::faults::{BurstCfg, CrashEvent, JitterSpikes, LinkFlaps};
use crate::stack;

/// Two-state (Gilbert-style) burst modulation of the extra packet loss.
pub(crate) struct LossBursts {
    burst: BurstCfg,
    rng: Rng,
}

impl LossBursts {
    pub(crate) fn new(burst: BurstCfg, rng: Rng) -> Self {
        LossBursts { burst, rng }
    }
}

impl Subsystem for LossBursts {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        let quiet = self.rng.exponential(self.burst.mean_quiet);
        ctx.schedule(SimTime::from_secs_f64(quiet), SubEvent::Tick);
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Tick = ev else { return };
        ctx.core.link_state.burst_on = !ctx.core.link_state.burst_on;
        let on = ctx.core.link_state.burst_on;
        ctx.core.obs_record(now, Severity::Warn, "fault", || {
            format!("loss burst {}", if on { "started" } else { "ended" })
        });
        let mean = if on {
            self.burst.mean_burst
        } else {
            self.burst.mean_quiet
        };
        let dwell = self.rng.exponential(mean);
        ctx.schedule(now + SimDuration::from_secs_f64(dwell), SubEvent::Tick);
    }
}

/// Scripted node crashes and restarts. `Node(id)` crashes, `NodeAlt(id)`
/// reboots (fresh overlay state, same identity and files — exactly like
/// churn recovery).
pub(crate) struct CrashPlan {
    crashes: Vec<CrashEvent>,
}

impl CrashPlan {
    pub(crate) fn new(crashes: Vec<CrashEvent>) -> Self {
        CrashPlan { crashes }
    }
}

impl Subsystem for CrashPlan {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        for i in 0..self.crashes.len() {
            let crash = self.crashes[i];
            ctx.schedule(crash.at, SubEvent::Node(crash.node));
        }
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        match ev {
            SubEvent::Node(id) => {
                let restart_after = self
                    .crashes
                    .iter()
                    .find(|c| c.node == id && c.at <= now)
                    .and_then(|c| c.restart_after);
                stack::overlay::power_off(ctx.core, now, id);
                ctx.core
                    .obs_record(now, Severity::Warn, "crash", || format!("{id} crashed"));
                if let Some(after) = restart_after {
                    ctx.schedule(now + after, SubEvent::NodeAlt(id));
                }
            }
            SubEvent::NodeAlt(id) => {
                stack::overlay::power_on(ctx.core, now, id);
                ctx.core
                    .obs_record(now, Severity::Info, "crash", || format!("{id} restarted"));
                if ctx.core.owns(id) {
                    stack::resched_timer(ctx.core, now, id);
                }
            }
            SubEvent::Tick => {}
        }
    }
}

/// Periodic whole-medium outage windows.
pub(crate) struct FlapDriver {
    flaps: LinkFlaps,
}

impl FlapDriver {
    pub(crate) fn new(flaps: LinkFlaps) -> Self {
        FlapDriver { flaps }
    }
}

impl Subsystem for FlapDriver {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        ctx.schedule(SimTime::ZERO + self.flaps.period, SubEvent::Tick);
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Tick = ev else { return };
        ctx.core.link_state.flap_on = !ctx.core.link_state.flap_on;
        let on = ctx.core.link_state.flap_on;
        ctx.core.obs_record(now, Severity::Warn, "fault", || {
            format!("link flap {}", if on { "started" } else { "ended" })
        });
        let next = if on {
            self.flaps.down
        } else {
            self.flaps.period - self.flaps.down
        };
        ctx.schedule(now + next, SubEvent::Tick);
    }
}

/// Periodic windows of extra fixed delivery delay.
pub(crate) struct JitterDriver {
    jitter: JitterSpikes,
}

impl JitterDriver {
    pub(crate) fn new(jitter: JitterSpikes) -> Self {
        JitterDriver { jitter }
    }
}

impl Subsystem for JitterDriver {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        ctx.schedule(SimTime::ZERO + self.jitter.period, SubEvent::Tick);
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Tick = ev else { return };
        ctx.core.link_state.jitter_on = !ctx.core.link_state.jitter_on;
        let on = ctx.core.link_state.jitter_on;
        ctx.core.obs_record(now, Severity::Warn, "fault", || {
            format!("delay spike {}", if on { "started" } else { "ended" })
        });
        let next = if on {
            self.jitter.width
        } else {
            self.jitter.period - self.jitter.width
        };
        ctx.schedule(now + next, SubEvent::Tick);
    }
}
