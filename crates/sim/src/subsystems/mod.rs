//! The pluggable cross-cutting processes of a world.
//!
//! Each implementor of [`Subsystem`](crate::engine::Subsystem) owns one
//! process — its private RNG stream, its schedule, its toggles — and
//! reacts to events in its own namespace. [`build`] registers them in a
//! fixed order that matches the event-seeding order of the original
//! monolithic world, which keeps initial-event insertion order (and with
//! it every timestamp tie-break) bit-identical.

mod adversary;
mod churn;
mod faults;
mod mobility;
mod sampler;

pub(crate) use adversary::QueryFlooderDriver;
pub(crate) use churn::ChurnDriver;
pub(crate) use faults::{CrashPlan, FlapDriver, JitterDriver, LossBursts};
pub(crate) use mobility::MobilityDriver;
pub(crate) use sampler::SmallWorldSampler;

use manet_des::Rng;

use crate::engine::Subsystem;
use crate::scenario::Scenario;
use crate::world::labels;

/// Build the subsystem registry for `scenario`. Registration order is
/// load-bearing: `init` seeding runs in this order, and the original
/// world seeded its initial events in exactly this sequence.
pub(crate) fn build(scenario: &Scenario, master: &Rng) -> Vec<Box<dyn Subsystem>> {
    let mut subs: Vec<Box<dyn Subsystem>> = vec![Box::new(MobilityDriver)];
    if let Some(period) = scenario.smallworld_sample {
        subs.push(Box::new(SmallWorldSampler::new(period)));
    }
    if let Some(churn) = scenario.churn {
        subs.push(Box::new(ChurnDriver::new(
            churn,
            master.fork(labels::CHURN),
        )));
    }
    if let Some(burst) = scenario.faults.loss.as_ref().and_then(|l| l.burst) {
        subs.push(Box::new(LossBursts::new(
            burst,
            master.fork(labels::FAULTS),
        )));
    }
    if !scenario.faults.crashes.is_empty() {
        subs.push(Box::new(CrashPlan::new(scenario.faults.crashes.clone())));
    }
    if let Some(flaps) = scenario.faults.link_flaps {
        subs.push(Box::new(FlapDriver::new(flaps)));
    }
    if let Some(jitter) = scenario.faults.jitter {
        subs.push(Box::new(JitterDriver::new(jitter)));
    }
    // Observability series sampling is no longer a subsystem: the cadence
    // check is inlined into the event loop (`World::step_observed`,
    // `sharded::pop_window`), so the subsystem roster — and with it every
    // packed `Sub` event key — is identical whether obs is on or off.
    // Appended last so adversary-free scenarios keep the exact historical
    // registration (and therefore event-insertion) order.
    let flooders: Vec<_> = scenario
        .adversaries
        .iter()
        .filter_map(|a| match a.role {
            p2p_core::AdversaryRole::QueryFlooder { period } => Some((a.node, period)),
            _ => None,
        })
        .collect();
    if !flooders.is_empty() {
        subs.push(Box::new(QueryFlooderDriver::new(flooders)));
    }
    subs
}
