//! Periodic small-world snapshots of the overlay graph.

use manet_des::{SimDuration, SimTime};
use manet_graph::small_world;

use crate::engine::{SubCtx, SubEvent, Subsystem};

/// Samples the overlay graph's small-world metrics on a fixed cadence.
pub(crate) struct SmallWorldSampler {
    period: SimDuration,
}

impl SmallWorldSampler {
    pub(crate) fn new(period: SimDuration) -> Self {
        SmallWorldSampler { period }
    }
}

impl Subsystem for SmallWorldSampler {
    fn init(&mut self, ctx: &mut SubCtx<'_>) {
        ctx.schedule(SimTime::ZERO + self.period, SubEvent::Tick);
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Tick = ev else { return };
        let graph = ctx.core.overlay_graph();
        if let Some(sw) = small_world(&graph) {
            ctx.core.smallworld.push((now.as_secs_f64(), sw));
        }
        ctx.schedule(now + self.period, SubEvent::Tick);
    }
}
