//! Observability series sampling as a passive post-dispatch tap.
//!
//! Registered only when the scenario's sink is enabled. The tap runs
//! after every dispatched event and only *reads* simulation state
//! (mirroring counters into the registry, appending series samples) — it
//! never schedules events or draws randomness, so instrumented runs stay
//! bit-identical to bare ones.

use manet_des::{SimDuration, SimTime};

use crate::engine::{SubCtx, Subsystem};
use crate::world::WorldCore;

/// Sim-time series sampling on the configured cadence, plus the final
/// at-horizon sample every enabled sink gets.
pub(crate) struct ObsSampler {
    /// Sampling cadence (zero disables series sampling; the final
    /// at-horizon counter mirror still happens).
    period: SimDuration,
    /// When the next series sample is due.
    next_sample: SimTime,
}

impl ObsSampler {
    pub(crate) fn new(cfg: manet_obs::ObsConfig) -> Self {
        let period = SimDuration::from_secs_f64(cfg.sample_period_secs.max(0.0));
        ObsSampler {
            period,
            next_sample: SimTime::ZERO + period,
        }
    }
}

impl Subsystem for ObsSampler {
    fn init(&mut self, _ctx: &mut SubCtx<'_>) {}

    fn wants_post_hook(&self) -> bool {
        true
    }

    fn after_event(&mut self, core: &mut WorldCore, now: SimTime) {
        if !self.period.is_zero() && now >= self.next_sample {
            while self.next_sample <= now {
                self.next_sample += self.period;
            }
            core.obs_sample(now, true);
        }
    }

    fn on_finish(&mut self, core: &mut WorldCore) {
        // Final sample at the horizon, so counter totals in the report
        // match the run's end state even with series sampling off.
        let horizon = core.horizon();
        core.obs_sample(horizon, !self.period.is_zero());
    }
}
