//! Mobility as a subsystem: position epochs and periodic refreshes.

use manet_des::{NodeId, SimTime};
use manet_mobility::Mobility;

use crate::engine::{SubCtx, SubEvent, Subsystem};

/// Drives every node's mobility process: advances epochs, refreshes the
/// spatial grid while a node is moving, and schedules the next
/// re-evaluation.
pub(crate) struct MobilityDriver;

impl Subsystem for MobilityDriver {
    fn seed_node(&mut self, ctx: &mut SubCtx<'_>, id: NodeId) {
        schedule_next(ctx, id, SimTime::ZERO);
    }

    fn handle(&mut self, ctx: &mut SubCtx<'_>, now: SimTime, ev: SubEvent) {
        let SubEvent::Node(id) = ev else { return };
        let pos = {
            let m = &mut ctx.core.mobility[id.index()];
            if m.epoch_end() <= now {
                m.advance(now, &mut ctx.core.mob_rngs[id.index()]);
            }
            m.position(now)
        };
        ctx.core.grid.upsert(id.0, pos);
        schedule_next(ctx, id, now);
    }
}

/// Schedule the next position re-evaluation: the epoch end, or a
/// periodic refresh while the node is actually moving.
fn schedule_next(ctx: &mut SubCtx<'_>, id: NodeId, now: SimTime) {
    let at = {
        let m = &ctx.core.mobility[id.index()];
        let epoch_end = m.epoch_end();
        if epoch_end == SimTime::MAX {
            return; // stationary forever
        }
        let refresh = now + ctx.core.scenario.position_refresh;
        let moving = m.position(now) != m.position(refresh.min(epoch_end));
        if moving {
            refresh.min(epoch_end)
        } else {
            epoch_end
        }
    };
    ctx.schedule(at.max(now), SubEvent::Node(id));
}
