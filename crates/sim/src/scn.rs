//! The `.scn` scenario DSL: a zero-dependency text format for scenarios.
//!
//! A scenario file is line-oriented: one directive per line, `#` starts a
//! comment, blank lines are ignored. Directives either take positional
//! operands (`nodes 30`, `qualifiers 1 100`) or `key=value` pairs in any
//! order (`radio range=10.0 loss=0.05`). Durations carry a unit suffix —
//! `30s`, `250ms`, `10us` (one tick = 1 µs) — and a bare number means
//! seconds. Numbers accept `0x` hex where ids and fingerprints live.
//!
//! ```text
//! scenario DEMO_BLACKHOLE
//! nodes 20
//! algo regular
//! duration 180s
//! adversary black-hole node=19
//! expect reps=2 seed=11 fingerprint=0x0 queries=0 answers=0 frames=0
//! ```
//!
//! Required directives: `scenario`, `nodes`, `algo`, `duration`. Every
//! other field defaults to the paper's Table 2 value
//! ([`Scenario::paper`]). [`parse_scn`] returns typed
//! [`ScnError`] diagnostics carrying a 1-indexed line and column;
//! semantic errors wrap the usual [`ScenarioError`]. [`render_scn`]
//! writes the canonical full form (every field explicit), and the two are
//! inverses: `parse_scn(&render_scn(&f)) == Ok(f)` for any valid file —
//! the property test in `tests/scn_props.rs` pins this.
//!
//! The hand-rolled parser follows the style of the `manet-obs` JSON
//! module: no dependencies, byte-accurate positions, typed errors.

use manet_des::{NodeId, SimDuration, SimTime, TICKS_PER_SECOND};
use p2p_core::{AdversaryRole, AlgoKind};

use crate::errors::ScenarioError;
use crate::faults::{BurstCfg, CrashEvent, JitterSpikes, LinkFlaps, PacketLoss};
use crate::scenario::{Adversary, ChurnCfg, MobilityKind, Scenario};

// ---------------------------------------------------------------------
// Public types
// ---------------------------------------------------------------------

/// A parsed scenario file: its name, the scenario, and the optional
/// pinned expectation block.
#[derive(Clone, Debug, PartialEq)]
pub struct ScnFile {
    /// The corpus name (`scenario NAME`), `[A-Za-z0-9_-]+`.
    pub name: String,
    /// The scenario the directives describe.
    pub scenario: Scenario,
    /// Pinned aggregates, if the file carries an `expect` line.
    pub expect: Option<Expect>,
}

/// Pinned golden aggregates for a corpus scenario: running `reps`
/// replications from `seed` must reproduce these numbers exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expect {
    /// Replications to run.
    pub reps: usize,
    /// Base seed (replication seeds derive from it).
    pub seed: u64,
    /// FNV-1a fold of the per-replication result fingerprints.
    pub fingerprint: u64,
    /// Total queries issued across replications.
    pub queries: u64,
    /// Total answers received across replications.
    pub answers: u64,
    /// Total frames sent across replications.
    pub frames: u64,
}

/// What went wrong at one spot of a scenario file.
#[derive(Clone, Debug, PartialEq)]
pub enum ScnErrorKind {
    /// The line starts with a word that is not a directive.
    UnknownDirective(String),
    /// A `key=value` pair uses a key the directive does not know.
    UnknownKey(String),
    /// An enumerated operand (algo, mobility kind, role…) is not one of
    /// the accepted words.
    UnknownValue(String),
    /// The directive needs an operand that is missing.
    MissingValue(&'static str),
    /// A token should have been `key=value`.
    NotKeyValue(String),
    /// A numeric operand did not parse (decimal or `0x` hex).
    BadNumber(String),
    /// A duration operand did not parse (`30s`, `250ms`, `10us`).
    BadDuration(String),
    /// A boolean operand was neither `true` nor `false`.
    BadBool(String),
    /// The scenario name contains characters outside `[A-Za-z0-9_-]`.
    BadName(String),
    /// A directive that may appear only once appeared again.
    DuplicateDirective(&'static str),
    /// A required directive never appeared.
    MissingDirective(&'static str),
    /// A required `key=` was never given.
    MissingKey(&'static str),
    /// `fault burst` without a preceding `fault loss`.
    BurstWithoutLoss,
    /// The directives parsed but describe an unsimulable scenario.
    Scenario(ScenarioError),
}

/// A scenario-file diagnostic: what went wrong, and where (1-indexed).
#[derive(Clone, Debug, PartialEq)]
pub struct ScnError {
    /// 1-indexed line of the offending token (or of the `scenario`
    /// directive for semantic errors).
    pub line: usize,
    /// 1-indexed column of the offending token.
    pub col: usize,
    /// The typed diagnosis.
    pub kind: ScnErrorKind,
}

impl std::fmt::Display for ScnErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ScnErrorKind::*;
        match self {
            UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            UnknownKey(k) => write!(f, "unknown key `{k}`"),
            UnknownValue(v) => write!(f, "unknown value `{v}`"),
            MissingValue(what) => write!(f, "expected {what}"),
            NotKeyValue(t) => write!(f, "expected key=value, got `{t}`"),
            BadNumber(t) => write!(f, "expected a number, got `{t}`"),
            BadDuration(t) => {
                write!(f, "expected a duration (30s, 250ms, 10us), got `{t}`")
            }
            BadBool(t) => write!(f, "expected true or false, got `{t}`"),
            BadName(t) => {
                write!(f, "scenario name must match [A-Za-z0-9_-]+, got `{t}`")
            }
            DuplicateDirective(d) => write!(f, "duplicate `{d}` directive"),
            MissingDirective(d) => write!(f, "missing required `{d}` directive"),
            MissingKey(k) => write!(f, "missing required key `{k}=`"),
            BurstWithoutLoss => {
                write!(f, "`fault burst` requires a preceding `fault loss`")
            }
            Scenario(e) => write!(f, "invalid scenario: {e}"),
        }
    }
}

impl std::fmt::Display for ScnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for ScnError {}

// ---------------------------------------------------------------------
// Tokens and scalar parsers
// ---------------------------------------------------------------------

/// One whitespace-delimited token and its 1-indexed column.
#[derive(Clone, Copy)]
struct Tok<'a> {
    col: usize,
    s: &'a str,
}

/// Split a line into tokens, dropping a trailing `#` comment.
fn toks(line: &str) -> Vec<Tok<'_>> {
    let line = match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    };
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push(Tok {
                    col: s + 1,
                    s: &line[s..i],
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push(Tok {
            col: s + 1,
            s: &line[s..],
        });
    }
    out
}

fn err(line: usize, col: usize, kind: ScnErrorKind) -> ScnError {
    ScnError { line, col, kind }
}

fn num_u64(line: usize, t: Tok<'_>) -> Result<u64, ScnError> {
    let r = match t.s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.s.parse(),
    };
    r.map_err(|_| err(line, t.col, ScnErrorKind::BadNumber(t.s.into())))
}

fn num_usize(line: usize, t: Tok<'_>) -> Result<usize, ScnError> {
    num_u64(line, t).map(|v| v as usize)
}

fn num_u32(line: usize, t: Tok<'_>) -> Result<u32, ScnError> {
    num_u64(line, t)?
        .try_into()
        .map_err(|_| err(line, t.col, ScnErrorKind::BadNumber(t.s.into())))
}

fn num_u16(line: usize, t: Tok<'_>) -> Result<u16, ScnError> {
    num_u64(line, t)?
        .try_into()
        .map_err(|_| err(line, t.col, ScnErrorKind::BadNumber(t.s.into())))
}

fn num_u8(line: usize, t: Tok<'_>) -> Result<u8, ScnError> {
    num_u64(line, t)?
        .try_into()
        .map_err(|_| err(line, t.col, ScnErrorKind::BadNumber(t.s.into())))
}

fn num_f64(line: usize, t: Tok<'_>) -> Result<f64, ScnError> {
    t.s.parse()
        .map_err(|_| err(line, t.col, ScnErrorKind::BadNumber(t.s.into())))
}

fn boolean(line: usize, t: Tok<'_>) -> Result<bool, ScnError> {
    match t.s {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(err(line, t.col, ScnErrorKind::BadBool(t.s.into()))),
    }
}

/// Parse a duration token: `Nus` / `Nms` (integers), `Ns` or a bare
/// number (whole or fractional seconds).
fn duration(line: usize, t: Tok<'_>) -> Result<SimDuration, ScnError> {
    let bad = || err(line, t.col, ScnErrorKind::BadDuration(t.s.into()));
    if let Some(v) = t.s.strip_suffix("us") {
        return v
            .parse::<u64>()
            .map(SimDuration::from_ticks)
            .map_err(|_| bad());
    }
    if let Some(v) = t.s.strip_suffix("ms") {
        return v
            .parse::<u64>()
            .map(SimDuration::from_millis)
            .map_err(|_| bad());
    }
    let v = t.s.strip_suffix('s').unwrap_or(t.s);
    if v.is_empty() {
        return Err(bad());
    }
    if let Ok(n) = v.parse::<u64>() {
        return Ok(SimDuration::from_secs(n));
    }
    let f: f64 = v.parse().map_err(|_| bad())?;
    if !f.is_finite() || f < 0.0 {
        return Err(bad());
    }
    Ok(SimDuration::from_secs_f64(f))
}

/// Split a `key=value` token; the value token's column points at the
/// value, not the key.
fn kv<'a>(line: usize, t: Tok<'a>) -> Result<(&'a str, Tok<'a>), ScnError> {
    match t.s.split_once('=') {
        Some((k, v)) if !k.is_empty() && !v.is_empty() => Ok((
            k,
            Tok {
                col: t.col + k.len() + 1,
                s: v,
            },
        )),
        _ => Err(err(line, t.col, ScnErrorKind::NotKeyValue(t.s.into()))),
    }
}

/// The directive's next positional operand, or a `MissingValue` at the
/// end of the directive word.
fn need<'a>(
    line: usize,
    after: Tok<'_>,
    rest: &[Tok<'a>],
    what: &'static str,
) -> Result<Tok<'a>, ScnError> {
    rest.first().copied().ok_or_else(|| {
        err(
            line,
            after.col + after.s.len(),
            ScnErrorKind::MissingValue(what),
        )
    })
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parse a `.scn` scenario file. See the module docs for the grammar.
pub fn parse_scn(text: &str) -> Result<ScnFile, ScnError> {
    let mut name: Option<String> = None;
    let mut name_line = 1usize;
    let mut s = Scenario::paper(50, AlgoKind::Basic);
    let (mut seen_nodes, mut seen_algo, mut seen_duration) = (false, false, false);
    let mut expect: Option<Expect> = None;
    let mut last_line = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        last_line = line;
        let t = toks(raw);
        let Some(&head) = t.first() else { continue };
        let rest = &t[1..];
        match head.s {
            "scenario" => {
                if name.is_some() {
                    return Err(err(
                        line,
                        head.col,
                        ScnErrorKind::DuplicateDirective("scenario"),
                    ));
                }
                let n = need(line, head, rest, "a scenario name")?;
                let ok = !n.s.is_empty()
                    && n.s
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                if !ok {
                    return Err(err(line, n.col, ScnErrorKind::BadName(n.s.into())));
                }
                name = Some(n.s.to_string());
                name_line = line;
            }
            "nodes" => {
                s.n_nodes = num_usize(line, need(line, head, rest, "a node count")?)?;
                seen_nodes = true;
            }
            "area" => s.area_side = num_f64(line, need(line, head, rest, "a side length")?)?,
            "members" => {
                s.member_fraction = num_f64(line, need(line, head, rest, "a fraction")?)?;
            }
            "algo" => {
                let v = need(line, head, rest, "an algorithm name")?;
                s.algo = match v.s {
                    "basic" => AlgoKind::Basic,
                    "regular" => AlgoKind::Regular,
                    "random" => AlgoKind::Random,
                    "hybrid" => AlgoKind::Hybrid,
                    _ => return Err(err(line, v.col, ScnErrorKind::UnknownValue(v.s.into()))),
                };
                seen_algo = true;
            }
            "duration" => {
                s.duration = duration(line, need(line, head, rest, "a duration")?)?;
                seen_duration = true;
            }
            "join-window" => {
                s.join_window = duration(line, need(line, head, rest, "a duration")?)?;
            }
            "position-refresh" => {
                s.position_refresh = duration(line, need(line, head, rest, "a duration")?)?;
            }
            "qualifiers" => {
                let lo = need(line, head, rest, "two qualifier bounds")?;
                let hi = need(line, lo, &rest[1..], "an upper qualifier bound")?;
                s.qualifier_range = (num_u32(line, lo)?, num_u32(line, hi)?);
            }
            "battery" => {
                let v = need(line, head, rest, "a budget in mJ, or none")?;
                s.battery_mj = match v.s {
                    "none" => None,
                    _ => Some(num_f64(line, v)?),
                };
            }
            "trace-capacity" => {
                s.trace_capacity = num_usize(line, need(line, head, rest, "a capacity")?)?;
            }
            "shards" => {
                s.shards = num_usize(line, need(line, head, rest, "a shard count")?)?;
            }
            "smallworld" => {
                s.smallworld_sample =
                    Some(duration(line, need(line, head, rest, "a sample period")?)?);
            }
            "mobility" => s.mobility = parse_mobility(line, head, rest)?,
            "radio" => parse_radio(line, rest, &mut s)?,
            "overlay" => parse_overlay(line, rest, &mut s)?,
            "aodv" => parse_aodv(line, rest, &mut s)?,
            "catalog" => {
                for &t in rest {
                    let (k, v) = kv(line, t)?;
                    match k {
                        "files" => s.catalog.n_files = num_u16(line, v)?,
                        "max-freq" => s.catalog.max_freq = num_f64(line, v)?,
                        _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                    }
                }
            }
            "query" => parse_query(line, rest, &mut s)?,
            "churn" => {
                let mut c = s.churn.unwrap_or(ChurnCfg {
                    mean_uptime: 60.0,
                    mean_downtime: 30.0,
                });
                for &t in rest {
                    let (k, v) = kv(line, t)?;
                    match k {
                        "up" => c.mean_uptime = num_f64(line, v)?,
                        "down" => c.mean_downtime = num_f64(line, v)?,
                        _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                    }
                }
                s.churn = Some(c);
            }
            "fault" => parse_fault(line, head, rest, &mut s)?,
            "adversary" => s.adversaries.push(parse_adversary(line, head, rest)?),
            "obs" => match rest {
                // `obs off` opts out of the default-on sink (the world
                // then dispatches to the precomputed no-op sink).
                [t] if t.s == "off" => s.obs = manet_obs::ObsConfig::disabled(),
                _ => {
                    s.obs.enabled = true;
                    for &t in rest {
                        let (k, v) = kv(line, t)?;
                        match k {
                            "sample" => s.obs.sample_period_secs = num_f64(line, v)?,
                            "recorder" => s.obs.recorder_capacity = num_usize(line, v)?,
                            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                        }
                    }
                }
            },
            "expect" => {
                if expect.is_some() {
                    return Err(err(
                        line,
                        head.col,
                        ScnErrorKind::DuplicateDirective("expect"),
                    ));
                }
                expect = Some(parse_expect(line, head, rest)?);
            }
            _ => {
                return Err(err(
                    line,
                    head.col,
                    ScnErrorKind::UnknownDirective(head.s.into()),
                ))
            }
        }
    }

    let eof = last_line.max(1);
    let Some(name) = name else {
        return Err(err(eof, 1, ScnErrorKind::MissingDirective("scenario")));
    };
    if !seen_nodes {
        return Err(err(eof, 1, ScnErrorKind::MissingDirective("nodes")));
    }
    if !seen_algo {
        return Err(err(eof, 1, ScnErrorKind::MissingDirective("algo")));
    }
    if !seen_duration {
        return Err(err(eof, 1, ScnErrorKind::MissingDirective("duration")));
    }
    s.check()
        .map_err(|e| err(name_line, 1, ScnErrorKind::Scenario(e)))?;
    Ok(ScnFile {
        name,
        scenario: s,
        expect,
    })
}

fn parse_mobility(line: usize, head: Tok<'_>, rest: &[Tok<'_>]) -> Result<MobilityKind, ScnError> {
    let kind = need(line, head, rest, "a mobility model")?;
    let kvs = &rest[1..];
    match kind.s {
        "waypoint" => {
            let (mut speed, mut pause) = (1.0, 100.0);
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "speed" => speed = num_f64(line, v)?,
                    "pause" => pause = num_f64(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            Ok(MobilityKind::Waypoint {
                max_speed: speed,
                max_pause: pause,
            })
        }
        "walk" => {
            let mut speed = 1.0;
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "speed" => speed = num_f64(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            Ok(MobilityKind::Walk { max_speed: speed })
        }
        "gauss-markov" => Ok(MobilityKind::GaussMarkov),
        "groups" => {
            let (mut n, mut speed, mut radius) = (4usize, 1.0, 8.0);
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "n" => n = num_usize(line, v)?,
                    "speed" => speed = num_f64(line, v)?,
                    "radius" => radius = num_f64(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            Ok(MobilityKind::Groups {
                n_groups: n,
                max_speed: speed,
                group_radius: radius,
            })
        }
        "stationary" => Ok(MobilityKind::Stationary),
        _ => Err(err(
            line,
            kind.col,
            ScnErrorKind::UnknownValue(kind.s.into()),
        )),
    }
}

fn parse_radio(line: usize, kvs: &[Tok<'_>], s: &mut Scenario) -> Result<(), ScnError> {
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        let r = &mut s.radio;
        match k {
            "range" => r.range_m = num_f64(line, v)?,
            "bitrate" => r.bitrate_bps = num_f64(line, v)?,
            "hop-latency" => r.hop_latency = duration(line, v)?,
            "jitter" => r.max_jitter = duration(line, v)?,
            "loss" => r.loss_prob = num_f64(line, v)?,
            "fuzz" => r.fuzz = num_f64(line, v)?,
            "tx-byte" => r.tx_mj_per_byte = num_f64(line, v)?,
            "tx-base" => r.tx_mj_base = num_f64(line, v)?,
            "rx-byte" => r.rx_mj_per_byte = num_f64(line, v)?,
            "rx-base" => r.rx_mj_base = num_f64(line, v)?,
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    Ok(())
}

fn parse_overlay(line: usize, kvs: &[Tok<'_>], s: &mut Scenario) -> Result<(), ScnError> {
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        let o = &mut s.overlay;
        match k {
            "max-conn" => o.max_conn = num_usize(line, v)?,
            "nhops-initial" => o.nhops_initial = num_u8(line, v)?,
            "max-nhops" => o.max_nhops = num_u8(line, v)?,
            "nhops-basic" => o.nhops_basic = num_u8(line, v)?,
            "max-dist" => o.max_dist = num_u8(line, v)?,
            "timer-initial" => o.timer_initial = duration(line, v)?,
            "max-timer" => o.max_timer = duration(line, v)?,
            "basic-timer" => o.basic_timer = duration(line, v)?,
            "ping" => o.ping_interval = duration(line, v)?,
            "pong-timeout" => o.pong_timeout = duration(line, v)?,
            "handshake-timeout" => o.handshake_timeout = duration(line, v)?,
            "random-wait" => o.random_response_wait = duration(line, v)?,
            "max-slaves" => o.max_slaves = num_usize(line, v)?,
            "master-idle" => o.master_idle_timeout = duration(line, v)?,
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    Ok(())
}

fn parse_aodv(line: usize, kvs: &[Tok<'_>], s: &mut Scenario) -> Result<(), ScnError> {
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        let a = &mut s.aodv;
        match k {
            "route-lifetime" => a.active_route_lifetime = duration(line, v)?,
            "ttl-start" => a.ttl_start = num_u8(line, v)?,
            "ttl-increment" => a.ttl_increment = num_u8(line, v)?,
            "ttl-threshold" => a.ttl_threshold = num_u8(line, v)?,
            "net-diameter" => a.net_diameter = num_u8(line, v)?,
            "rreq-retries" => a.rreq_retries = num_u8(line, v)?,
            "hop-traversal" => a.hop_traversal_time = duration(line, v)?,
            "rreq-seen" => a.rreq_seen_lifetime = duration(line, v)?,
            "flood-cache" => a.flood_cache_lifetime = duration(line, v)?,
            "learn-from-flood" => a.learn_routes_from_flood = boolean(line, v)?,
            "max-buffered" => a.max_buffered_per_dest = num_usize(line, v)?,
            "max-data-hops" => a.max_data_hops = num_u8(line, v)?,
            "hello" => {
                a.hello_interval = match v.s {
                    "none" => None,
                    _ => Some(duration(line, v)?),
                };
            }
            "hello-loss" => a.allowed_hello_loss = num_u32(line, v)?,
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    Ok(())
}

fn parse_query(line: usize, kvs: &[Tok<'_>], s: &mut Scenario) -> Result<(), ScnError> {
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        let q = &mut s.query;
        match k {
            "ttl" => q.ttl = num_u8(line, v)?,
            "response-wait" => q.response_wait = duration(line, v)?,
            "think-min" => q.think_min = duration(line, v)?,
            "think-max" => q.think_max = duration(line, v)?,
            "zipf" => q.zipf_targets = boolean(line, v)?,
            "seen" => q.seen_lifetime = duration(line, v)?,
            "fetch" => {
                q.fetch_bytes = match v.s {
                    "none" => None,
                    _ => Some(num_u32(line, v)?),
                };
            }
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    Ok(())
}

fn parse_fault(
    line: usize,
    head: Tok<'_>,
    rest: &[Tok<'_>],
    s: &mut Scenario,
) -> Result<(), ScnError> {
    let sub = need(
        line,
        head,
        rest,
        "a fault kind (loss, burst, crash, flaps, jitter)",
    )?;
    let kvs = &rest[1..];
    match sub.s {
        "loss" => {
            let mut base = 0.0;
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "base" => base = num_f64(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            let burst = s.faults.loss.and_then(|l| l.burst);
            s.faults.loss = Some(PacketLoss { base, burst });
        }
        "burst" => {
            let Some(loss) = s.faults.loss.as_mut() else {
                return Err(err(line, sub.col, ScnErrorKind::BurstWithoutLoss));
            };
            let mut b = BurstCfg {
                mean_quiet: 40.0,
                mean_burst: 10.0,
                burst_loss: 0.5,
            };
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "quiet" => b.mean_quiet = num_f64(line, v)?,
                    "burst" => b.mean_burst = num_f64(line, v)?,
                    "loss" => b.burst_loss = num_f64(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            loss.burst = Some(b);
        }
        "crash" => {
            let (mut node, mut at, mut restart) = (None, SimTime::ZERO, None);
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "node" => node = Some(num_u32(line, v)?),
                    "at" => at = SimTime::from_ticks(duration(line, v)?.ticks()),
                    "restart" => {
                        restart = match v.s {
                            "none" => None,
                            _ => Some(duration(line, v)?),
                        };
                    }
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            let Some(node) = node else {
                return Err(err(line, sub.col, ScnErrorKind::MissingKey("node")));
            };
            s.faults.crashes.push(CrashEvent {
                node: NodeId(node),
                at,
                restart_after: restart,
            });
        }
        "flaps" => {
            let mut f = LinkFlaps {
                period: SimDuration::from_secs(90),
                down: SimDuration::from_secs(5),
            };
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "period" => f.period = duration(line, v)?,
                    "down" => f.down = duration(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            s.faults.link_flaps = Some(f);
        }
        "jitter" => {
            let mut j = JitterSpikes {
                period: SimDuration::from_secs(70),
                width: SimDuration::from_secs(10),
                extra_delay: SimDuration::from_millis(40),
            };
            for &t in kvs {
                let (k, v) = kv(line, t)?;
                match k {
                    "period" => j.period = duration(line, v)?,
                    "width" => j.width = duration(line, v)?,
                    "delay" => j.extra_delay = duration(line, v)?,
                    _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
                }
            }
            s.faults.jitter = Some(j);
        }
        _ => return Err(err(line, sub.col, ScnErrorKind::UnknownValue(sub.s.into()))),
    }
    Ok(())
}

fn parse_adversary(line: usize, head: Tok<'_>, rest: &[Tok<'_>]) -> Result<Adversary, ScnError> {
    let role_tok = need(line, head, rest, "an adversary role")?;
    let kvs = &rest[1..];
    let mut node = None;
    let mut drop_nth = 2u32;
    let mut factor = 2u8;
    let mut period = SimDuration::from_secs(10);
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        match k {
            "node" => node = Some(num_u32(line, v)?),
            "drop-nth" => drop_nth = num_u32(line, v)?,
            "factor" => factor = num_u8(line, v)?,
            "period" => period = duration(line, v)?,
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    let role = match role_tok.s {
        "black-hole" => AdversaryRole::BlackHole,
        "grey-hole" => AdversaryRole::GreyHole { drop_nth },
        "rreq-amplifier" => AdversaryRole::RreqAmplifier { factor },
        "query-flooder" => AdversaryRole::QueryFlooder { period },
        "selfish" => AdversaryRole::Selfish,
        _ => {
            return Err(err(
                line,
                role_tok.col,
                ScnErrorKind::UnknownValue(role_tok.s.into()),
            ))
        }
    };
    let Some(node) = node else {
        return Err(err(line, role_tok.col, ScnErrorKind::MissingKey("node")));
    };
    Ok(Adversary {
        node: NodeId(node),
        role,
    })
}

fn parse_expect(line: usize, head: Tok<'_>, kvs: &[Tok<'_>]) -> Result<Expect, ScnError> {
    let (mut reps, mut seed, mut fingerprint) = (None, None, None);
    let (mut queries, mut answers, mut frames) = (0, 0, 0);
    for &t in kvs {
        let (k, v) = kv(line, t)?;
        match k {
            "reps" => reps = Some(num_usize(line, v)?),
            "seed" => seed = Some(num_u64(line, v)?),
            "fingerprint" => fingerprint = Some(num_u64(line, v)?),
            "queries" => queries = num_u64(line, v)?,
            "answers" => answers = num_u64(line, v)?,
            "frames" => frames = num_u64(line, v)?,
            _ => return Err(err(line, t.col, ScnErrorKind::UnknownKey(k.into()))),
        }
    }
    let missing = |k| err(line, head.col, ScnErrorKind::MissingKey(k));
    Ok(Expect {
        reps: reps.ok_or_else(|| missing("reps"))?,
        seed: seed.ok_or_else(|| missing("seed"))?,
        fingerprint: fingerprint.ok_or_else(|| missing("fingerprint"))?,
        queries,
        answers,
        frames,
    })
}

// ---------------------------------------------------------------------
// Renderer
// ---------------------------------------------------------------------

/// Render a duration in the shortest exact unit: whole seconds, whole
/// milliseconds, else raw microsecond ticks.
fn dur(d: SimDuration) -> String {
    let t = d.ticks();
    if t.is_multiple_of(TICKS_PER_SECOND) {
        format!("{}s", t / TICKS_PER_SECOND)
    } else if t.is_multiple_of(1_000) {
        format!("{}ms", t / 1_000)
    } else {
        format!("{t}us")
    }
}

/// Render an `f64` exactly (`{:?}` is shortest-round-trip in Rust).
fn flt(x: f64) -> String {
    format!("{x:?}")
}

/// Render a scenario file in canonical form: every field explicit, fixed
/// directive order. [`parse_scn`] of the output reproduces the input
/// file exactly.
pub fn render_scn(file: &ScnFile) -> String {
    let s = &file.scenario;
    let mut out = String::new();
    let mut line = |l: String| {
        out.push_str(&l);
        out.push('\n');
    };
    line(format!("scenario {}", file.name));
    line(format!("nodes {}", s.n_nodes));
    line(format!("area {}", flt(s.area_side)));
    line(format!("members {}", flt(s.member_fraction)));
    line(format!("algo {}", s.algo.name().to_ascii_lowercase()));
    line(format!("duration {}", dur(s.duration)));
    line(format!("join-window {}", dur(s.join_window)));
    line(format!("position-refresh {}", dur(s.position_refresh)));
    line(format!(
        "qualifiers {} {}",
        s.qualifier_range.0, s.qualifier_range.1
    ));
    line(format!("trace-capacity {}", s.trace_capacity));
    if s.shards != 1 {
        line(format!("shards {}", s.shards));
    }
    if let Some(mj) = s.battery_mj {
        line(format!("battery {}", flt(mj)));
    }
    if let Some(p) = s.smallworld_sample {
        line(format!("smallworld {}", dur(p)));
    }
    let mobility = match s.mobility {
        MobilityKind::Waypoint {
            max_speed,
            max_pause,
        } => format!("waypoint speed={} pause={}", flt(max_speed), flt(max_pause)),
        MobilityKind::Walk { max_speed } => format!("walk speed={}", flt(max_speed)),
        MobilityKind::GaussMarkov => "gauss-markov".into(),
        MobilityKind::Groups {
            n_groups,
            max_speed,
            group_radius,
        } => format!(
            "groups n={} speed={} radius={}",
            n_groups,
            flt(max_speed),
            flt(group_radius)
        ),
        MobilityKind::Stationary => "stationary".into(),
    };
    line(format!("mobility {mobility}"));
    let r = &s.radio;
    line(format!(
        "radio range={} bitrate={} hop-latency={} jitter={} loss={} fuzz={} \
         tx-byte={} tx-base={} rx-byte={} rx-base={}",
        flt(r.range_m),
        flt(r.bitrate_bps),
        dur(r.hop_latency),
        dur(r.max_jitter),
        flt(r.loss_prob),
        flt(r.fuzz),
        flt(r.tx_mj_per_byte),
        flt(r.tx_mj_base),
        flt(r.rx_mj_per_byte),
        flt(r.rx_mj_base),
    ));
    let o = &s.overlay;
    line(format!(
        "overlay max-conn={} nhops-initial={} max-nhops={} nhops-basic={} max-dist={} \
         timer-initial={} max-timer={} basic-timer={} ping={} pong-timeout={} \
         handshake-timeout={} random-wait={} max-slaves={} master-idle={}",
        o.max_conn,
        o.nhops_initial,
        o.max_nhops,
        o.nhops_basic,
        o.max_dist,
        dur(o.timer_initial),
        dur(o.max_timer),
        dur(o.basic_timer),
        dur(o.ping_interval),
        dur(o.pong_timeout),
        dur(o.handshake_timeout),
        dur(o.random_response_wait),
        o.max_slaves,
        dur(o.master_idle_timeout),
    ));
    let a = &s.aodv;
    line(format!(
        "aodv route-lifetime={} ttl-start={} ttl-increment={} ttl-threshold={} \
         net-diameter={} rreq-retries={} hop-traversal={} rreq-seen={} flood-cache={} \
         learn-from-flood={} max-buffered={} max-data-hops={} hello={} hello-loss={}",
        dur(a.active_route_lifetime),
        a.ttl_start,
        a.ttl_increment,
        a.ttl_threshold,
        a.net_diameter,
        a.rreq_retries,
        dur(a.hop_traversal_time),
        dur(a.rreq_seen_lifetime),
        dur(a.flood_cache_lifetime),
        a.learn_routes_from_flood,
        a.max_buffered_per_dest,
        a.max_data_hops,
        a.hello_interval.map_or("none".into(), dur),
        a.allowed_hello_loss,
    ));
    line(format!(
        "catalog files={} max-freq={}",
        s.catalog.n_files,
        flt(s.catalog.max_freq)
    ));
    let q = &s.query;
    line(format!(
        "query ttl={} response-wait={} think-min={} think-max={} zipf={} seen={} fetch={}",
        q.ttl,
        dur(q.response_wait),
        dur(q.think_min),
        dur(q.think_max),
        q.zipf_targets,
        dur(q.seen_lifetime),
        q.fetch_bytes.map_or("none".into(), |b| b.to_string()),
    ));
    if let Some(c) = s.churn {
        line(format!(
            "churn up={} down={}",
            flt(c.mean_uptime),
            flt(c.mean_downtime)
        ));
    }
    if let Some(loss) = s.faults.loss {
        line(format!("fault loss base={}", flt(loss.base)));
        if let Some(b) = loss.burst {
            line(format!(
                "fault burst quiet={} burst={} loss={}",
                flt(b.mean_quiet),
                flt(b.mean_burst),
                flt(b.burst_loss)
            ));
        }
    }
    for c in &s.faults.crashes {
        line(format!(
            "fault crash node={} at={} restart={}",
            c.node.0,
            dur(SimDuration::from_ticks(c.at.ticks())),
            c.restart_after.map_or("none".into(), dur),
        ));
    }
    if let Some(f) = s.faults.link_flaps {
        line(format!(
            "fault flaps period={} down={}",
            dur(f.period),
            dur(f.down)
        ));
    }
    if let Some(j) = s.faults.jitter {
        line(format!(
            "fault jitter period={} width={} delay={}",
            dur(j.period),
            dur(j.width),
            dur(j.extra_delay)
        ));
    }
    for adv in &s.adversaries {
        let extra = match adv.role {
            AdversaryRole::BlackHole | AdversaryRole::Selfish => String::new(),
            AdversaryRole::GreyHole { drop_nth } => format!(" drop-nth={drop_nth}"),
            AdversaryRole::RreqAmplifier { factor } => format!(" factor={factor}"),
            AdversaryRole::QueryFlooder { period } => format!(" period={}", dur(period)),
        };
        line(format!(
            "adversary {} node={}{}",
            adv.role.name(),
            adv.node.0,
            extra
        ));
    }
    if s.obs.enabled {
        line(format!(
            "obs sample={} recorder={}",
            flt(s.obs.sample_period_secs),
            s.obs.recorder_capacity
        ));
    } else {
        // Observability is on by default, so the opt-out must be explicit
        // for the render/parse inverse to hold.
        line("obs off".into());
    }
    if let Some(e) = &file.expect {
        line(render_expect(e));
    }
    out
}

/// Render an `expect` line (used by the corpus re-pin mode too).
pub fn render_expect(e: &Expect) -> String {
    format!(
        "expect reps={} seed={} fingerprint={:#018x} queries={} answers={} frames={}",
        e.reps, e.seed, e.fingerprint, e.queries, e.answers, e.frames
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        "scenario T\nnodes 10\nalgo regular\nduration 60s\n".to_string()
    }

    #[test]
    fn minimal_file_parses_with_paper_defaults() {
        let f = parse_scn(&minimal()).unwrap();
        assert_eq!(f.name, "T");
        assert_eq!(f.scenario.n_nodes, 10);
        assert_eq!(f.scenario.algo, AlgoKind::Regular);
        assert_eq!(f.scenario.duration, SimDuration::from_secs(60));
        // Everything else keeps Table 2 defaults.
        assert_eq!(f.scenario.radio.range_m, 10.0);
        assert_eq!(f.scenario.member_fraction, 0.75);
        assert!(f.expect.is_none());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nscenario T # trailing\nnodes 10\nalgo basic\nduration 60s\n";
        assert!(parse_scn(text).is_ok());
    }

    #[test]
    fn adversary_free_file_equals_programmatic_quick() {
        // The bit-identity bridge: this file is Scenario::quick(30, Regular, 240).
        let text = "scenario Q\nnodes 30\nalgo regular\nduration 240s\njoin-window 10s\n";
        let f = parse_scn(text).unwrap();
        assert_eq!(f.scenario, Scenario::quick(30, AlgoKind::Regular, 240));
    }

    #[test]
    fn every_directive_round_trips() {
        let mut s = Scenario::paper(24, AlgoKind::Hybrid);
        s.duration = SimDuration::from_secs(300);
        s.join_window = SimDuration::from_millis(12_500);
        s.battery_mj = Some(400.0);
        s.churn = Some(ChurnCfg {
            mean_uptime: 60.0,
            mean_downtime: 30.0,
        });
        s.smallworld_sample = Some(SimDuration::from_secs(60));
        s.trace_capacity = 512;
        s.mobility = MobilityKind::Groups {
            n_groups: 4,
            max_speed: 1.5,
            group_radius: 8.0,
        };
        s.radio.loss_prob = 0.05;
        s.radio.fuzz = 0.25;
        s.aodv.hello_interval = Some(SimDuration::from_secs(2));
        s.query.fetch_bytes = Some(2048);
        s.query.zipf_targets = false;
        s.faults.loss = Some(PacketLoss {
            base: 0.05,
            burst: Some(BurstCfg {
                mean_quiet: 40.0,
                mean_burst: 10.0,
                burst_loss: 0.6,
            }),
        });
        s.faults.crashes.push(CrashEvent {
            node: NodeId(3),
            at: SimTime::from_secs(100),
            restart_after: Some(SimDuration::from_secs(60)),
        });
        s.faults.link_flaps = Some(LinkFlaps {
            period: SimDuration::from_secs(90),
            down: SimDuration::from_secs(5),
        });
        s.faults.jitter = Some(JitterSpikes {
            period: SimDuration::from_secs(70),
            width: SimDuration::from_secs(10),
            extra_delay: SimDuration::from_millis(40),
        });
        s.adversaries = vec![
            Adversary {
                node: NodeId(0),
                role: AdversaryRole::BlackHole,
            },
            Adversary {
                node: NodeId(1),
                role: AdversaryRole::GreyHole { drop_nth: 3 },
            },
            Adversary {
                node: NodeId(2),
                role: AdversaryRole::RreqAmplifier { factor: 4 },
            },
            Adversary {
                node: NodeId(3),
                role: AdversaryRole::QueryFlooder {
                    period: SimDuration::from_secs(7),
                },
            },
            Adversary {
                node: NodeId(4),
                role: AdversaryRole::Selfish,
            },
        ];
        s.obs.enabled = true;
        s.obs.sample_period_secs = 5.0;
        let file = ScnFile {
            name: "KITCHEN_SINK".into(),
            scenario: s,
            expect: Some(Expect {
                reps: 2,
                seed: 11,
                fingerprint: 0xdead_beef_cafe_f00d,
                queries: 123,
                answers: 45,
                frames: 6789,
            }),
        };
        let text = render_scn(&file);
        let parsed = parse_scn(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(parsed, file);
    }

    #[test]
    fn shards_directive_round_trips() {
        // Sharded scenarios keep the default-on obs sink (the merged
        // report is shard-count invariant), so no opt-out here.
        let mut s = Scenario::quick(40, AlgoKind::Regular, 120);
        s.shards = 4;
        let file = ScnFile {
            name: "SHARDED".into(),
            scenario: s,
            expect: None,
        };
        let text = render_scn(&file);
        assert!(text.contains("shards 4"), "missing directive:\n{text}");
        let parsed = parse_scn(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(parsed, file);
        assert!(parsed.scenario.check().is_ok());
        // The default is elided so pre-sharding corpora stay canonical.
        let plain = ScnFile {
            name: "PLAIN".into(),
            scenario: Scenario::quick(40, AlgoKind::Regular, 120),
            expect: None,
        };
        assert!(!render_scn(&plain).contains("shards"));
    }

    #[test]
    fn obs_off_round_trips() {
        let mut s = Scenario::quick(20, AlgoKind::Regular, 60);
        s.obs = manet_obs::ObsConfig::disabled();
        let file = ScnFile {
            name: "QUIET".into(),
            scenario: s,
            expect: None,
        };
        let text = render_scn(&file);
        assert!(text.contains("obs off"), "missing opt-out:\n{text}");
        let parsed = parse_scn(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(parsed, file);
        // The default-on sink renders as an explicit obs line instead.
        let default = ScnFile {
            name: "DEFAULT".into(),
            scenario: Scenario::quick(20, AlgoKind::Regular, 60),
            expect: None,
        };
        let text = render_scn(&default);
        assert!(text.contains("obs sample="), "default renders on:\n{text}");
        assert!(!text.contains("obs off"));
    }

    #[test]
    fn errors_carry_exact_positions() {
        // Unknown directive on line 2, col 1.
        let e = parse_scn("scenario T\nfrobnicate 1\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 1));
        assert_eq!(e.kind, ScnErrorKind::UnknownDirective("frobnicate".into()));

        // Bad number: col points at the operand.
        let e = parse_scn("scenario T\nnodes many\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 7));
        assert_eq!(e.kind, ScnErrorKind::BadNumber("many".into()));

        // Bad value inside a key=value: col points past the `=`.
        let e = parse_scn("scenario T\nnodes 10\nalgo basic\nduration 60s\nradio loss=lots\n")
            .unwrap_err();
        assert_eq!((e.line, e.col), (5, 12));
        assert_eq!(e.kind, ScnErrorKind::BadNumber("lots".into()));

        // Missing operand: col points just past the directive word.
        let e = parse_scn("scenario\n").unwrap_err();
        assert_eq!((e.line, e.col), (1, 9));
        assert!(matches!(e.kind, ScnErrorKind::MissingValue(_)));

        // Bad duration.
        let e = parse_scn("scenario T\nduration soon\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 10));
        assert_eq!(e.kind, ScnErrorKind::BadDuration("soon".into()));

        // Display always mentions the position.
        assert!(e.to_string().starts_with("line 2, col 10:"));
    }

    #[test]
    fn missing_required_directives_are_reported() {
        let e = parse_scn("nodes 10\nalgo basic\nduration 60s\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::MissingDirective("scenario"));
        let e = parse_scn("scenario T\nalgo basic\nduration 60s\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::MissingDirective("nodes"));
        let e = parse_scn("scenario T\nnodes 10\nduration 60s\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::MissingDirective("algo"));
        let e = parse_scn("scenario T\nnodes 10\nalgo basic\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::MissingDirective("duration"));
    }

    #[test]
    fn semantic_errors_wrap_scenario_error() {
        let e = parse_scn("scenario T\nnodes 1\nalgo basic\nduration 60s\n").unwrap_err();
        assert_eq!(
            e.kind,
            ScnErrorKind::Scenario(ScenarioError::TooFewNodes { n_nodes: 1 })
        );
        assert!(e.line >= 1 && e.col >= 1);

        let e =
            parse_scn("scenario T\nnodes 10\nalgo basic\nduration 60s\nadversary selfish node=9\n")
                .unwrap_err();
        assert!(matches!(
            e.kind,
            ScnErrorKind::Scenario(ScenarioError::AdversaryNotMember { node: 9, .. })
        ));
    }

    #[test]
    fn burst_requires_loss() {
        let e = parse_scn("scenario T\nfault burst quiet=40.0\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::BurstWithoutLoss);
        assert_eq!((e.line, e.col), (2, 7));
    }

    #[test]
    fn adversary_requires_node() {
        let e = parse_scn("scenario T\nadversary black-hole\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::MissingKey("node"));
    }

    #[test]
    fn duplicate_scenario_and_expect_rejected() {
        let e = parse_scn("scenario A\nscenario B\n").unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::DuplicateDirective("scenario"));
        let two = "scenario T\nnodes 10\nalgo basic\nduration 60s\n\
                   expect reps=1 seed=1 fingerprint=0x1\nexpect reps=1 seed=1 fingerprint=0x1\n";
        let e = parse_scn(two).unwrap_err();
        assert_eq!(e.kind, ScnErrorKind::DuplicateDirective("expect"));
    }

    #[test]
    fn durations_accept_all_units() {
        let f = parse_scn(
            "scenario T\nnodes 10\nalgo basic\nduration 60\n\
             join-window 2500ms\nposition-refresh 125000us\n",
        )
        .unwrap();
        assert_eq!(f.scenario.duration, SimDuration::from_secs(60));
        assert_eq!(f.scenario.join_window, SimDuration::from_millis(2500));
        assert_eq!(
            f.scenario.position_refresh,
            SimDuration::from_ticks(125_000)
        );
    }

    #[test]
    fn expect_hex_and_decimal_numbers() {
        let f = parse_scn(
            "scenario T\nnodes 10\nalgo basic\nduration 60s\n\
             expect reps=2 seed=0x2a fingerprint=0xdeadbeef queries=7\n",
        )
        .unwrap();
        let e = f.expect.unwrap();
        assert_eq!(e.reps, 2);
        assert_eq!(e.seed, 42);
        assert_eq!(e.fingerprint, 0xdead_beef);
        assert_eq!(e.queries, 7);
        assert_eq!(e.answers, 0);
    }
}
