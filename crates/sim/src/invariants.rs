//! Invariant checkers for finished and running worlds.
//!
//! Two layers:
//!
//! * [`check_result`] — conservation laws over a finished replication's
//!   [`RunResult`]. These hold for *any* scenario, fault plan included: a
//!   violation is a simulator bug, never a legitimate protocol outcome.
//! * [`World::check_invariants`](crate::World::check_invariants) — live
//!   structural sanity (routing tables, overlay neighbor sets) checkable at
//!   any point of a stepped run.
//!
//! Both return a list of human-readable violations rather than panicking,
//! so property tests can feed them through `prop_assert!` and report the
//! replayable case seed.

use crate::scenario::Scenario;
use crate::world::RunResult;
use manet_metrics::MsgKind;

/// Check the conservation laws of a finished replication.
///
/// Returns one message per violated law; an empty vector means the run is
/// consistent. The laws:
///
/// 1. the member census matches the scenario;
/// 2. final roles partition the members (they sum to the member count);
/// 3. every reception was transmitted: received + lost frames never exceed
///    `sent × (n − 1)` (a broadcast has at most `n − 1` receivers), and the
///    same for bytes;
/// 4. energy spent is non-negative and finite for every node;
/// 5. every answer arrived as a QueryHit delivery;
/// 6. connections alive at the end never exceed connections ever
///    established.
pub fn check_result(scenario: &Scenario, r: &RunResult) -> Vec<String> {
    let mut v = Vec::new();
    let n = scenario.n_nodes as u64;

    if r.members.len() != scenario.n_members() {
        v.push(format!(
            "member census: result has {} members, scenario says {}",
            r.members.len(),
            scenario.n_members()
        ));
    }

    let roles_sum: usize = r.roles.iter().sum();
    if roles_sum != r.members.len() {
        v.push(format!(
            "role partition: roles {:?} sum to {roles_sum}, but there are {} members",
            r.roles,
            r.members.len()
        ));
    }

    let max_receivers = r.phy_total.frames_sent.saturating_mul(n.saturating_sub(1));
    let accounted = r.phy_total.frames_received + r.phy_total.frames_lost;
    if accounted > max_receivers {
        v.push(format!(
            "frame conservation: {} received + {} lost > {} sent x {} receivers",
            r.phy_total.frames_received,
            r.phy_total.frames_lost,
            r.phy_total.frames_sent,
            n.saturating_sub(1)
        ));
    }
    let max_bytes = r.phy_total.bytes_sent.saturating_mul(n.saturating_sub(1));
    if r.phy_total.bytes_received > max_bytes {
        v.push(format!(
            "byte conservation: {} received > {} sent x {} receivers",
            r.phy_total.bytes_received,
            r.phy_total.bytes_sent,
            n.saturating_sub(1)
        ));
    }

    for (i, &mj) in r.energy_mj.iter().enumerate() {
        if !(mj.is_finite() && mj >= 0.0) {
            v.push(format!("energy: node {i} spent {mj} mJ"));
        }
    }

    let hits = r.counters.total(MsgKind::QueryHit);
    if r.answers_received > hits {
        v.push(format!(
            "answer conservation: {} answers recorded but only {hits} QueryHit deliveries",
            r.answers_received
        ));
    }

    // Each end of a live connection was counted once when it became
    // established, so the final census is bounded by the running total.
    let alive = r.avg_connections * r.members.len() as f64;
    if alive > r.conns_established as f64 + 1e-6 {
        v.push(format!(
            "connection conservation: {alive:.2} connection ends alive at the end, \
             but only {} were ever established",
            r.conns_established
        ));
    }

    v
}

/// [`check_result`] plus automatic flight-recorder dumps: when violations
/// are found and the run carried an enabled observability sink, the
/// report is written as a JSONL failure dump into `dir` (see
/// [`manet_obs::report::dump_failure`]). Returns the violations either way.
pub fn check_result_dumping(
    scenario: &Scenario,
    r: &RunResult,
    dir: &std::path::Path,
) -> Vec<String> {
    let v = check_result(scenario, r);
    if !v.is_empty() && r.obs.enabled() {
        if let Ok(path) = manet_obs::report::dump_failure(dir, "check_result", &v, &r.obs) {
            eprintln!("invariants: flight-recorder dump at {}", path.display());
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use manet_des::SimTime;
    use p2p_core::AlgoKind;

    #[test]
    fn clean_runs_satisfy_conservation_laws() {
        for algo in AlgoKind::ALL {
            let s = Scenario::quick(20, algo, 200);
            let r = World::new(s.clone(), 17).run();
            let violations = check_result(&s, &r);
            assert!(violations.is_empty(), "{algo}: {violations:?}");
        }
    }

    #[test]
    fn broken_results_are_flagged() {
        let s = Scenario::quick(20, AlgoKind::Regular, 120);
        let mut r = World::new(s.clone(), 18).run();
        r.answers_received += 1_000_000;
        r.energy_mj[0] = -1.0;
        r.members.pop();
        let violations = check_result(&s, &r);
        assert!(
            violations.iter().any(|m| m.contains("answer conservation")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|m| m.contains("energy")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|m| m.contains("member census")),
            "{violations:?}"
        );
    }

    #[test]
    fn stepped_worlds_stay_structurally_sane() {
        let s = Scenario::quick(20, AlgoKind::Regular, 120);
        let mut w = World::new(s, 19);
        let mut last = SimTime::ZERO;
        let mut checked = 0;
        while let Some(now) = w.step() {
            last = now;
            checked += 1;
            if checked % 500 == 0 {
                let violations = w.check_invariants(now);
                assert!(violations.is_empty(), "at {now}: {violations:?}");
            }
        }
        let violations = w.check_invariants(last);
        assert!(violations.is_empty(), "at end: {violations:?}");
        let r = w.finish();
        assert!(r.events > 0);
    }
}
