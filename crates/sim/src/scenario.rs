//! Scenario configuration — the programmatic form of Table 2.

use manet_aodv::AodvCfg;
use manet_des::{NodeId, SimDuration};

use crate::errors::ScenarioError;
use crate::faults::FaultPlan;
use manet_geom::Rect;
use manet_obs::ObsConfig;
use manet_radio::RadioCfg;
use p2p_content::{Catalog, QueryCfg};
use p2p_core::{AdversaryRole, AlgoKind, OverlayParams};

/// Which mobility model the scenario's nodes follow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilityKind {
    /// The paper's Random Waypoint (max speed / max pause in SI units).
    Waypoint {
        /// Maximum node speed in m/s (paper: 1.0).
        max_speed: f64,
        /// Maximum pause in seconds (paper: 100.0).
        max_pause: f64,
    },
    /// Random walk at walking pace (mobility-model ablations).
    Walk {
        /// Maximum node speed in m/s.
        max_speed: f64,
    },
    /// Gauss-Markov correlated motion (ablations).
    GaussMarkov,
    /// Reference Point Group Mobility: nodes move in teams around
    /// replicated group leaders (rescue squads, tour groups).
    Groups {
        /// Number of teams; nodes are dealt round-robin.
        n_groups: usize,
        /// Leader maximum speed, m/s.
        max_speed: f64,
        /// Members stay within this radius of their leader, metres.
        group_radius: f64,
    },
    /// Frozen topology (sanity runs and tests).
    Stationary,
}

/// Node churn (future-work extension): members alternate between up and
/// down with exponentially distributed dwell times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnCfg {
    /// Mean time a node stays up, seconds.
    pub mean_uptime: f64,
    /// Mean time a node stays down, seconds.
    pub mean_downtime: f64,
}

/// One misbehaving node: which node, and how it misbehaves.
///
/// Adversaries are deterministic (see [`AdversaryRole`]) and strictly
/// additive: a scenario with an empty adversary list runs bit-identically
/// to one built before the subsystem existed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adversary {
    /// The misbehaving node.
    pub node: NodeId,
    /// Its behaviour.
    pub role: AdversaryRole,
}

/// A full experiment description. `Scenario::paper(...)` reproduces
/// Table 2; every field can be overridden for sweeps and ablations.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Total nodes in the ad-hoc network (paper: 50 or 150).
    pub n_nodes: usize,
    /// Square area side in metres (paper: 100).
    pub area_side: f64,
    /// Fraction of nodes participating in the p2p overlay (paper: 0.75).
    pub member_fraction: f64,
    /// Which (re)configuration algorithm members run.
    pub algo: AlgoKind,
    /// Radio model (paper: 10 m range).
    pub radio: RadioCfg,
    /// Overlay constants (Table 2).
    pub overlay: OverlayParams,
    /// Routing constants.
    pub aodv: AodvCfg,
    /// File catalogue (20 files, Zipf 40 %).
    pub catalog: Catalog,
    /// Query workload (TTL 6, 30 s wait, 15–45 s think).
    pub query: QueryCfg,
    /// Mobility model (paper: Random Waypoint <= 1 m/s, <= 100 s pause).
    pub mobility: MobilityKind,
    /// Simulated time (paper: 3600 s).
    pub duration: SimDuration,
    /// Members join the overlay at uniform times within this window, so
    /// the population does not probe in phase at t = 0.
    pub join_window: SimDuration,
    /// How often a moving node refreshes its grid position (position error
    /// is bounded by `max_speed * position_refresh`).
    pub position_refresh: SimDuration,
    /// Hybrid qualifiers are drawn uniformly from this inclusive range.
    pub qualifier_range: (u32, u32),
    /// Battery budget per node in millijoules; `None` = unlimited (the
    /// paper does not deplete batteries; the lifetime extension does).
    pub battery_mj: Option<f64>,
    /// Optional churn process (future-work extension).
    pub churn: Option<ChurnCfg>,
    /// Sample the overlay graph for small-world metrics at this period.
    pub smallworld_sample: Option<SimDuration>,
    /// Keep the last N protocol events in a trace ring (0 = off).
    pub trace_capacity: usize,
    /// Injected faults (packet-loss bursts, scripted crashes, link flaps,
    /// delay spikes); the default plan is empty and changes nothing.
    pub faults: FaultPlan,
    /// Misbehaving nodes (black-holes, grey-holes, RREQ amplifiers, query
    /// flooders, selfish peers); empty by default and changes nothing.
    pub adversaries: Vec<Adversary>,
    /// Observability sink (metrics registry, spans, flight recorder).
    /// Enabled by default — the observed hot path is held within a few
    /// percent of the bare one by the perf gate — and toggling it never
    /// changes simulation results.
    pub obs: ObsConfig,
    /// Spatial shards for conservative-parallel execution (1 = the
    /// default sequential path, bit-identical to every pinned
    /// fingerprint). With more than one shard the run goes through
    /// [`ShardedWorld`](crate::sharded::ShardedWorld): aggregate metrics,
    /// the merged [`ObsReport`](manet_obs::ObsReport) registries and the
    /// merged trace are identical for every shard/thread count; only
    /// small-world sampling stays sequential-only.
    pub shards: usize,
}

impl Scenario {
    /// The paper's scenario for a given node count and algorithm.
    pub fn paper(n_nodes: usize, algo: AlgoKind) -> Self {
        Scenario {
            n_nodes,
            area_side: 100.0,
            member_fraction: 0.75,
            algo,
            radio: RadioCfg::paper(),
            overlay: OverlayParams::default(),
            aodv: AodvCfg::default(),
            catalog: Catalog::default(),
            query: QueryCfg::default(),
            mobility: MobilityKind::Waypoint {
                max_speed: 1.0,
                max_pause: 100.0,
            },
            duration: SimDuration::from_secs(3600),
            join_window: SimDuration::from_secs(30),
            position_refresh: SimDuration::from_secs(1),
            qualifier_range: (1, 100),
            battery_mj: None,
            churn: None,
            smallworld_sample: None,
            trace_capacity: 0,
            faults: FaultPlan::default(),
            adversaries: Vec::new(),
            obs: ObsConfig::default(),
            shards: 1,
        }
    }

    /// A scaled-down variant for tests and the in-repo timing benches:
    /// same shape, shorter clock.
    pub fn quick(n_nodes: usize, algo: AlgoKind, secs: u64) -> Self {
        let mut s = Self::paper(n_nodes, algo);
        s.duration = SimDuration::from_secs(secs);
        s.join_window = SimDuration::from_secs(secs.min(10));
        s
    }

    /// The simulation area.
    pub fn area(&self) -> Rect {
        Rect::sized(self.area_side, self.area_side)
    }

    /// Number of overlay members (`round(n * fraction)`).
    pub fn n_members(&self) -> usize {
        ((self.n_nodes as f64 * self.member_fraction).round() as usize).min(self.n_nodes)
    }

    /// Typed validation: the first out-of-domain parameter as a
    /// [`ScenarioError`], or `Ok(())` when the scenario is simulable.
    /// [`World::try_new`](crate::World::try_new) runs this before building
    /// anything, so construction never panics on a bad configuration.
    pub fn check(&self) -> Result<(), ScenarioError> {
        if self.n_nodes < 2 {
            return Err(ScenarioError::TooFewNodes {
                n_nodes: self.n_nodes,
            });
        }
        if self.area_side <= 0.0 || self.area_side.is_nan() {
            return Err(ScenarioError::NonPositiveArea {
                side: self.area_side,
            });
        }
        if !(0.0..=1.0).contains(&self.member_fraction) {
            return Err(ScenarioError::MemberFractionOutOfRange {
                fraction: self.member_fraction,
            });
        }
        if self.n_members() < 1 {
            return Err(ScenarioError::NoMembers);
        }
        if self.duration.is_zero() {
            return Err(ScenarioError::ZeroDuration);
        }
        if self.position_refresh.is_zero() {
            return Err(ScenarioError::ZeroPositionRefresh);
        }
        if self.qualifier_range.0 > self.qualifier_range.1 {
            return Err(ScenarioError::QualifierRangeInverted {
                lo: self.qualifier_range.0,
                hi: self.qualifier_range.1,
            });
        }
        if let Some(p) = self.radio.problem() {
            return Err(ScenarioError::Radio(p));
        }
        if let Some(p) = self.overlay.problem() {
            return Err(ScenarioError::Overlay(p));
        }
        if let Some(p) = self.aodv.problem() {
            return Err(ScenarioError::Routing(p));
        }
        if let Some(p) = self.catalog.problem() {
            return Err(ScenarioError::Catalog(p));
        }
        if let Some(c) = &self.churn {
            if !(c.mean_uptime > 0.0 && c.mean_downtime > 0.0) {
                return Err(ScenarioError::NonPositiveChurnDwell {
                    mean_uptime: c.mean_uptime,
                    mean_downtime: c.mean_downtime,
                });
            }
        }
        match self.mobility {
            MobilityKind::Waypoint {
                max_speed,
                max_pause,
            } => {
                if max_speed <= 0.0 || max_speed.is_nan() {
                    return Err(ScenarioError::NonPositiveSpeed { speed: max_speed });
                }
                if max_pause < 0.0 || max_pause.is_nan() {
                    return Err(ScenarioError::NegativePause { pause: max_pause });
                }
            }
            MobilityKind::Walk { max_speed } => {
                if max_speed <= 0.0 || max_speed.is_nan() {
                    return Err(ScenarioError::NonPositiveSpeed { speed: max_speed });
                }
            }
            MobilityKind::Groups {
                n_groups,
                max_speed,
                group_radius,
            } => {
                if n_groups < 1 {
                    return Err(ScenarioError::NoGroups);
                }
                if n_groups > self.n_nodes {
                    return Err(ScenarioError::GroupsExceedNodes {
                        n_groups,
                        n_nodes: self.n_nodes,
                    });
                }
                if max_speed <= 0.0 || max_speed.is_nan() {
                    return Err(ScenarioError::NonPositiveSpeed { speed: max_speed });
                }
                if group_radius <= 0.0 || group_radius.is_nan() {
                    return Err(ScenarioError::NonPositiveGroupRadius {
                        radius: group_radius,
                    });
                }
            }
            MobilityKind::GaussMarkov | MobilityKind::Stationary => {}
        }
        if let Some(mj) = self.battery_mj {
            if mj <= 0.0 || mj.is_nan() {
                return Err(ScenarioError::NonPositiveBattery { mj });
            }
        }
        if self.obs.enabled && self.obs.sample_period_secs < 0.0 {
            return Err(ScenarioError::NegativeObsSamplePeriod {
                secs: self.obs.sample_period_secs,
            });
        }
        for (i, a) in self.adversaries.iter().enumerate() {
            if a.node.index() >= self.n_nodes {
                return Err(ScenarioError::AdversaryOutOfRange {
                    node: a.node.0,
                    n_nodes: self.n_nodes,
                });
            }
            if self.adversaries[..i].iter().any(|b| b.node == a.node) {
                return Err(ScenarioError::DuplicateAdversary { node: a.node.0 });
            }
            if a.role.requires_membership() && a.node.index() >= self.n_members() {
                return Err(ScenarioError::AdversaryNotMember {
                    node: a.node.0,
                    n_members: self.n_members(),
                });
            }
            match a.role {
                AdversaryRole::GreyHole { drop_nth } if drop_nth < 2 => {
                    return Err(ScenarioError::GreyHoleDropTooSmall { drop_nth });
                }
                AdversaryRole::RreqAmplifier { factor } if !(2..=8).contains(&factor) => {
                    return Err(ScenarioError::AmplifierFactorOutOfRange { factor });
                }
                AdversaryRole::QueryFlooder { period } if period.is_zero() => {
                    return Err(ScenarioError::FlooderPeriodZero { node: a.node.0 });
                }
                _ => {}
            }
        }
        self.faults.check(self.n_nodes)?;
        if self.shards == 0 {
            return Err(ScenarioError::Sharding("shards must be at least 1".into()));
        }
        if self.shards > 1 {
            if self.shards > 256 {
                return Err(ScenarioError::Sharding(format!(
                    "at most 256 shards, got {}",
                    self.shards
                )));
            }
            // Observability and causal tracing are sharding-compatible:
            // counters are owner-gated and fold partition-invariantly
            // (`ObsReport::merge_shard`), trace logs merge with id
            // offsetting (`TraceLog::merge_offset`). Only small-world
            // sampling (needs the global graph mid-run) stays sequential.
            if self.smallworld_sample.is_some() {
                return Err(ScenarioError::Sharding(
                    "small-world sampling needs the sequential path".into(),
                ));
            }
            if !self.radio.lookahead().is_usable() {
                return Err(ScenarioError::Sharding(
                    "radio model has zero lookahead (no propagation or serialization delay)".into(),
                ));
            }
        }
        Ok(())
    }

    /// Panics if the configuration is out of domain (the message is the
    /// [`ScenarioError`] display form). Assertion-style twin of
    /// [`check`](Scenario::check).
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Render the effective parameters in the shape of the paper's Table 2.
    pub fn render_table_2(&self) -> String {
        let mobility = match self.mobility {
            MobilityKind::Waypoint {
                max_speed,
                max_pause,
            } => format!("Random Waypoint (<= {max_speed} m/s, pause <= {max_pause} s)"),
            MobilityKind::Walk { max_speed } => format!("Random Walk (<= {max_speed} m/s)"),
            MobilityKind::GaussMarkov => "Gauss-Markov".into(),
            MobilityKind::Groups {
                n_groups,
                max_speed,
                group_radius,
            } => format!("RPGM ({n_groups} groups, <= {max_speed} m/s, radius {group_radius} m)"),
            MobilityKind::Stationary => "Stationary".into(),
        };
        let rows: Vec<(String, String)> = vec![
            (
                "transmission range".into(),
                format!("{} m", self.radio.range_m),
            ),
            ("number of nodes".into(), format!("{}", self.n_nodes)),
            (
                "p2p members".into(),
                format!(
                    "{} ({:.0}%)",
                    self.n_members(),
                    self.member_fraction * 100.0
                ),
            ),
            ("area".into(), format!("{0} m x {0} m", self.area_side)),
            ("mobility".into(), mobility),
            (
                "number of distinct searchable files".into(),
                format!("{}", self.catalog.n_files),
            ),
            (
                "frequency of the most popular file".into(),
                format!("{:.0}%", self.catalog.max_freq * 100.0),
            ),
            (
                "NHOPS_INITIAL".into(),
                format!("{} ad-hoc hops", self.overlay.nhops_initial),
            ),
            (
                "MAXNHOPS".into(),
                format!("{} ad-hoc hops", self.overlay.max_nhops),
            ),
            (
                "NHOPS (Basic Algorithm)".into(),
                format!("{} ad-hoc hops", self.overlay.nhops_basic),
            ),
            (
                "MAXDIST".into(),
                format!("{} ad-hoc hops", self.overlay.max_dist),
            ),
            ("MAXNCONN".into(), format!("{}", self.overlay.max_conn)),
            ("MAXNSLAVES".into(), format!("{}", self.overlay.max_slaves)),
            (
                "TTL for queries".into(),
                format!("{} p2p hops", self.query.ttl),
            ),
            (
                "simulated time".into(),
                format!("{:.0} s", self.duration.as_secs_f64()),
            ),
        ];
        let mut s = String::new();
        for (k, v) in rows {
            s.push_str(&format!("{k:<40}{v}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_validate() {
        for n in [50, 150] {
            for algo in AlgoKind::ALL {
                let s = Scenario::paper(n, algo);
                s.validate();
                let expect = (n as f64 * 0.75).round() as usize;
                assert_eq!(s.n_members(), expect);
            }
        }
    }

    #[test]
    fn member_count_rounds() {
        let s = Scenario::paper(50, AlgoKind::Basic);
        assert_eq!(s.n_members(), 38, "75% of 50 rounds to 38");
        let s = Scenario::paper(150, AlgoKind::Basic);
        assert_eq!(s.n_members(), 113, "75% of 150 rounds to 113");
    }

    #[test]
    fn table_2_mentions_all_constants() {
        let s = Scenario::paper(50, AlgoKind::Regular);
        let t = s.render_table_2();
        for needle in [
            "10 m",
            "MAXNCONN",
            "MAXNSLAVES",
            "MAXDIST",
            "NHOPS_INITIAL",
            "40%",
            "6 p2p hops",
            "3600 s",
        ] {
            assert!(t.contains(needle), "Table 2 missing {needle}:\n{t}");
        }
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn degenerate_scenario_rejected() {
        let mut s = Scenario::paper(50, AlgoKind::Basic);
        s.n_nodes = 1;
        s.validate();
    }

    #[test]
    fn mobility_validation_gaps_are_closed() {
        let base = Scenario::quick(10, AlgoKind::Regular, 60);
        let with = |mobility| Scenario {
            mobility,
            ..base.clone()
        };
        assert_eq!(
            with(MobilityKind::Waypoint {
                max_speed: 0.0,
                max_pause: 100.0
            })
            .check(),
            Err(ScenarioError::NonPositiveSpeed { speed: 0.0 })
        );
        assert!(matches!(
            with(MobilityKind::Waypoint {
                max_speed: f64::NAN,
                max_pause: 100.0
            })
            .check(),
            Err(ScenarioError::NonPositiveSpeed { .. })
        ));
        assert_eq!(
            with(MobilityKind::Waypoint {
                max_speed: 1.0,
                max_pause: -1.0
            })
            .check(),
            Err(ScenarioError::NegativePause { pause: -1.0 })
        );
        assert_eq!(
            with(MobilityKind::Walk { max_speed: -2.0 }).check(),
            Err(ScenarioError::NonPositiveSpeed { speed: -2.0 })
        );
        // Zero-member groups: more groups than nodes.
        assert_eq!(
            with(MobilityKind::Groups {
                n_groups: 11,
                max_speed: 1.0,
                group_radius: 5.0
            })
            .check(),
            Err(ScenarioError::GroupsExceedNodes {
                n_groups: 11,
                n_nodes: 10
            })
        );
        assert_eq!(
            with(MobilityKind::Groups {
                n_groups: 2,
                max_speed: 1.0,
                group_radius: 0.0
            })
            .check(),
            Err(ScenarioError::NonPositiveGroupRadius { radius: 0.0 })
        );
    }

    #[test]
    fn battery_must_be_positive_when_set() {
        let mut s = Scenario::quick(10, AlgoKind::Basic, 60);
        s.battery_mj = Some(0.0);
        assert_eq!(
            s.check(),
            Err(ScenarioError::NonPositiveBattery { mj: 0.0 })
        );
        s.battery_mj = Some(400.0);
        assert_eq!(s.check(), Ok(()));
    }

    #[test]
    fn adversaries_are_validated() {
        use manet_des::NodeId;
        let with = |adversaries: Vec<Adversary>| Scenario {
            adversaries,
            ..Scenario::quick(10, AlgoKind::Regular, 60)
        };
        let adv = |node: u32, role| Adversary {
            node: NodeId(node),
            role,
        };
        assert_eq!(
            with(vec![adv(10, AdversaryRole::BlackHole)]).check(),
            Err(ScenarioError::AdversaryOutOfRange {
                node: 10,
                n_nodes: 10
            })
        );
        assert_eq!(
            with(vec![
                adv(3, AdversaryRole::BlackHole),
                adv(3, AdversaryRole::Selfish)
            ])
            .check(),
            Err(ScenarioError::DuplicateAdversary { node: 3 })
        );
        // quick(10, ..) has 8 members (ids 0..8); node 9 is a pure relay.
        assert_eq!(
            with(vec![adv(9, AdversaryRole::Selfish)]).check(),
            Err(ScenarioError::AdversaryNotMember {
                node: 9,
                n_members: 8
            })
        );
        assert_eq!(
            with(vec![adv(9, AdversaryRole::BlackHole)]).check(),
            Ok(()),
            "routing-layer roles may sit on relays"
        );
        assert_eq!(
            with(vec![adv(2, AdversaryRole::GreyHole { drop_nth: 1 })]).check(),
            Err(ScenarioError::GreyHoleDropTooSmall { drop_nth: 1 })
        );
        assert_eq!(
            with(vec![adv(2, AdversaryRole::RreqAmplifier { factor: 9 })]).check(),
            Err(ScenarioError::AmplifierFactorOutOfRange { factor: 9 })
        );
        assert_eq!(
            with(vec![adv(
                2,
                AdversaryRole::QueryFlooder {
                    period: SimDuration::ZERO
                }
            )])
            .check(),
            Err(ScenarioError::FlooderPeriodZero { node: 2 })
        );
        assert_eq!(
            with(vec![
                adv(0, AdversaryRole::BlackHole),
                adv(1, AdversaryRole::GreyHole { drop_nth: 4 }),
                adv(2, AdversaryRole::RreqAmplifier { factor: 3 }),
                adv(
                    3,
                    AdversaryRole::QueryFlooder {
                        period: SimDuration::from_secs(5)
                    }
                ),
                adv(4, AdversaryRole::Selfish),
            ])
            .check(),
            Ok(()),
            "one of each role on distinct members is valid"
        );
    }
}
