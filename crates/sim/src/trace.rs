//! Event tracing, re-exported from the substrate-neutral stack.
//!
//! [`TraceLog`] began life here, recording DES worlds; when the
//! real-time substrate grew the same instrumentation the log (and its
//! reservoir sampler, arena ring and id allocator) moved into
//! `p2p-stack` so both substrates record into one type and the swarm
//! parent can merge per-process logs with
//! [`TraceLog::merge_offset`]. This module keeps the old paths alive:
//! `manet_sim::trace::TraceLog` *is* [`p2p_stack::TraceLog`].

pub use p2p_stack::trace::{node_id_base, TraceEvent, TraceLog};
