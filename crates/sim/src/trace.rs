//! Event tracing: a bounded, zero-cost-when-off protocol trace.
//!
//! Debugging a distributed protocol inside a discrete-event simulation is
//! miserable without a record of *who did what, when*. [`TraceLog`] keeps
//! the last `capacity` interesting events in a ring buffer; worlds record
//! into it when [`Scenario::trace_capacity`](crate::Scenario) is non-zero
//! and expose it on the [`RunResult`](crate::RunResult). Rendering is
//! plain text, one event per line, suitable for diffing two runs.

use std::collections::VecDeque;

use manet_des::{NodeId, SimTime};
use manet_metrics::MsgKind;
use p2p_core::Role;

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A member joined the overlay.
    Join {
        /// The node.
        node: NodeId,
    },
    /// An overlay/content message was delivered to a member.
    DeliverUp {
        /// The receiving member.
        node: NodeId,
        /// Who originated the message.
        from: NodeId,
        /// The figure category.
        kind: MsgKind,
        /// Ad-hoc hops travelled.
        hops: u8,
    },
    /// An overlay connection reached the established state (recorded from
    /// the neighbor-set delta, so both endpoints appear).
    ConnUp {
        /// The observing node.
        node: NodeId,
        /// The new neighbor.
        peer: NodeId,
    },
    /// An overlay connection went away.
    ConnDown {
        /// The observing node.
        node: NodeId,
        /// The lost neighbor.
        peer: NodeId,
    },
    /// A hybrid node changed role.
    RoleChange {
        /// The node.
        node: NodeId,
        /// Its new role.
        role: Role,
    },
    /// Churn or battery exhaustion toggled a node.
    PowerChange {
        /// The node.
        node: NodeId,
        /// True = came up, false = went down.
        up: bool,
    },
}

/// A bounded event trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    /// Total events offered, including those evicted from the ring.
    offered: u64,
    /// Events evicted to make room — a non-zero value means the rendered
    /// trace is a suffix of the run, not the whole story.
    dropped: u64,
}

impl TraceLog {
    /// A log keeping at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            offered: 0,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an event (drops the oldest when full; no-op when disabled).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.offered += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events seen (retained + evicted).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events evicted from the ring (0 means the trace is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events as text, one per line. A truncated trace
    /// leads with a header stating how many events were evicted, so a
    /// partial recording can never pass for a complete one.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.dropped > 0 {
            s.push_str(&format!(
                "# trace truncated: {} of {} events dropped (capacity {})\n",
                self.dropped, self.offered, self.capacity
            ));
        }
        for (at, e) in &self.events {
            let line = match e {
                TraceEvent::Join { node } => format!("{at} {node} JOIN"),
                TraceEvent::DeliverUp {
                    node,
                    from,
                    kind,
                    hops,
                } => format!("{at} {node} RX {} from {from} ({hops} hops)", kind.name()),
                TraceEvent::ConnUp { node, peer } => format!("{at} {node} CONN+ {peer}"),
                TraceEvent::ConnDown { node, peer } => format!("{at} {node} CONN- {peer}"),
                TraceEvent::RoleChange { node, role } => {
                    format!("{at} {node} ROLE {role:?}")
                }
                TraceEvent::PowerChange { node, up } => {
                    format!("{at} {node} {}", if *up { "UP" } else { "DOWN" })
                }
            };
            s.push_str(&line);
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        log.record(t(1), TraceEvent::Join { node: NodeId(1) });
        assert!(!log.enabled());
        assert!(log.is_empty());
        assert_eq!(log.offered(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = TraceLog::new(2);
        for k in 0..5u32 {
            log.record(t(k as u64), TraceEvent::Join { node: NodeId(k) });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.offered(), 5);
        assert_eq!(log.dropped(), 3);
        let text = log.render();
        assert!(
            text.starts_with("# trace truncated: 3 of 5 events dropped"),
            "missing truncation header:\n{text}"
        );
        let kept: Vec<u32> = log
            .events()
            .map(|(_, e)| match e {
                TraceEvent::Join { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4], "newest survive");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut log = TraceLog::new(8);
        log.record(t(1), TraceEvent::Join { node: NodeId(3) });
        log.record(
            t(2),
            TraceEvent::DeliverUp {
                node: NodeId(3),
                from: NodeId(5),
                kind: MsgKind::Ping,
                hops: 2,
            },
        );
        log.record(
            t(3),
            TraceEvent::ConnUp {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(4),
            TraceEvent::ConnDown {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(5),
            TraceEvent::RoleChange {
                node: NodeId(3),
                role: Role::Master,
            },
        );
        log.record(
            t(6),
            TraceEvent::PowerChange {
                node: NodeId(3),
                up: false,
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("JOIN"));
        assert!(text.contains("RX ping from n5 (2 hops)"));
        assert!(text.contains("CONN+ n5"));
        assert!(text.contains("CONN- n5"));
        assert!(text.contains("ROLE Master"));
        assert!(text.contains("n3 DOWN"));
    }
}
