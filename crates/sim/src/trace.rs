//! Event tracing: a bounded, zero-cost-when-off protocol trace.
//!
//! Debugging a distributed protocol inside a discrete-event simulation is
//! miserable without a record of *who did what, when*. [`TraceLog`] keeps
//! the last `capacity` interesting events in a ring buffer; worlds record
//! into it when [`Scenario::trace_capacity`](crate::Scenario) is non-zero
//! and expose it on the [`RunResult`](crate::RunResult). Rendering is
//! plain text, one event per line, suitable for diffing two runs.
//!
//! Beyond milestones (joins, connections, role changes), the log records
//! *causal* events: every frame transmission/reception, delivery,
//! unreachability verdict and traced timer arm carries a
//! [`TraceCtx`] linking it to the query or reconfiguration round that
//! caused it. [`TraceLog`] is also the span allocator —
//! [`alloc_trace`](TraceLog::alloc_trace) / [`alloc_span`](TraceLog::alloc_span)
//! hand out monotone non-zero ids with no randomness, so a traced run
//! stays bit-identical to an untraced one — and
//! [`causal_events`](TraceLog::causal_events) converts the retained ring
//! into the flat stream `manet_obs::causal` analyzes and exports.

use std::collections::VecDeque;

use manet_des::{NodeId, SimTime, TraceCtx};
use manet_metrics::MsgKind;
use p2p_core::Role;

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A member joined the overlay.
    Join {
        /// The node.
        node: NodeId,
    },
    /// An overlay/content message was delivered to a member.
    DeliverUp {
        /// The receiving member.
        node: NodeId,
        /// Who originated the message.
        from: NodeId,
        /// The figure category.
        kind: MsgKind,
        /// Ad-hoc hops travelled.
        hops: u8,
        /// Causal position ([`TraceCtx::NONE`] when causal tracing is not
        /// active for this message).
        ctx: TraceCtx,
    },
    /// A trace was minted: a query or reconfiguration round originated.
    Origin {
        /// The originating node.
        node: NodeId,
        /// The root context of the new trace.
        ctx: TraceCtx,
        /// What kind of activity this trace is (`"query"`, `"reconfig"`…).
        label: &'static str,
    },
    /// A traced frame left a node's radio.
    Send {
        /// The transmitting node.
        node: NodeId,
        /// Causal position of this transmission.
        ctx: TraceCtx,
        /// Unicast receiver, or `None` for a broadcast.
        to: Option<NodeId>,
        /// Frame kind (`"rreq"`, `"data"`, `"flood"`, …).
        frame: &'static str,
        /// Frame size on the air.
        bytes: u32,
    },
    /// A traced frame arrived at a node's radio.
    Recv {
        /// The receiving node.
        node: NodeId,
        /// Causal position of this reception.
        ctx: TraceCtx,
        /// The transmitting node.
        from: NodeId,
        /// Frame kind, mirroring the send.
        frame: &'static str,
    },
    /// Route discovery gave up on a traced destination.
    Unreachable {
        /// The node whose discovery failed.
        node: NodeId,
        /// Causal position.
        ctx: TraceCtx,
        /// The destination that could not be reached.
        dst: NodeId,
    },
    /// A node armed its protocol timer on behalf of a traced discovery.
    TimerArm {
        /// The node.
        node: NodeId,
        /// Causal position (the waiting discovery's context).
        ctx: TraceCtx,
        /// When the timer will fire.
        at: SimTime,
    },
    /// An overlay connection reached the established state (recorded from
    /// the neighbor-set delta, so both endpoints appear).
    ConnUp {
        /// The observing node.
        node: NodeId,
        /// The new neighbor.
        peer: NodeId,
    },
    /// An overlay connection went away.
    ConnDown {
        /// The observing node.
        node: NodeId,
        /// The lost neighbor.
        peer: NodeId,
    },
    /// A hybrid node changed role.
    RoleChange {
        /// The node.
        node: NodeId,
        /// Its new role.
        role: Role,
    },
    /// Churn or battery exhaustion toggled a node.
    PowerChange {
        /// The node.
        node: NodeId,
        /// True = came up, false = went down.
        up: bool,
    },
}

/// A bounded event trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    /// Total events offered, including those evicted from the ring.
    offered: u64,
    /// Events evicted to make room — a non-zero value means the rendered
    /// trace is a suffix of the run, not the whole story.
    dropped: u64,
    /// Next trace id to mint (ids start at 1; 0 means "no trace").
    next_trace: u64,
    /// Next span id to allocate (ids start at 1; 0 means "root").
    next_span: u64,
}

impl TraceLog {
    /// A log keeping at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            offered: 0,
            dropped: 0,
            next_trace: 1,
            next_span: 1,
        }
    }

    /// Mint a fresh trace id (monotone, non-zero, no randomness). Callers
    /// must only allocate when [`enabled`](Self::enabled) — id allocation
    /// when tracing is off would still be harmless to simulation results,
    /// but the discipline keeps the disabled path branch-only.
    pub fn alloc_trace(&mut self) -> u64 {
        let id = self.next_trace;
        self.next_trace += 1;
        id
    }

    /// Allocate a fresh span id (monotone, non-zero, no randomness).
    pub fn alloc_span(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an event (drops the oldest when full; no-op when disabled).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.offered += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events seen (retained + evicted).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events evicted from the ring (0 means the trace is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events as text, one per line. A truncated trace
    /// leads with a header stating how many events were evicted, so a
    /// partial recording can never pass for a complete one.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.dropped > 0 {
            s.push_str(&format!(
                "# trace truncated: {} of {} events dropped (capacity {})\n",
                self.dropped, self.offered, self.capacity
            ));
        }
        for (at, e) in &self.events {
            let line = match e {
                TraceEvent::Join { node } => format!("{at} {node} JOIN"),
                TraceEvent::DeliverUp {
                    node,
                    from,
                    kind,
                    hops,
                    ctx,
                } => {
                    let tag = trace_tag(ctx);
                    format!(
                        "{at} {node} RX {} from {from} ({hops} hops){tag}",
                        kind.name()
                    )
                }
                TraceEvent::ConnUp { node, peer } => format!("{at} {node} CONN+ {peer}"),
                TraceEvent::ConnDown { node, peer } => format!("{at} {node} CONN- {peer}"),
                TraceEvent::RoleChange { node, role } => {
                    format!("{at} {node} ROLE {role:?}")
                }
                TraceEvent::PowerChange { node, up } => {
                    format!("{at} {node} {}", if *up { "UP" } else { "DOWN" })
                }
                TraceEvent::Origin { node, ctx, label } => {
                    format!("{at} {node} ORIGIN {label}{}", trace_tag(ctx))
                }
                TraceEvent::Send {
                    node,
                    ctx,
                    to,
                    frame,
                    bytes,
                } => {
                    let dest = match to {
                        Some(to) => format!(" to {to}"),
                        None => " bcast".to_string(),
                    };
                    format!("{at} {node} TX {frame}{dest} {bytes}B{}", trace_tag(ctx))
                }
                TraceEvent::Recv {
                    node,
                    ctx,
                    from,
                    frame,
                } => format!("{at} {node} FRX {frame} from {from}{}", trace_tag(ctx)),
                TraceEvent::Unreachable { node, ctx, dst } => {
                    format!("{at} {node} UNREACHABLE {dst}{}", trace_tag(ctx))
                }
                TraceEvent::TimerArm { node, ctx, at: due } => {
                    format!("{at} {node} TIMER at {due}{}", trace_tag(ctx))
                }
            };
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// The causal subset of the retained ring as the flat stream
    /// `manet_obs::causal` analyzes: every event carrying an active
    /// [`TraceCtx`], in recording order. Milestone events (joins,
    /// connections, role/power changes) have no causal identity and are
    /// skipped, as are untraced deliveries.
    pub fn causal_events(&self) -> Vec<manet_obs::CausalEvent> {
        use manet_obs::{CausalEvent, CausalKind};
        let mut out = Vec::new();
        for (at, e) in &self.events {
            let (ctx, node, kind) = match e {
                TraceEvent::Origin { node, ctx, label } => (
                    ctx,
                    node,
                    CausalKind::Origin {
                        label: (*label).to_string(),
                    },
                ),
                TraceEvent::Send {
                    node,
                    ctx,
                    to,
                    frame,
                    bytes,
                } => (
                    ctx,
                    node,
                    CausalKind::Send {
                        frame: (*frame).to_string(),
                        to: to.map(|n| n.0),
                        bytes: *bytes,
                    },
                ),
                TraceEvent::Recv {
                    node,
                    ctx,
                    from,
                    frame,
                } => (
                    ctx,
                    node,
                    CausalKind::Recv {
                        frame: (*frame).to_string(),
                        from: from.0,
                    },
                ),
                TraceEvent::DeliverUp {
                    node,
                    kind,
                    hops,
                    ctx,
                    ..
                } => (
                    ctx,
                    node,
                    CausalKind::Deliver {
                        kind: kind.name().to_string(),
                        hops: *hops,
                    },
                ),
                TraceEvent::Unreachable { node, ctx, dst } => {
                    (ctx, node, CausalKind::Unreachable { dst: dst.0 })
                }
                TraceEvent::TimerArm { node, ctx, at: due } => {
                    (ctx, node, CausalKind::TimerArm { at: due.ticks() })
                }
                TraceEvent::Join { .. }
                | TraceEvent::ConnUp { .. }
                | TraceEvent::ConnDown { .. }
                | TraceEvent::RoleChange { .. }
                | TraceEvent::PowerChange { .. } => continue,
            };
            if !ctx.is_active() {
                continue;
            }
            out.push(CausalEvent {
                trace_id: ctx.trace_id,
                span: ctx.span_seq,
                parent: ctx.parent_id,
                t: at.ticks(),
                node: node.0,
                kind,
            });
        }
        out
    }
}

/// Compact ` [trace/parent>span]` suffix for traced render lines; empty
/// for untraced events so pre-existing trace text is unchanged.
fn trace_tag(ctx: &TraceCtx) -> String {
    if ctx.is_active() {
        format!(" [{}/{}>{}]", ctx.trace_id, ctx.parent_id, ctx.span_seq)
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        log.record(t(1), TraceEvent::Join { node: NodeId(1) });
        assert!(!log.enabled());
        assert!(log.is_empty());
        assert_eq!(log.offered(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = TraceLog::new(2);
        for k in 0..5u32 {
            log.record(t(k as u64), TraceEvent::Join { node: NodeId(k) });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.offered(), 5);
        assert_eq!(log.dropped(), 3);
        let text = log.render();
        assert!(
            text.starts_with("# trace truncated: 3 of 5 events dropped"),
            "missing truncation header:\n{text}"
        );
        let kept: Vec<u32> = log
            .events()
            .map(|(_, e)| match e {
                TraceEvent::Join { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4], "newest survive");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut log = TraceLog::new(8);
        log.record(t(1), TraceEvent::Join { node: NodeId(3) });
        log.record(
            t(2),
            TraceEvent::DeliverUp {
                node: NodeId(3),
                from: NodeId(5),
                kind: MsgKind::Ping,
                hops: 2,
                ctx: TraceCtx::NONE,
            },
        );
        log.record(
            t(3),
            TraceEvent::ConnUp {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(4),
            TraceEvent::ConnDown {
                node: NodeId(3),
                peer: NodeId(5),
            },
        );
        log.record(
            t(5),
            TraceEvent::RoleChange {
                node: NodeId(3),
                role: Role::Master,
            },
        );
        log.record(
            t(6),
            TraceEvent::PowerChange {
                node: NodeId(3),
                up: false,
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("JOIN"));
        assert!(text.contains("RX ping from n5 (2 hops)"));
        assert!(!text.contains('['), "untraced lines carry no trace tag");
        assert!(text.contains("CONN+ n5"));
        assert!(text.contains("CONN- n5"));
        assert!(text.contains("ROLE Master"));
        assert!(text.contains("n3 DOWN"));
    }

    #[test]
    fn id_allocation_is_monotone_and_never_zero() {
        let mut log = TraceLog::new(4);
        assert_eq!(log.alloc_trace(), 1);
        assert_eq!(log.alloc_trace(), 2);
        assert_eq!(log.alloc_span(), 1);
        assert_eq!(log.alloc_span(), 2);
        assert_eq!(log.alloc_span(), 3);
    }

    #[test]
    fn causal_events_link_parents_and_skip_milestones() {
        let mut log = TraceLog::new(16);
        let trace = log.alloc_trace();
        let root = TraceCtx::root(trace, log.alloc_span());
        log.record(t(0), TraceEvent::Join { node: NodeId(0) });
        log.record(
            t(1),
            TraceEvent::Origin {
                node: NodeId(0),
                ctx: root,
                label: "query",
            },
        );
        let send = root.child(log.alloc_span());
        log.record(
            t(1),
            TraceEvent::Send {
                node: NodeId(0),
                ctx: send,
                to: None,
                frame: "flood",
                bytes: 40,
            },
        );
        let recv = send.child(log.alloc_span());
        log.record(
            t(2),
            TraceEvent::Recv {
                node: NodeId(1),
                ctx: recv,
                from: NodeId(0),
                frame: "flood",
            },
        );
        // An untraced delivery must not leak into the causal stream.
        log.record(
            t(3),
            TraceEvent::DeliverUp {
                node: NodeId(1),
                from: NodeId(0),
                kind: MsgKind::Ping,
                hops: 1,
                ctx: TraceCtx::NONE,
            },
        );
        let events = log.causal_events();
        assert_eq!(events.len(), 3, "join and untraced delivery skipped");
        assert_eq!(events[0].parent, 0, "origin is the root");
        assert_eq!(events[1].parent, events[0].span);
        assert_eq!(events[2].parent, events[1].span);
        assert!(events.iter().all(|e| e.trace_id == trace));
        // And the traced lines render with the compact tag.
        let text = log.render();
        assert!(text.contains("ORIGIN query [1/0>1]"), "got:\n{text}");
        assert!(text.contains("TX flood bcast 40B [1/1>2]"));
    }
}
