//! Small-world study (paper §6.1.2 / §8 future work).
//!
//! Samples the overlay graph periodically and compares the Regular and
//! Random algorithms on clustering coefficient, characteristic path length
//! and the sigma index — the effect the authors looked for but could not
//! observe at 50/150 nodes. Run with more nodes (e.g. `--nodes 300
//! --duration 900`) to enter the n >> k regime the paper says is needed.

use manet_des::SimDuration;
use manet_sim::experiments::cfg_from_args;
use manet_sim::{runner, Scenario};
use p2p_core::AlgoKind;

fn main() {
    let cfg = cfg_from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    println!("algorithm\ttime_s\tn\tk\tC\tL\tC_rand\tL_rand\tsigma");
    for algo in [AlgoKind::Regular, AlgoKind::Random] {
        let mut s = Scenario::paper(cfg.n_nodes, algo);
        s.duration = SimDuration::from_secs(cfg.duration_secs);
        s.smallworld_sample = Some(SimDuration::from_secs(60));
        let results = runner::run_replications(&s, cfg.reps, cfg.seed, cfg.threads);
        for r in &results {
            for (t, sw) in &r.smallworld {
                println!(
                    "{}\t{t:.0}\t{}\t{:.2}\t{:.4}\t{:.3}\t{:.4}\t{:.3}\t{:.3}",
                    algo.name(),
                    sw.n,
                    sw.k,
                    sw.clustering,
                    sw.path_length,
                    sw.c_random,
                    sw.l_random,
                    sw.sigma
                );
            }
        }
    }
}
