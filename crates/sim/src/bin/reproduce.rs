//! Regenerate every table and figure of the paper in one command.
//!
//! ```text
//! reproduce [--nodes 50|150] [--paper] [--reps R] [--duration S] \
//!           [--seed X] [--threads T] [--obs-out DIR] [--trace-out DIR] \
//!           [--table1] [--table2]
//! ```
//!
//! Without `--table1`/`--table2` it runs the full matrix for the chosen
//! node count and prints Figs 5/6a+b, 7/8, 9/10 and 11/12 as TSV blocks.
//! With `--obs-out DIR` the runs carry the observability sink and each
//! algorithm's merged report lands in `DIR/<algo>.jsonl`. With
//! `--trace-out DIR` the runs carry causal query tracing and each
//! replication's Perfetto-loadable artifact lands in
//! `DIR/<algo>_rep<k>.trace.json`.

use manet_sim::experiments::{
    cfg_from_args, fig_connects, fig_distance_answers, fig_pings, fig_queries, run_matrix_traced,
    summary_table, take_obs_out, take_trace_out,
};
use manet_sim::Scenario;
use p2p_core::AlgoKind;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs_out = take_obs_out(&mut args);
    let trace_out = take_trace_out(&mut args);
    if args.iter().any(|a| a == "--table1") {
        println!("Table 1: topologies and their characteristics\n");
        print!("{}", p2p_core::topology::render_table_1());
        return;
    }
    if args.iter().any(|a| a == "--table2") {
        let nodes = args
            .iter()
            .position(|a| a == "--nodes")
            .map_or(50, |i| args[i + 1].parse().expect("--nodes"));
        println!("Table 2: parameters used and their typical values\n");
        print!(
            "{}",
            Scenario::paper(nodes, AlgoKind::Regular).render_table_2()
        );
        return;
    }
    let mut cfg = cfg_from_args(&args);
    cfg.obs = obs_out.is_some();
    cfg.trace = trace_out.is_some();
    eprintln!(
        "# running matrix: {} nodes, {} s, {} reps, seed {:#x}, {} threads",
        cfg.n_nodes, cfg.duration_secs, cfg.reps, cfg.seed, cfg.threads
    );
    let matrix = run_matrix_traced(&cfg, trace_out.as_deref());
    if let Some(dir) = &obs_out {
        for (name, agg) in &matrix {
            let path = dir.join(format!("{name}.jsonl"));
            agg.obs.write_jsonl(&path).expect("write obs report");
            eprintln!("# obs report: {}", path.display());
        }
    }
    println!("{}", fig_distance_answers(&matrix, cfg.n_nodes));
    println!("{}", fig_connects(&matrix, cfg.n_nodes));
    println!("{}", fig_pings(&matrix, cfg.n_nodes));
    println!("{}", fig_queries(&matrix, cfg.n_nodes));
    println!("# scalar summary");
    print!("{}", summary_table(&matrix));
}
